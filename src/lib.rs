//! # pbc — Pattern-Based Compression for machine-generated data
//!
//! Facade crate for the reproduction of *"High-Ratio Compression for
//! Machine-Generated Data"* (SIGMOD 2023). It re-exports the workspace
//! crates so applications can depend on a single crate:
//!
//! * [`core`] — the PBC algorithm: pattern extraction, per-record
//!   compression, and the `PBC`/`PBC_F`/`PBC_Z`/`PBC_L` variants.
//! * [`codecs`] — from-scratch baseline codecs (LZ4-like, Snappy-like,
//!   Zstd-like, LZMA-like, FSST) and coding primitives.
//! * [`json`] — JSON parsing plus Ion-like / BinPack-like binary
//!   serializations.
//! * [`logs`] — Drain-style log template mining and a LogReducer-like
//!   compressor.
//! * [`datagen`] — synthetic machine-generated datasets standing in for the
//!   paper's production and public corpora.
//! * [`store`] — a TierBase-like in-memory key-value store with pluggable
//!   value compression.
//! * [`archive`] — a persistent, random-access segment store with parallel
//!   per-block compression, used for durable snapshots of the store.
//! * [`tier`] — the tiered hot/cold storage engine: watermark-driven shard
//!   spilling, a read-through LRU block cache, an atomically-swapped
//!   manifest, and segment compaction.
//! * [`wal`] — the sharded group-commit write-ahead log behind
//!   `TierConfig::wal`: CRC-framed records, four durability levels,
//!   torn-tail recovery, and checkpoint-bounded size.
//! * [`serve`] — the multi-tenant serving layer over [`tier`]: a sharded
//!   request router with write batching, bounded-queue admission control
//!   with typed `Busy` backpressure, and per-tenant namespaces with
//!   byte/op quotas.
//! * [`obs`] — lock-free observability primitives: the metrics registry
//!   with log-linear latency histograms, Prometheus/JSON exporters, and
//!   the bounded trace ring the tiered store records into.
//!
//! ## Quickstart
//!
//! ```
//! use pbc::core::{PbcCompressor, PbcConfig};
//!
//! // Machine-generated records sharing a template.
//! let records: Vec<Vec<u8>> = (0..200)
//!     .map(|i| format!("{{\"sensor\": \"t-{:03}\", \"temp\": {}.5, \"unit\": \"C\"}}", i % 8, 20 + i % 10).into_bytes())
//!     .collect();
//!
//! // Offline: extract patterns from a sample.
//! let sample: Vec<&[u8]> = records.iter().take(64).map(|r| r.as_slice()).collect();
//! let compressor = PbcCompressor::train(&sample, &PbcConfig::default());
//!
//! // Online: compress each record individually (random access preserved).
//! let compressed: Vec<Vec<u8>> = records.iter().map(|r| compressor.compress(r)).collect();
//! let total_raw: usize = records.iter().map(|r| r.len()).sum();
//! let total_comp: usize = compressed.iter().map(|c| c.len()).sum();
//! assert!(total_comp < total_raw);
//!
//! // Decompress any record independently.
//! assert_eq!(compressor.decompress(&compressed[17]).unwrap(), records[17]);
//! ```

#![forbid(unsafe_code)]

pub use pbc_archive as archive;
pub use pbc_codecs as codecs;
pub use pbc_core as core;
pub use pbc_datagen as datagen;
pub use pbc_json as json;
pub use pbc_logs as logs;
pub use pbc_obs as obs;
pub use pbc_serve as serve;
pub use pbc_store as store;
pub use pbc_tier as tier;
pub use pbc_wal as wal;
