//! Matching a record against a pattern and extracting residual subsequences.
//!
//! A pattern `lit₀ * lit₁ * … * litₖ` matches a record when the literal
//! segments occur in order and contiguously, with the wildcard fields
//! absorbing the gaps — exactly the semantics the paper obtains by turning
//! `*ob*` into the regular expression `[.*]ob[.*]` and running Hyperscan.
//! The matcher here additionally returns the residual field values (the
//! gaps), which is what the compressor encodes.
//!
//! The algorithm is the classic iterative glob matcher with backtracking to
//! the most recent wildcard, which is linear in practice and `O(n·m)` in the
//! worst case.

use crate::pattern::{Pattern, Segment};

/// The result of matching a record against a pattern: the byte ranges of
/// each field's residual value, in field order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult {
    /// `(start, end)` byte ranges into the record, one per pattern field.
    pub field_spans: Vec<(usize, usize)>,
}

impl MatchResult {
    /// Extract the residual values as slices of `record`.
    pub fn field_values<'a>(&self, record: &'a [u8]) -> Vec<&'a [u8]> {
        self.field_spans
            .iter()
            .map(|&(s, e)| &record[s..e])
            .collect()
    }

    /// Total number of residual bytes (the part of the record not covered by
    /// the pattern's literals).
    pub fn residual_len(&self) -> usize {
        self.field_spans.iter().map(|&(s, e)| e - s).sum()
    }
}

/// Match `record` against `pattern` structurally (ignoring field encoder
/// constraints). Returns the field spans if the record matches.
pub fn match_structure(pattern: &Pattern, record: &[u8]) -> Option<MatchResult> {
    let segs = pattern.segments();
    let field_count = pattern.field_count();
    let mut spans = vec![(0usize, 0usize); field_count];

    // Map each segment index to its field index (for span bookkeeping).
    let mut field_index_of_segment = vec![usize::MAX; segs.len()];
    {
        let mut k = 0;
        for (i, s) in segs.iter().enumerate() {
            if matches!(s, Segment::Field(_)) {
                field_index_of_segment[i] = k;
                k += 1;
            }
        }
    }

    let mut si = 0usize; // segment index
    let mut pos = 0usize; // record position
    let mut last_star: Option<usize> = None; // segment index of most recent field
    let mut star_end = 0usize; // current end of that field's span

    loop {
        if si < segs.len() {
            match &segs[si] {
                Segment::Literal(lit) => {
                    if record.len() >= pos + lit.len()
                        && &record[pos..pos + lit.len()] == lit.as_slice()
                    {
                        pos += lit.len();
                        si += 1;
                        continue;
                    }
                }
                Segment::Field(_) => {
                    let k = field_index_of_segment[si];
                    spans[k] = (pos, pos);
                    last_star = Some(si);
                    star_end = pos;
                    si += 1;
                    continue;
                }
            }
        } else if pos == record.len() {
            return Some(MatchResult { field_spans: spans });
        }
        // Mismatch (or trailing record bytes): grow the most recent field by
        // one byte and retry the segments after it.
        match last_star {
            Some(star_si) => {
                star_end += 1;
                if star_end > record.len() {
                    return None;
                }
                let k = field_index_of_segment[star_si];
                spans[k] = (spans[k].0, star_end);
                pos = star_end;
                si = star_si + 1;
            }
            None => return None,
        }
    }
}

/// Match `record` against `pattern` and additionally require every residual
/// value to satisfy its field encoder ([`crate::encoders::FieldEncoder::accepts`]).
///
/// This is the check the online compressor performs; a record that matches
/// structurally but violates an encoder constraint is treated as not
/// matching this pattern (and ultimately as an outlier if no pattern fits).
pub fn match_record(pattern: &Pattern, record: &[u8]) -> Option<MatchResult> {
    let result = match_structure(pattern, record)?;
    let encoders = pattern.field_encoders();
    debug_assert_eq!(encoders.len(), result.field_spans.len());
    for (enc, &(s, e)) in encoders.iter().zip(result.field_spans.iter()) {
        if !enc.accepts(&record[s..e]) {
            return None;
        }
    }
    Some(result)
}

/// Reassemble a record from a pattern and decoded field values; the inverse
/// of residual extraction, used by decompression.
pub fn reassemble(pattern: &Pattern, field_values: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut k = 0;
    for seg in pattern.segments() {
        match seg {
            Segment::Literal(l) => out.extend_from_slice(l),
            Segment::Field(_) => {
                out.extend_from_slice(&field_values[k]);
                k += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    #[test]
    fn paper_example_foobar_matches_both_patterns() {
        // Section 3.2: record "foobar", patterns "*ob*" and "*ooba*".
        let record = b"foobar";
        let p1 = Pattern::parse("*ob*");
        let p2 = Pattern::parse("*ooba*");
        let m1 = match_structure(&p1, record).expect("*ob* matches foobar");
        let m2 = match_structure(&p2, record).expect("*ooba* matches foobar");
        // Residuals for the longer pattern are ["f", "r"], as in the paper.
        assert_eq!(
            m2.field_values(record),
            vec![b"f".as_slice(), b"r".as_slice()]
        );
        assert_eq!(m2.residual_len(), 2);
        assert!(m1.residual_len() > m2.residual_len());
    }

    #[test]
    fn figure2_pattern_extracts_expected_residuals() {
        let p = Pattern::parse(
            "V5company_charging-100-*<INT(2,1)>accenter*<INT(2,1)>ac*<VARCHAR>counting_log_*<VARCHAR>202*<INT(6,2)>",
        );
        let record = b"V5company_charging-100-57accenter20ac_accounting_log_202123050";
        let m = match_record(&p, record).expect("record from Figure 2 matches its pattern");
        let values = m.field_values(record);
        assert_eq!(
            values,
            vec![
                b"57".as_slice(),
                b"20".as_slice(),
                b"_ac".as_slice(),
                b"".as_slice(),
                b"123050".as_slice()
            ]
        );
    }

    #[test]
    fn literal_only_pattern_requires_exact_equality() {
        let p = Pattern::parse("exact-match");
        assert!(match_structure(&p, b"exact-match").is_some());
        assert!(match_structure(&p, b"exact-match!").is_none());
        assert!(match_structure(&p, b"exact-matc").is_none());
    }

    #[test]
    fn leading_and_trailing_fields_absorb_prefix_and_suffix() {
        let p = Pattern::parse("*middle*");
        let record = b"AAAmiddleBBB";
        let m = match_structure(&p, record).unwrap();
        assert_eq!(
            m.field_values(record),
            vec![b"AAA".as_slice(), b"BBB".as_slice()]
        );
        // Empty prefix/suffix also allowed.
        let m = match_structure(&p, b"middle").unwrap();
        assert_eq!(
            m.field_values(b"middle"),
            vec![b"".as_slice(), b"".as_slice()]
        );
    }

    #[test]
    fn backtracking_finds_later_occurrences() {
        // Greedy-first match of "b" would leave the trailing "b" unmatched;
        // the matcher must backtrack and assign the middle field correctly.
        let p = Pattern::parse("a*b");
        let record = b"acbdb";
        let m = match_structure(&p, record).unwrap();
        assert_eq!(m.field_values(record), vec![b"cbd".as_slice()]);
    }

    #[test]
    fn non_matching_records_return_none() {
        let p = Pattern::parse("user=*;id=*");
        assert!(match_structure(&p, b"user=alice;id=42").is_some());
        assert!(match_structure(&p, b"user=alice").is_none());
        assert!(match_structure(&p, b"id=42;user=alice").is_none());
    }

    #[test]
    fn encoder_constraints_are_enforced_by_match_record() {
        let p = Pattern::parse("order-*<INT(4,2)>-done");
        assert!(match_record(&p, b"order-0042-done").is_some());
        // 3 digits: structure matches but the INT(4,2) constraint fails.
        assert!(match_structure(&p, b"order-042-done").is_some());
        assert!(match_record(&p, b"order-042-done").is_none());
        // Non-digit content fails too.
        assert!(match_record(&p, b"order-abcd-done").is_none());
    }

    #[test]
    fn reassemble_is_inverse_of_extraction() {
        let p = Pattern::parse("ts=*<VARINT> level=*<CHAR(4)> msg=*");
        let record = b"ts=1639574096 level=INFO msg=connection established";
        let m = match_record(&p, record).unwrap();
        let values: Vec<Vec<u8>> = m.field_values(record).iter().map(|v| v.to_vec()).collect();
        assert_eq!(reassemble(&p, &values), record);
    }

    #[test]
    fn empty_record_matches_only_all_field_or_empty_patterns() {
        assert!(match_structure(&Pattern::parse("*"), b"").is_some());
        assert!(match_structure(&Pattern::parse("a*"), b"").is_none());
        assert!(match_structure(&Pattern::parse(""), b"").is_some());
    }

    #[test]
    fn adversarial_backtracking_input_terminates() {
        // Worst-case O(n*m) input: many stars and repeated characters.
        let p = Pattern::parse("a*a*a*a*a*a*ab");
        let record = vec![b'a'; 300];
        assert!(match_structure(&p, &record).is_none());
        let mut ok = vec![b'a'; 300];
        ok.push(b'b');
        assert!(match_structure(&p, &ok).is_some());
    }
}
