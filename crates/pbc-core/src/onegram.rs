//! 1-gram distance pruning (Definition 5, Section 5.1).
//!
//! The 1-gram distance between two strings is computed from the multisets of
//! their symbols:
//!
//! ```text
//! Dist₁(s₁, s₂) = |MS₁ ∪ MS₂| − 2·|MS₁ ∩ MS₂|
//! ```
//!
//! Two clusters with very different symbol content cannot merge cheaply, so
//! the clustering loop uses a scaled form of this distance as a cheap screen
//! before running the `O(n·m)` dynamic program of Algorithm 1.

use crate::cluster::PatElem;

/// Byte-frequency signature (symbol multiset) of a wildcard sequence's
/// literal content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneGram {
    counts: [u32; 256],
    total: u32,
}

impl Default for OneGram {
    fn default() -> Self {
        OneGram {
            counts: [0u32; 256],
            total: 0,
        }
    }
}

impl OneGram {
    /// Signature of a plain byte string.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut counts = [0u32; 256];
        for &b in bytes {
            counts[b as usize] += 1;
        }
        OneGram {
            counts,
            total: bytes.len() as u32,
        }
    }

    /// Signature of a wildcard sequence (gaps are ignored).
    pub fn from_elems(elems: &[PatElem]) -> Self {
        let mut counts = [0u32; 256];
        let mut total = 0;
        for e in elems {
            if let PatElem::Lit(b) = e {
                counts[*b as usize] += 1;
                total += 1;
            }
        }
        OneGram { counts, total }
    }

    /// Number of symbols in the multiset.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Multiset 1-gram distance of Definition 5:
    /// `|MS₁ ∪ MS₂| − 2·|MS₁ ∩ MS₂|`, where union takes per-symbol maxima
    /// and intersection per-symbol minima. Negative values indicate heavy
    /// overlap (merging is likely cheap); `n₁ + n₂` indicates disjoint
    /// content (merging demotes everything to residuals).
    pub fn distance(&self, other: &Self) -> i64 {
        let mut union = 0i64;
        let mut inter = 0i64;
        for i in 0..256 {
            let a = i64::from(self.counts[i]);
            let b = i64::from(other.counts[i]);
            union += a.max(b);
            inter += a.min(b);
        }
        union - 2 * inter
    }

    /// A conservative lower-bound estimate of the encoding-length increment
    /// of merging two clusters with these signatures and the given member
    /// counts: every symbol present in one cluster's sequence but not the
    /// other must be stored as residual by at least `min(size)` records.
    ///
    /// Used for pruning: if this bound already exceeds the best increment
    /// found so far, the exact DP is skipped.
    pub fn merge_lower_bound(&self, other: &Self, size_self: usize, size_other: usize) -> i64 {
        let mut only_self = 0i64;
        let mut only_other = 0i64;
        for i in 0..256 {
            let a = i64::from(self.counts[i]);
            let b = i64::from(other.counts[i]);
            only_self += (a - b).max(0);
            only_other += (b - a).max(0);
        }
        // Symbols unique to `self`'s sequence become residual bytes for all
        // of self's records; likewise for `other`. Descriptor costs and
        // wildcard refunds are ignored, keeping the bound conservative on
        // the side of never pruning a genuinely good merge... unless the
        // merge's refunds outweigh it, which the `saturating` slack below
        // absorbs.
        only_self * size_self as i64 + only_other * size_other as i64
            - 2 * (size_self + size_other) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_negative_distance() {
        let a = OneGram::from_bytes(b"aab");
        let b = OneGram::from_bytes(b"aab");
        // |union| = 3, |inter| = 3 → 3 - 6 = -3.
        assert_eq!(a.distance(&b), -3);
    }

    #[test]
    fn disjoint_strings_have_distance_equal_to_total_length() {
        let a = OneGram::from_bytes(b"aaa");
        let b = OneGram::from_bytes(b"bbbb");
        assert_eq!(a.distance(&b), 7);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = OneGram::from_bytes(b"hello world");
        let b = OneGram::from_bytes(b"help the world");
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn partially_overlapping_strings_fall_in_between() {
        let a = OneGram::from_bytes(b"abcd");
        let b = OneGram::from_bytes(b"abxy");
        // union = {a,b,c,d,x,y} = 6, inter = {a,b} = 2 → 6 - 4 = 2.
        assert_eq!(a.distance(&b), 2);
        let identical = OneGram::from_bytes(b"abcd").distance(&OneGram::from_bytes(b"abcd"));
        let disjoint = OneGram::from_bytes(b"abcd").distance(&OneGram::from_bytes(b"wxyz"));
        assert!(identical < a.distance(&b));
        assert!(a.distance(&b) < disjoint);
    }

    #[test]
    fn gaps_are_ignored_in_element_signatures() {
        let elems = crate::cluster::Cluster::cs_from_str("ab*cd*");
        let sig = OneGram::from_elems(&elems);
        assert_eq!(sig.total(), 4);
        assert_eq!(sig.distance(&OneGram::from_bytes(b"abcd")), -4);
    }

    #[test]
    fn lower_bound_orders_similar_before_dissimilar() {
        let base = OneGram::from_bytes(b"user=alice action=login status=ok");
        let similar = OneGram::from_bytes(b"user=bob action=login status=ok");
        let dissimilar = OneGram::from_bytes(b"7f3a9c0e-22bb-4f6d-9a1e-55c2");
        let lb_similar = base.merge_lower_bound(&similar, 5, 5);
        let lb_dissimilar = base.merge_lower_bound(&dissimilar, 5, 5);
        assert!(lb_similar < lb_dissimilar);
    }
}
