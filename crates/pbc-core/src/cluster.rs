//! Cluster representation used during pattern extraction.
//!
//! While clustering, each cluster is summarised by its evolving *wildcard
//! sequence* (the common subsequence of its members with gaps where they
//! differ — the `cs` of the paper's `Pat(c) = {cs, L}`), the number of
//! member records, and a 1-gram signature used for pruning.

use crate::onegram::OneGram;

/// One element of a cluster's wildcard sequence: a shared literal byte or a
/// gap (which becomes a wildcard field in the final pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatElem {
    /// A byte every member contains at this aligned position.
    Lit(u8),
    /// A varying region (residual subsequence slot).
    Gap,
}

/// A cluster of sample records plus its summary used by the greedy merging.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The wildcard sequence (common subsequence with gaps).
    pub cs: Vec<PatElem>,
    /// Indices of the member records in the sample set.
    pub members: Vec<usize>,
    /// Total record weight (≥ `members.len()` when duplicates were folded).
    pub weight: usize,
    /// 1-gram signature of the wildcard sequence's literal bytes.
    pub onegram: OneGram,
}

impl Cluster {
    /// Create a singleton cluster for one sample record.
    ///
    /// `max_cs_len` caps the number of leading bytes used as the wildcard
    /// sequence (long records are clustered on their prefix; a trailing gap
    /// keeps the eventual pattern matching the full record).
    pub fn singleton(index: usize, record: &[u8], weight: usize, max_cs_len: usize) -> Self {
        let take = record.len().min(max_cs_len);
        let mut cs: Vec<PatElem> = record[..take].iter().map(|&b| PatElem::Lit(b)).collect();
        if take < record.len() {
            cs.push(PatElem::Gap);
        }
        let onegram = OneGram::from_elems(&cs);
        Cluster {
            cs,
            members: vec![index],
            weight,
            onegram,
        }
    }

    /// Number of literal (non-gap) elements in the wildcard sequence.
    pub fn literal_len(&self) -> usize {
        self.cs
            .iter()
            .filter(|e| matches!(e, PatElem::Lit(_)))
            .count()
    }

    /// Number of gap regions in the wildcard sequence.
    pub fn gap_count(&self) -> usize {
        let mut count = 0;
        let mut in_gap = false;
        for e in &self.cs {
            match e {
                PatElem::Gap => {
                    if !in_gap {
                        count += 1;
                        in_gap = true;
                    }
                }
                PatElem::Lit(_) => in_gap = false,
            }
        }
        count
    }

    /// Merge bookkeeping: combine members, weights and recompute the 1-gram
    /// signature for a freshly merged wildcard sequence.
    pub fn merged_from(a: &Cluster, b: &Cluster, cs: Vec<PatElem>) -> Self {
        let mut members = Vec::with_capacity(a.members.len() + b.members.len());
        members.extend_from_slice(&a.members);
        members.extend_from_slice(&b.members);
        let onegram = OneGram::from_elems(&cs);
        Cluster {
            cs,
            members,
            weight: a.weight + b.weight,
            onegram,
        }
    }

    /// Render the wildcard sequence in the paper's notation (`ab3*2`),
    /// coalescing adjacent gaps. Used in tests and debugging output.
    pub fn display(&self) -> String {
        let mut s = String::new();
        let mut in_gap = false;
        for e in &self.cs {
            match e {
                PatElem::Lit(b) => {
                    s.push(*b as char);
                    in_gap = false;
                }
                PatElem::Gap => {
                    if !in_gap {
                        s.push('*');
                        in_gap = true;
                    }
                }
            }
        }
        s
    }

    /// Parse the paper's notation into a wildcard sequence (for tests).
    pub fn cs_from_str(text: &str) -> Vec<PatElem> {
        text.bytes()
            .map(|b| {
                if b == b'*' {
                    PatElem::Gap
                } else {
                    PatElem::Lit(b)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_keeps_all_bytes_as_literals() {
        let c = Cluster::singleton(0, b"ab3cz2", 1, 1024);
        assert_eq!(c.literal_len(), 6);
        assert_eq!(c.gap_count(), 0);
        assert_eq!(c.display(), "ab3cz2");
        assert_eq!(c.weight, 1);
    }

    #[test]
    fn singleton_truncates_long_records_with_trailing_gap() {
        let record = vec![b'x'; 100];
        let c = Cluster::singleton(3, &record, 2, 16);
        assert_eq!(c.literal_len(), 16);
        assert_eq!(c.gap_count(), 1);
        assert!(c.display().ends_with('*'));
        assert_eq!(c.weight, 2);
    }

    #[test]
    fn display_coalesces_adjacent_gaps() {
        let c = Cluster {
            cs: vec![
                PatElem::Lit(b'a'),
                PatElem::Gap,
                PatElem::Gap,
                PatElem::Lit(b'b'),
            ],
            members: vec![0],
            weight: 1,
            onegram: OneGram::default(),
        };
        assert_eq!(c.display(), "a*b");
        assert_eq!(c.gap_count(), 1);
    }

    #[test]
    fn cs_from_str_roundtrips_through_display() {
        let cs = Cluster::cs_from_str("ab3*2");
        let c = Cluster {
            onegram: OneGram::from_elems(&cs),
            cs,
            members: vec![0],
            weight: 1,
        };
        assert_eq!(c.display(), "ab3*2");
        assert_eq!(c.literal_len(), 4);
    }

    #[test]
    fn merged_from_combines_members_and_weights() {
        let a = Cluster::singleton(0, b"abc", 2, 64);
        let b = Cluster::singleton(1, b"abd", 3, 64);
        let merged = Cluster::merged_from(&a, &b, Cluster::cs_from_str("ab*"));
        assert_eq!(merged.members, vec![0, 1]);
        assert_eq!(merged.weight, 5);
        assert_eq!(merged.display(), "ab*");
    }
}
