//! Pattern extraction: the offline phase turning sample records into a
//! [`PatternDictionary`] (Figure 1(a)).
//!
//! Pipeline: sample → agglomerative clustering (minimal encoding length) →
//! per-cluster field-encoder inference → pattern dictionary, optionally
//! truncated to a byte budget.

use crate::clustering::{cluster_records, ClusteringResult};
use crate::config::PbcConfig;
use crate::dictionary::PatternDictionary;
use crate::encoding_length::pattern_with_inferred_encoders;
use crate::pattern::Pattern;
use crate::sampling::sample_records;

/// Summary of an extraction run (the observability the production case
/// study in Section 7.5 relies on).
#[derive(Debug, Clone)]
pub struct ExtractionReport {
    /// Number of records used after sampling.
    pub sample_records: usize,
    /// Total sampled bytes.
    pub sample_bytes: usize,
    /// Number of clusters produced.
    pub clusters: usize,
    /// Number of patterns kept in the dictionary.
    pub patterns: usize,
    /// Total pattern dictionary size in bytes.
    pub dictionary_bytes: usize,
    /// Exact distance evaluations performed by the clustering.
    pub exact_evaluations: usize,
}

/// Extract a pattern dictionary from already-sampled records.
pub fn extract_from_samples(
    samples: &[Vec<u8>],
    config: &PbcConfig,
) -> (PatternDictionary, ExtractionReport) {
    // Long-record datasets (e.g. multi-KB JSON documents): the wildcard
    // sequences must cover more of the record or the trailing bytes all land
    // in one huge residual field. Raise the sequence cap and shrink the
    // clustering sample so the O(n·m) merges stay affordable.
    let mut clustering_config = config.clustering();
    let mut samples = samples;
    let truncated_sample;
    if !samples.is_empty() {
        let avg_len = samples.iter().map(|r| r.len()).sum::<usize>() / samples.len();
        if avg_len > clustering_config.max_cs_len {
            clustering_config.max_cs_len = avg_len.next_power_of_two().min(4096);
            let max_records = (96 * 512 / clustering_config.max_cs_len).max(16);
            if samples.len() > max_records {
                truncated_sample = samples[..max_records].to_vec();
                samples = &truncated_sample;
            }
        }
    }
    let clustering: ClusteringResult = cluster_records(samples, &clustering_config);

    let mut patterns: Vec<Pattern> = Vec::with_capacity(clustering.clusters.len());
    for cluster in &clustering.clusters {
        if cluster.literal_len() < config.min_pattern_literal {
            continue;
        }
        let members: Vec<&[u8]> = cluster
            .members
            .iter()
            .map(|&i| samples[i].as_slice())
            .collect();
        let pattern = pattern_with_inferred_encoders(&cluster.cs, &members);
        if pattern.literal_len() >= config.min_pattern_literal {
            patterns.push(pattern);
        }
    }
    // Deduplicate identical patterns (clusters can converge to the same one).
    patterns.sort_by_key(|a| a.display());
    patterns.dedup();

    let mut dictionary = PatternDictionary::from_patterns(patterns);
    if let Some(budget) = config.pattern_budget_bytes {
        dictionary.truncate_to_budget(budget);
    }

    let report = ExtractionReport {
        sample_records: samples.len(),
        sample_bytes: samples.iter().map(|r| r.len()).sum(),
        clusters: clustering.clusters.len(),
        patterns: dictionary.len(),
        dictionary_bytes: dictionary.size_bytes(),
        exact_evaluations: clustering.exact_evaluations,
    };
    (dictionary, report)
}

/// Sample `records` according to the config and extract a pattern
/// dictionary from the sample.
pub fn extract_patterns(
    records: &[Vec<u8>],
    config: &PbcConfig,
) -> (PatternDictionary, ExtractionReport) {
    let samples = sample_records(
        records,
        config.max_sample_records,
        config.max_sample_bytes,
        config.sample_seed,
    );
    extract_from_samples(&samples, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::match_record;

    fn trade_records(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                format!(
                    "{{\"symbol\": \"{}\", \"side\": \"{}\", \"quantity\": {}, \"price\": {}.{:02}, \"timestamp\": 16395{:05}}}",
                    ["IBM", "AAPL", "MSFT", "GOOG"][i % 4],
                    if i % 2 == 0 { "B" } else { "S" },
                    100 + (i % 50),
                    50 + (i % 20),
                    i % 100,
                    i % 100_000,
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn extraction_produces_patterns_that_match_unseen_records() {
        let records = trade_records(400);
        let config = PbcConfig::small();
        let (dict, report) = extract_patterns(&records, &config);
        assert!(!dict.is_empty(), "trade records must produce patterns");
        assert!(report.patterns == dict.len());
        assert!(report.dictionary_bytes > 0);

        // Most unseen records should match some pattern.
        let matcher = crate::multimatch::MultiMatcher::new(&dict);
        let unseen = trade_records(500);
        let matched = unseen
            .iter()
            .skip(400)
            .filter(|r| matcher.best_match(r).is_some())
            .count();
        assert!(
            matched >= 80,
            "at least 80% of unseen records should match, got {matched}/100"
        );
    }

    #[test]
    fn extracted_patterns_capture_the_shared_template() {
        let records = trade_records(200);
        let (dict, _) = extract_patterns(&records, &PbcConfig::small());
        let found = dict.iter().any(|(_, p)| {
            p.display().contains("\"symbol\": \"") && p.display().contains("\"timestamp\": ")
        });
        assert!(
            found,
            "patterns: {:?}",
            dict.iter().map(|(_, p)| p.display()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_pattern_matches_at_least_one_training_record() {
        let records = trade_records(150);
        let config = PbcConfig::small();
        let samples = crate::sampling::sample_records(
            &records,
            config.max_sample_records,
            config.max_sample_bytes,
            config.sample_seed,
        );
        let (dict, _) = extract_from_samples(&samples, &config);
        for (_, pattern) in dict.iter() {
            let hits = samples
                .iter()
                .filter(|r| match_record(pattern, r).is_some())
                .count();
            assert!(
                hits > 0,
                "pattern {} matches no training record",
                pattern.display()
            );
        }
    }

    #[test]
    fn pattern_budget_limits_dictionary_size() {
        let records = trade_records(300);
        let mut config = PbcConfig::small();
        config.target_clusters = 16;
        config.pattern_budget_bytes = Some(200);
        let (dict, report) = extract_patterns(&records, &config);
        assert!(dict.size_bytes() <= 200);
        assert_eq!(report.dictionary_bytes, dict.size_bytes());
    }

    #[test]
    fn empty_input_produces_empty_dictionary() {
        let (dict, report) = extract_patterns(&[], &PbcConfig::default());
        assert!(dict.is_empty());
        assert_eq!(report.sample_records, 0);
    }

    #[test]
    fn heterogeneous_data_produces_multiple_patterns() {
        let mut records = trade_records(100);
        for i in 0..100 {
            records
                .push(format!("GET /static/asset_{i}.css HTTP/1.1 200 {}", 1000 + i).into_bytes());
        }
        let mut config = PbcConfig::small();
        config.target_clusters = 6;
        let (dict, _) = extract_patterns(&records, &config);
        assert!(
            dict.len() >= 2,
            "expected patterns for both families, got {}",
            dict.len()
        );
    }
}
