//! Greedy agglomerative clustering with the minimal-encoding-length
//! criterion (Section 4.2, Figure 3), plus the edit-distance and entropy
//! criteria used by the ablation of Figure 7, and the 1-gram pruning of
//! Section 5.1.
//!
//! Every sample record starts as its own cluster; each iteration merges the
//! pair of clusters with the smallest encoding-length increment until only
//! `target_clusters` remain. Candidate pairs are kept in a lazy priority
//! queue: with pruning enabled a pair enters the queue with its cheap 1-gram
//! lower bound and is only evaluated with the exact `O(n·m)` dynamic program
//! when it reaches the front — the same work-avoidance idea as the paper's
//! pruning strategy, organised so the result stays identical to the
//! exhaustive computation.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use crate::cluster::{Cluster, PatElem};
use crate::dp;
use crate::entropy::entropy_discriminant;

/// Which closeness measure drives the greedy merging (Figure 7's ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// The paper's criterion: minimal encoding-length increment
    /// (Definition 3, computed by Algorithm 1).
    EncodingLength,
    /// Baseline: Levenshtein distance between the clusters' wildcard
    /// sequences.
    EditDistance,
    /// Baseline: the entropy discriminant of Section 6 (Equation 9).
    Entropy,
}

/// Clustering parameters.
#[derive(Debug, Clone)]
pub struct ClusteringConfig {
    /// Stop when this many clusters remain (the paper's `k`).
    pub target_clusters: usize,
    /// Closeness criterion.
    pub criterion: Criterion,
    /// Enable the 1-gram lower-bound pruning of Section 5.1.
    pub use_onegram_pruning: bool,
    /// Cap on the wildcard-sequence length used during clustering; longer
    /// records are clustered on their prefix (a trailing gap keeps the
    /// resulting pattern matching complete records).
    pub max_cs_len: usize,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            target_clusters: 64,
            criterion: Criterion::EncodingLength,
            use_onegram_pruning: true,
            max_cs_len: 512,
        }
    }
}

/// Output of [`cluster_records`], including the work counters reported by
/// the Figure 8 experiment.
#[derive(Debug, Clone)]
pub struct ClusteringResult {
    /// The surviving clusters.
    pub clusters: Vec<Cluster>,
    /// Number of merges performed.
    pub merges: usize,
    /// Number of exact distance evaluations (dynamic programs / edit
    /// distances) that were run.
    pub exact_evaluations: usize,
    /// Number of candidate pairs whose exact evaluation was avoided because
    /// the pair never reached the front of the queue before its clusters
    /// were merged away.
    pub pruned_pairs: usize,
}

/// Heap entry: candidate merge of two clusters identified by generation
/// stamps. `exact` records whether `score` is the exact criterion value or
/// the cheap lower bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    score: i64,
    a: u64,
    b: u64,
    exact: bool,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| self.a.cmp(&other.a))
            .then_with(|| self.b.cmp(&other.b))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Greedy agglomerative clustering of `samples` under the given
/// configuration.
pub fn cluster_records(samples: &[Vec<u8>], config: &ClusteringConfig) -> ClusteringResult {
    // --- Deduplicate identical records (they trivially share a pattern). ---
    // pbc-allow(determinism): lookup-only dedup index, never iterated; slot order follows input order
    let mut first_index: HashMap<&[u8], usize> = HashMap::new();
    let mut weights: Vec<usize> = Vec::new();
    let mut representatives: Vec<usize> = Vec::new();
    let mut extra_members: Vec<Vec<usize>> = Vec::new();
    for (i, rec) in samples.iter().enumerate() {
        match first_index.get(rec.as_slice()) {
            Some(&slot) => {
                weights[slot] += 1;
                extra_members[slot].push(i);
            }
            None => {
                first_index.insert(rec.as_slice(), representatives.len());
                representatives.push(i);
                weights.push(1);
                extra_members.push(Vec::new());
            }
        }
    }

    // --- Build singleton clusters. ---
    // Keyed by generation stamp in a BTreeMap: every iteration over the
    // active set (pair seeding, re-pairing after a merge, final collection)
    // must follow a deterministic order, or extracted dictionaries differ
    // between identically-trained compressors (HashMap order is randomized
    // per instance, which broke pbc-archive's byte-identical-segments
    // guarantee).
    let mut stamps: u64 = 0;
    let mut active: BTreeMap<u64, Cluster> = BTreeMap::new();
    for (slot, &rep) in representatives.iter().enumerate() {
        let mut cluster = Cluster::singleton(rep, &samples[rep], weights[slot], config.max_cs_len);
        cluster.members.extend(extra_members[slot].iter().copied());
        active.insert(stamps, cluster);
        stamps += 1;
    }

    let mut result = ClusteringResult {
        clusters: Vec::new(),
        merges: 0,
        exact_evaluations: 0,
        pruned_pairs: 0,
    };

    if active.len() <= config.target_clusters {
        result.clusters = active.into_values().collect();
        return result;
    }

    // --- Seed the candidate queue with all pairs. ---
    let mut heap: BinaryHeap<Reverse<Candidate>> = BinaryHeap::new();
    let ids: Vec<u64> = active.keys().copied().collect();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            let ca = &active[&a];
            let cb = &active[&b];
            let candidate = seed_candidate(ca, cb, a, b, config, &mut result);
            heap.push(Reverse(candidate));
        }
    }

    // --- Greedy merging. ---
    while active.len() > config.target_clusters {
        let Some(Reverse(cand)) = heap.pop() else {
            break;
        };
        let (Some(ca), Some(cb)) = (active.get(&cand.a), active.get(&cand.b)) else {
            // One of the clusters was already merged away: the pair is stale.
            if !cand.exact {
                result.pruned_pairs += 1;
            }
            continue;
        };
        if !cand.exact {
            // Lazily replace the lower bound with the exact value and requeue.
            let exact = exact_score(ca, cb, config.criterion, &mut result);
            heap.push(Reverse(Candidate {
                score: exact,
                a: cand.a,
                b: cand.b,
                exact: true,
            }));
            continue;
        }

        // Merge the pair.
        let merged_cs = merge_cs(ca, cb);
        let merged = Cluster::merged_from(ca, cb, merged_cs);
        active.remove(&cand.a);
        active.remove(&cand.b);
        let new_id = stamps;
        stamps += 1;
        result.merges += 1;

        // New candidate pairs between the merged cluster and all survivors.
        for (&other_id, other) in active.iter() {
            let candidate = seed_candidate(&merged, other, new_id, other_id, config, &mut result);
            heap.push(Reverse(candidate));
        }
        active.insert(new_id, merged);
    }

    result.clusters = active.into_values().collect();
    result
}

/// Build the initial candidate entry for a pair: the exact score when
/// pruning is off (or for non-EL criteria), the 1-gram lower bound otherwise.
fn seed_candidate(
    ca: &Cluster,
    cb: &Cluster,
    a: u64,
    b: u64,
    config: &ClusteringConfig,
    result: &mut ClusteringResult,
) -> Candidate {
    if config.use_onegram_pruning && config.criterion == Criterion::EncodingLength {
        let bound = ca
            .onegram
            .merge_lower_bound(&cb.onegram, ca.weight, cb.weight);
        Candidate {
            score: bound,
            a,
            b,
            exact: false,
        }
    } else {
        let score = exact_score(ca, cb, config.criterion, result);
        Candidate {
            score,
            a,
            b,
            exact: true,
        }
    }
}

/// Exact criterion value for a pair of clusters.
fn exact_score(
    ca: &Cluster,
    cb: &Cluster,
    criterion: Criterion,
    result: &mut ClusteringResult,
) -> i64 {
    result.exact_evaluations += 1;
    match criterion {
        Criterion::EncodingLength => {
            dp::min_encoding_length_increment(&ca.cs, &cb.cs, ca.weight, cb.weight)
        }
        Criterion::EditDistance => edit_distance(&ca.cs, &cb.cs),
        Criterion::Entropy => {
            let merged = dp::merge(&ca.cs, &cb.cs, ca.weight, cb.weight);
            let merged_literal_len = merged
                .cs
                .iter()
                .filter(|e| matches!(e, PatElem::Lit(_)))
                .count();
            entropy_discriminant(ca, cb, merged_literal_len)
        }
    }
}

/// Merged wildcard sequence of two clusters (always via the DP alignment, so
/// all three criteria produce valid patterns and only the *selection* of
/// pairs differs — which is what the ablation isolates).
fn merge_cs(ca: &Cluster, cb: &Cluster) -> Vec<PatElem> {
    dp::merge(&ca.cs, &cb.cs, ca.weight, cb.weight).cs
}

/// Levenshtein distance between two wildcard sequences (gaps count as an
/// ordinary symbol), used by the edit-distance ablation arm.
pub fn edit_distance(a: &[PatElem], b: &[PatElem]) -> i64 {
    let n = a.len();
    let m = b.len();
    if n == 0 {
        return m as i64;
    }
    if m == 0 {
        return n as i64;
    }
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m] as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_like_samples() -> Vec<Vec<u8>> {
        let mut samples = Vec::new();
        for i in 0..30 {
            samples.push(
                format!(
                    "user_profile:{{\"id\": {}, \"plan\": \"pro\", \"active\": true}}",
                    1000 + i
                )
                .into_bytes(),
            );
        }
        for i in 0..30 {
            samples.push(
                format!(
                    "order_event:{{\"order\": {}, \"status\": \"shipped\", \"items\": {}}}",
                    77000 + i,
                    i % 9
                )
                .into_bytes(),
            );
        }
        for i in 0..30 {
            samples.push(
                format!(
                    "2023-06-0{} INFO worker-{} heartbeat ok",
                    (i % 9) + 1,
                    i % 4
                )
                .into_bytes(),
            );
        }
        samples
    }

    #[test]
    fn clustering_recovers_the_three_record_families() {
        let samples = kv_like_samples();
        let config = ClusteringConfig {
            target_clusters: 3,
            ..ClusteringConfig::default()
        };
        let result = cluster_records(&samples, &config);
        assert_eq!(result.clusters.len(), 3);
        // Each cluster should be pure: all members from the same family.
        for cluster in &result.clusters {
            let families: std::collections::HashSet<usize> =
                cluster.members.iter().map(|&i| i / 30).collect();
            assert_eq!(
                families.len(),
                1,
                "cluster {} mixes families {:?}",
                cluster.display(),
                families
            );
        }
        // Total membership is preserved.
        let total: usize = result.clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, samples.len());
        assert_eq!(result.merges, samples.len() - 3 - duplicates(&samples));
    }

    fn duplicates(samples: &[Vec<u8>]) -> usize {
        let unique: std::collections::HashSet<&[u8]> =
            samples.iter().map(|s| s.as_slice()).collect();
        samples.len() - unique.len()
    }

    #[test]
    fn clusters_retain_shared_literals_in_their_patterns() {
        let samples = kv_like_samples();
        let config = ClusteringConfig {
            target_clusters: 3,
            ..ClusteringConfig::default()
        };
        let result = cluster_records(&samples, &config);
        let displays: Vec<String> = result.clusters.iter().map(|c| c.display()).collect();
        assert!(
            displays.iter().any(|d| d.contains("user_profile")),
            "expected a user_profile pattern in {displays:?}"
        );
        assert!(displays.iter().any(|d| d.contains("order_event")));
        assert!(displays.iter().any(|d| d.contains("INFO worker-")));
    }

    #[test]
    fn pruned_and_unpruned_clustering_agree_on_cluster_count_and_quality() {
        let samples = kv_like_samples();
        let base = ClusteringConfig {
            target_clusters: 3,
            ..ClusteringConfig::default()
        };
        let pruned = cluster_records(&samples, &base);
        let naive = cluster_records(
            &samples,
            &ClusteringConfig {
                use_onegram_pruning: false,
                ..base
            },
        );
        assert_eq!(pruned.clusters.len(), naive.clusters.len());
        // Pruning must reduce the number of exact DP evaluations.
        assert!(
            pruned.exact_evaluations < naive.exact_evaluations,
            "pruned {} vs naive {}",
            pruned.exact_evaluations,
            naive.exact_evaluations
        );
    }

    #[test]
    fn fewer_unique_records_than_target_returns_singletons() {
        let samples = vec![b"a".to_vec(), b"b".to_vec(), b"a".to_vec()];
        let config = ClusteringConfig {
            target_clusters: 10,
            ..ClusteringConfig::default()
        };
        let result = cluster_records(&samples, &config);
        assert_eq!(result.clusters.len(), 2);
        assert_eq!(result.merges, 0);
        // The duplicate record is folded into one cluster with weight 2.
        let weights: Vec<usize> = result.clusters.iter().map(|c| c.weight).collect();
        assert!(weights.contains(&2));
    }

    #[test]
    fn all_criteria_produce_valid_partitions() {
        let samples = kv_like_samples();
        for criterion in [
            Criterion::EncodingLength,
            Criterion::EditDistance,
            Criterion::Entropy,
        ] {
            let config = ClusteringConfig {
                target_clusters: 4,
                criterion,
                ..ClusteringConfig::default()
            };
            let result = cluster_records(&samples, &config);
            assert_eq!(result.clusters.len(), 4, "criterion {criterion:?}");
            let total: usize = result.clusters.iter().map(|c| c.members.len()).sum();
            assert_eq!(total, samples.len(), "criterion {criterion:?}");
        }
    }

    #[test]
    fn edit_distance_matches_known_values() {
        use crate::cluster::Cluster;
        let d =
            |a: &str, b: &str| edit_distance(&Cluster::cs_from_str(a), &Cluster::cs_from_str(b));
        assert_eq!(d("kitten", "sitting"), 3);
        assert_eq!(d("", "abc"), 3);
        assert_eq!(d("abc", "abc"), 0);
        assert_eq!(d("a*c", "abc"), 1);
    }

    #[test]
    fn empty_sample_set_yields_no_clusters() {
        let result = cluster_records(&[], &ClusteringConfig::default());
        assert!(result.clusters.is_empty());
        assert_eq!(result.merges, 0);
    }
}
