//! The PBC compressor: per-record, random-access compression with an
//! offline-trained pattern dictionary (Figure 1(b)/(c)).
//!
//! A compressed record is:
//!
//! ```text
//! varint pattern_id           (0 = outlier)
//! if outlier:   raw record bytes
//! otherwise:    encoded field values in pattern order
//! ```
//!
//! Residual mode [`ResidualMode::Fsst`] corresponds to the paper's `PBC_F`
//! variant: variable-length residual values (and outlier payloads) are
//! additionally passed through a trained FSST symbol table, trading a little
//! speed for a better ratio while keeping per-record random access.

use pbc_codecs::fsst::FsstCodec;
use pbc_codecs::traits::{Codec, TrainableCodec};
use pbc_codecs::varint;

use crate::config::PbcConfig;
use crate::dictionary::{PatternDictionary, OUTLIER_ID};
use crate::encoders::FieldEncoder;
use crate::error::{PbcError, Result};
use crate::extraction::{extract_from_samples, ExtractionReport};
use crate::matching::reassemble;
use crate::multimatch::MultiMatcher;
use crate::pattern::Segment;
use crate::stats::{CompressionStats, StatsSnapshot};

/// How residual values are serialized.
#[derive(Debug, Clone)]
pub enum ResidualMode {
    /// Field encoders only (the plain `PBC` variant).
    Plain,
    /// Field encoders, with variable-length values passed through a trained
    /// FSST symbol table (`PBC_F`).
    Fsst(FsstCodec),
}

impl ResidualMode {
    fn is_fsst(&self) -> bool {
        matches!(self, ResidualMode::Fsst(_))
    }
}

/// A trained PBC compressor (pattern dictionary + matcher + residual mode).
#[derive(Debug)]
pub struct PbcCompressor {
    dictionary: PatternDictionary,
    matcher: MultiMatcher,
    residual: ResidualMode,
    config: PbcConfig,
    stats: CompressionStats,
    report: Option<ExtractionReport>,
}

impl PbcCompressor {
    /// Train the plain `PBC` compressor from sample records.
    pub fn train(samples: &[&[u8]], config: &PbcConfig) -> Self {
        Self::train_with_mode(samples, config, false)
    }

    /// Train the `PBC_F` compressor: identical pattern extraction, plus an
    /// FSST symbol table trained on the residual values of the sample.
    pub fn train_fsst(samples: &[&[u8]], config: &PbcConfig) -> Self {
        Self::train_with_mode(samples, config, true)
    }

    fn train_with_mode(samples: &[&[u8]], config: &PbcConfig, fsst: bool) -> Self {
        let owned: Vec<Vec<u8>> = samples.iter().map(|s| s.to_vec()).collect();
        let sampled = crate::sampling::sample_records(
            &owned,
            config.max_sample_records,
            config.max_sample_bytes,
            config.sample_seed,
        );
        let (dictionary, report) = extract_from_samples(&sampled, config);
        let matcher = MultiMatcher::new(&dictionary);

        let residual = if fsst {
            // Train FSST on the residual values the patterns leave behind
            // (falling back to whole records where nothing matches).
            let mut residual_samples: Vec<Vec<u8>> = Vec::new();
            for record in &sampled {
                match matcher.best_match(record) {
                    Some((_, m)) => {
                        for &(s, e) in &m.field_spans {
                            if e > s {
                                residual_samples.push(record[s..e].to_vec());
                            }
                        }
                    }
                    None => residual_samples.push(record.clone()),
                }
            }
            let refs: Vec<&[u8]> = residual_samples.iter().map(|r| r.as_slice()).collect();
            ResidualMode::Fsst(FsstCodec::train(&refs))
        } else {
            ResidualMode::Plain
        };

        PbcCompressor {
            dictionary,
            matcher,
            residual,
            config: config.clone(),
            stats: CompressionStats::new(),
            report: Some(report),
        }
    }

    /// Build a compressor from an existing pattern dictionary (e.g. one
    /// shipped to a TierBase instance) without re-running extraction.
    pub fn from_dictionary(dictionary: PatternDictionary, config: &PbcConfig) -> Self {
        let matcher = MultiMatcher::new(&dictionary);
        PbcCompressor {
            dictionary,
            matcher,
            residual: ResidualMode::Plain,
            config: config.clone(),
            stats: CompressionStats::new(),
            report: None,
        }
    }

    /// Switch to the FSST residual mode with an already-trained symbol table.
    pub fn with_fsst(mut self, fsst: FsstCodec) -> Self {
        self.residual = ResidualMode::Fsst(fsst);
        self
    }

    /// The trained pattern dictionary.
    pub fn dictionary(&self) -> &PatternDictionary {
        &self.dictionary
    }

    /// The extraction report, if this compressor was trained (rather than
    /// built from an existing dictionary).
    pub fn extraction_report(&self) -> Option<&ExtractionReport> {
        self.report.as_ref()
    }

    /// The FSST symbol table used for residuals, if this is a `PBC_F`
    /// compressor. Lets containers (e.g. `pbc-archive` segments) serialize
    /// the full trained state next to the pattern dictionary.
    pub fn residual_fsst(&self) -> Option<&FsstCodec> {
        match &self.residual {
            ResidualMode::Fsst(fsst) => Some(fsst),
            ResidualMode::Plain => None,
        }
    }

    /// Name used in benchmark tables.
    pub fn variant_name(&self) -> &'static str {
        if self.residual.is_fsst() {
            "PBC_F"
        } else {
            "PBC"
        }
    }

    /// Compress one record. Records matching no pattern (or violating a
    /// field-encoder constraint) are stored as outliers in raw form.
    pub fn compress(&self, record: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(record.len() / 2 + 4);
        let matched = self.matcher.best_match(record);
        match matched {
            Some((id, m)) => {
                varint::write_u32(&mut out, id);
                let pattern = self
                    .dictionary
                    .get(id)
                    // pbc-allow(panic): the matcher only returns ids minted by this dictionary
                    .expect("matcher only returns dictionary ids");
                let encoders = pattern.field_encoders();
                for (enc, &(s, e)) in encoders.iter().zip(m.field_spans.iter()) {
                    self.encode_field(enc, &record[s..e], &mut out);
                }
                self.stats.record(record.len(), out.len(), false);
            }
            None => {
                varint::write_u32(&mut out, OUTLIER_ID);
                self.encode_outlier(record, &mut out);
                self.stats.record(record.len(), out.len(), true);
            }
        }
        out
    }

    /// Decompress one record produced by [`PbcCompressor::compress`].
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>> {
        let (id, pos) = varint::read_u32(data, 0)?;
        if id == OUTLIER_ID {
            return self.decode_outlier(&data[pos..]);
        }
        let pattern = self.dictionary.get_or_err(id)?;
        let mut pos = pos;
        let mut field_values: Vec<Vec<u8>> = Vec::with_capacity(pattern.field_count());
        for (field_idx, seg) in pattern
            .segments()
            .iter()
            .filter(|s| matches!(s, Segment::Field(_)))
            .enumerate()
        {
            let Segment::Field(enc) = seg else {
                unreachable!()
            };
            let mut value = Vec::new();
            pos = self
                .decode_field(enc, data, pos, &mut value)
                .map_err(|e| match e {
                    PbcError::FieldDecode { reason, .. } => PbcError::FieldDecode {
                        field: field_idx,
                        reason,
                    },
                    other => other,
                })?;
            field_values.push(value);
        }
        Ok(reassemble(pattern, &field_values))
    }

    /// Share of compressed records that were outliers so far exceeds the
    /// configured threshold: the caller should re-sample and re-train
    /// (Sections 3.2 and 7.5).
    pub fn should_retrain(&self) -> bool {
        let snap = self.stats.snapshot();
        snap.records >= 100 && snap.outlier_rate() > self.config.outlier_retrain_threshold
    }

    /// Snapshot of the runtime counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Reset the runtime counters (e.g. after re-training).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    fn encode_field(&self, enc: &FieldEncoder, value: &[u8], out: &mut Vec<u8>) {
        match (&self.residual, enc) {
            (ResidualMode::Fsst(fsst), FieldEncoder::Varchar) => {
                let encoded = fsst.encode(value);
                varint::write_usize(out, encoded.len());
                out.extend_from_slice(&encoded);
            }
            _ => {
                enc.encode(value, out)
                    // pbc-allow(panic): the matcher validated the encoder constraints for this span
                    .expect("matcher validated encoder constraints");
            }
        }
    }

    fn decode_field(
        &self,
        enc: &FieldEncoder,
        data: &[u8],
        pos: usize,
        out: &mut Vec<u8>,
    ) -> Result<usize> {
        match (&self.residual, enc) {
            (ResidualMode::Fsst(fsst), FieldEncoder::Varchar) => {
                let (len, pos) = varint::read_usize(data, pos)?;
                if pos + len > data.len() {
                    return Err(PbcError::Truncated {
                        context: "FSST residual",
                    });
                }
                out.extend_from_slice(&fsst.decode(&data[pos..pos + len])?);
                Ok(pos + len)
            }
            _ => enc.decode(data, pos, out),
        }
    }

    fn encode_outlier(&self, record: &[u8], out: &mut Vec<u8>) {
        match &self.residual {
            ResidualMode::Fsst(fsst) => {
                let encoded = fsst.compress(record);
                out.extend_from_slice(&encoded);
            }
            ResidualMode::Plain => out.extend_from_slice(record),
        }
    }

    fn decode_outlier(&self, payload: &[u8]) -> Result<Vec<u8>> {
        match &self.residual {
            ResidualMode::Fsst(fsst) => Ok(fsst.decompress(payload)?),
            ResidualMode::Plain => Ok(payload.to_vec()),
        }
    }
}

impl Codec for PbcCompressor {
    fn name(&self) -> &str {
        self.variant_name()
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        PbcCompressor::compress(self, input)
    }

    fn decompress(&self, input: &[u8]) -> pbc_codecs::Result<Vec<u8>> {
        PbcCompressor::decompress(self, input)
            .map_err(|e| pbc_codecs::CodecError::corrupt(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accounting_records(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                format!(
                    "V5company_charging-100-{:02}accenter{:02}ac{}counting_log_{}202{:03}{:03}",
                    i % 100,
                    (i * 7) % 100,
                    if i % 4 == 2 { "" } else { "_ac" },
                    if i % 4 == 2 { "id" } else { "" },
                    i % 400,
                    (i * 13) % 1000,
                )
                .into_bytes()
            })
            .collect()
    }

    fn train_on(records: &[Vec<u8>], fsst: bool) -> PbcCompressor {
        let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
        let config = PbcConfig::small();
        if fsst {
            PbcCompressor::train_fsst(&refs, &config)
        } else {
            PbcCompressor::train(&refs, &config)
        }
    }

    #[test]
    fn roundtrip_on_training_like_records() {
        let records = accounting_records(200);
        let pbc = train_on(&records[..100], false);
        for rec in &records {
            let compressed = pbc.compress(rec);
            assert_eq!(&PbcCompressor::decompress(&pbc, &compressed).unwrap(), rec);
        }
    }

    #[test]
    fn compression_beats_raw_size_substantially() {
        let records = accounting_records(300);
        let pbc = train_on(&records[..128], false);
        let raw: usize = records.iter().map(|r| r.len()).sum();
        let compressed: usize = records.iter().map(|r| pbc.compress(r).len()).sum();
        let ratio = compressed as f64 / raw as f64;
        assert!(
            ratio < 0.5,
            "pattern-covered records should compress at least 2x, got {ratio:.3}"
        );
        let snap = pbc.stats();
        assert_eq!(snap.records, 300);
        assert!(snap.outlier_rate() < 0.2);
    }

    #[test]
    fn fsst_variant_roundtrips_and_does_not_hurt_ratio_much() {
        let records = accounting_records(300);
        let plain = train_on(&records[..128], false);
        let fsst = train_on(&records[..128], true);
        assert_eq!(fsst.variant_name(), "PBC_F");
        let mut plain_total = 0usize;
        let mut fsst_total = 0usize;
        for rec in &records {
            let c_plain = plain.compress(rec);
            let c_fsst = fsst.compress(rec);
            assert_eq!(&PbcCompressor::decompress(&plain, &c_plain).unwrap(), rec);
            assert_eq!(&PbcCompressor::decompress(&fsst, &c_fsst).unwrap(), rec);
            plain_total += c_plain.len();
            fsst_total += c_fsst.len();
        }
        // PBC_F targets datasets with long text residuals; on numeric-heavy
        // data it must at least stay in the same ballpark (FSST adds a length
        // prefix per text field, so a modest overhead is expected here).
        assert!(
            fsst_total <= plain_total * 2,
            "PBC_F {fsst_total} vs PBC {plain_total}"
        );
    }

    #[test]
    fn unmatched_records_become_outliers_and_roundtrip() {
        let records = accounting_records(100);
        let pbc = train_on(&records, false);
        let outlier = b"completely different payload \x00\xff with binary bytes";
        let compressed = pbc.compress(outlier);
        assert_eq!(
            PbcCompressor::decompress(&pbc, &compressed).unwrap(),
            outlier
        );
        assert_eq!(pbc.stats().outliers, 1);
    }

    #[test]
    fn retraining_trigger_fires_when_data_drifts() {
        let records = accounting_records(150);
        let pbc = train_on(&records, false);
        assert!(!pbc.should_retrain());
        // Simulate a data-model change: all new records are unmatched.
        for i in 0..200 {
            let rec = format!("new_format|{i}|payload|{}", i * 31).into_bytes();
            pbc.compress(&rec);
        }
        assert!(pbc.should_retrain());
        pbc.reset_stats();
        assert!(!pbc.should_retrain());
    }

    #[test]
    fn empty_record_roundtrips() {
        let records = accounting_records(50);
        let pbc = train_on(&records, false);
        let compressed = pbc.compress(b"");
        assert_eq!(PbcCompressor::decompress(&pbc, &compressed).unwrap(), b"");
    }

    #[test]
    fn decompress_rejects_unknown_pattern_ids_and_truncation() {
        let records = accounting_records(100);
        let pbc = train_on(&records, false);
        // Unknown pattern id.
        let mut bogus = Vec::new();
        varint::write_u32(&mut bogus, 9999);
        assert!(matches!(
            PbcCompressor::decompress(&pbc, &bogus),
            Err(PbcError::UnknownPattern { id: 9999 })
        ));
        // Truncated field payload.
        let compressed = pbc.compress(&records[0]);
        let truncated = &compressed[..compressed.len().saturating_sub(2)];
        assert!(PbcCompressor::decompress(&pbc, truncated).is_err());
    }

    #[test]
    fn compressor_from_serialized_dictionary_is_equivalent() {
        let records = accounting_records(200);
        let trained = train_on(&records[..100], false);
        let dict_bytes = trained.dictionary().serialize();
        let dict = PatternDictionary::deserialize(&dict_bytes).unwrap();
        let rebuilt = PbcCompressor::from_dictionary(dict, &PbcConfig::small());
        for rec in &records[100..140] {
            let a = trained.compress(rec);
            let b = rebuilt.compress(rec);
            assert_eq!(a, b, "same dictionary must produce identical output");
            assert_eq!(&PbcCompressor::decompress(&rebuilt, &b).unwrap(), rec);
        }
    }

    #[test]
    fn codec_trait_interop() {
        use pbc_codecs::traits::RecordCorpusExt;
        let records = accounting_records(120);
        let pbc = train_on(&records[..60], false);
        let ratio = pbc.corpus_ratio(&records);
        assert!(ratio < 0.6);
        assert_eq!(Codec::name(&pbc), "PBC");
    }
}
