//! Field encoders for residual subsequences (Table 1 of the paper).
//!
//! Each wildcard position of a pattern carries a [`FieldEncoder`] describing
//! how the residual values that fall into that field are serialized:
//!
//! | Encoder | Paper description |
//! |---|---|
//! | [`FieldEncoder::Char`] | `CHAR(n)` — fixed length characters |
//! | [`FieldEncoder::Varchar`] | `VARCHAR` — variable length characters with a 1–2 byte length header |
//! | [`FieldEncoder::Int`] | `INT(n, m)` — fixed-length digit strings stored as an `m`-byte integer |
//! | [`FieldEncoder::Varint`] | `VARINT` — variable-length digit strings stored as a LEB128 integer |
//!
//! The encoder for a field is chosen during pattern extraction as the
//! cheapest encoder that is *valid* for every observed value of the field
//! (the "optimal encoding function" of Definition 2).

use pbc_codecs::varint;

use crate::error::{PbcError, Result};

/// How residual values of one field are serialized. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldEncoder {
    /// Fixed-length byte string of exactly `n` bytes; stored raw with no
    /// header.
    Char {
        /// Field width in bytes.
        n: u16,
    },
    /// Variable-length byte string; stored as a 1–2 byte length header
    /// followed by the payload.
    Varchar,
    /// Fixed-length decimal digit string of `digits` digits; stored as a
    /// little-endian unsigned integer of `bytes` bytes. Leading zeros are
    /// restored on decode because the digit count is part of the encoder.
    Int {
        /// Number of decimal digits in the field value.
        digits: u8,
        /// Number of bytes of the stored integer.
        bytes: u8,
    },
    /// Variable-length decimal digit string without leading zeros; stored as
    /// a LEB128 varint.
    Varint,
}

impl FieldEncoder {
    /// Number of integer bytes needed to hold any `digits`-digit decimal
    /// value (`m` in the paper's `INT(n, m)`).
    pub fn int_bytes_for_digits(digits: u8) -> u8 {
        // 10^digits - 1 must fit. bits = ceil(digits * log2(10)).
        let bits = (f64::from(digits) * 10f64.log2()).ceil() as u32;
        (bits.div_ceil(8)).max(1) as u8
    }

    /// Construct the `INT(n, m)` encoder for an `n`-digit field.
    pub fn int_for_digits(digits: u8) -> Self {
        FieldEncoder::Int {
            digits,
            bytes: Self::int_bytes_for_digits(digits),
        }
    }

    /// Whether `value` can be represented by this encoder.
    pub fn accepts(&self, value: &[u8]) -> bool {
        match *self {
            FieldEncoder::Char { n } => value.len() == n as usize,
            FieldEncoder::Varchar => value.len() < (1 << 15),
            FieldEncoder::Int { digits, .. } => {
                value.len() == digits as usize && value.iter().all(u8::is_ascii_digit)
            }
            FieldEncoder::Varint => {
                !value.is_empty()
                    && value.len() <= 19
                    && value.iter().all(u8::is_ascii_digit)
                    && (value.len() == 1 || value[0] != b'0')
            }
        }
    }

    /// Number of bytes [`FieldEncoder::encode`] will append for `value`
    /// (assuming [`FieldEncoder::accepts`] holds).
    pub fn encoded_len(&self, value: &[u8]) -> usize {
        match *self {
            FieldEncoder::Char { n } => n as usize,
            FieldEncoder::Varchar => {
                if value.len() < 128 {
                    1 + value.len()
                } else {
                    2 + value.len()
                }
            }
            FieldEncoder::Int { bytes, .. } => bytes as usize,
            FieldEncoder::Varint => {
                let v = parse_digits(value).unwrap_or(0);
                varint::encoded_len(v)
            }
        }
    }

    /// Append the encoded form of `value` to `out`.
    ///
    /// Returns an error if the value violates the encoder's constraints
    /// (callers normally check [`FieldEncoder::accepts`] first; the
    /// compressor treats such records as outliers).
    pub fn encode(&self, value: &[u8], out: &mut Vec<u8>) -> Result<()> {
        if !self.accepts(value) {
            return Err(PbcError::FieldDecode {
                field: usize::MAX,
                reason: format!("value of length {} rejected by {:?}", value.len(), self),
            });
        }
        match *self {
            FieldEncoder::Char { .. } => out.extend_from_slice(value),
            FieldEncoder::Varchar => {
                // 1-byte header for lengths < 128, otherwise 2 bytes with the
                // high bit of the first byte set (the paper's "1 or 2 bytes
                // header for the character length information").
                if value.len() < 128 {
                    out.push(value.len() as u8);
                } else {
                    out.push(0x80 | ((value.len() >> 8) as u8));
                    out.push((value.len() & 0xff) as u8);
                }
                out.extend_from_slice(value);
            }
            FieldEncoder::Int { bytes, .. } => {
                // pbc-allow(panic): accepts() filtered non-digit values before encode
                let v = parse_digits(value).expect("accepts() guarantees digits");
                out.extend_from_slice(&v.to_le_bytes()[..bytes as usize]);
            }
            FieldEncoder::Varint => {
                // pbc-allow(panic): accepts() filtered non-digit values before encode
                let v = parse_digits(value).expect("accepts() guarantees digits");
                varint::write_u64(out, v);
            }
        }
        Ok(())
    }

    /// Decode one value from `input` starting at `pos`, appending the
    /// original bytes to `out`. Returns the new position.
    pub fn decode(&self, input: &[u8], pos: usize, out: &mut Vec<u8>) -> Result<usize> {
        match *self {
            FieldEncoder::Char { n } => {
                let n = n as usize;
                let end = pos + n;
                if end > input.len() {
                    return Err(PbcError::Truncated {
                        context: "CHAR field",
                    });
                }
                out.extend_from_slice(&input[pos..end]);
                Ok(end)
            }
            FieldEncoder::Varchar => {
                let first = *input.get(pos).ok_or(PbcError::Truncated {
                    context: "VARCHAR header",
                })?;
                let (len, mut p) = if first & 0x80 == 0 {
                    (first as usize, pos + 1)
                } else {
                    let second = *input.get(pos + 1).ok_or(PbcError::Truncated {
                        context: "VARCHAR header",
                    })?;
                    ((((first & 0x7f) as usize) << 8) | second as usize, pos + 2)
                };
                if p + len > input.len() {
                    return Err(PbcError::Truncated {
                        context: "VARCHAR payload",
                    });
                }
                out.extend_from_slice(&input[p..p + len]);
                p += len;
                Ok(p)
            }
            FieldEncoder::Int { digits, bytes } => {
                let bytes = bytes as usize;
                if pos + bytes > input.len() {
                    return Err(PbcError::Truncated {
                        context: "INT field",
                    });
                }
                let mut le = [0u8; 8];
                le[..bytes].copy_from_slice(&input[pos..pos + bytes]);
                let v = u64::from_le_bytes(le);
                let s = format!("{:0width$}", v, width = digits as usize);
                if s.len() != digits as usize {
                    return Err(PbcError::FieldDecode {
                        field: usize::MAX,
                        reason: format!("INT value {v} does not fit {digits} digits"),
                    });
                }
                out.extend_from_slice(s.as_bytes());
                Ok(pos + bytes)
            }
            FieldEncoder::Varint => {
                let (v, p) = varint::read_u64(input, pos).map_err(PbcError::from)?;
                out.extend_from_slice(v.to_string().as_bytes());
                Ok(p)
            }
        }
    }

    /// Serialize the encoder descriptor (used by the pattern dictionary).
    pub fn serialize(&self, out: &mut Vec<u8>) {
        match *self {
            FieldEncoder::Char { n } => {
                out.push(0);
                out.extend_from_slice(&n.to_le_bytes());
            }
            FieldEncoder::Varchar => out.push(1),
            FieldEncoder::Int { digits, bytes } => {
                out.push(2);
                out.push(digits);
                out.push(bytes);
            }
            FieldEncoder::Varint => out.push(3),
        }
    }

    /// Inverse of [`FieldEncoder::serialize`]; returns the encoder and the
    /// new position.
    pub fn deserialize(input: &[u8], pos: usize) -> Result<(Self, usize)> {
        let tag = *input.get(pos).ok_or(PbcError::Truncated {
            context: "encoder tag",
        })?;
        match tag {
            0 => {
                if pos + 3 > input.len() {
                    return Err(PbcError::Truncated {
                        context: "CHAR width",
                    });
                }
                let n = u16::from_le_bytes([input[pos + 1], input[pos + 2]]);
                Ok((FieldEncoder::Char { n }, pos + 3))
            }
            1 => Ok((FieldEncoder::Varchar, pos + 1)),
            2 => {
                if pos + 3 > input.len() {
                    return Err(PbcError::Truncated {
                        context: "INT descriptor",
                    });
                }
                Ok((
                    FieldEncoder::Int {
                        digits: input[pos + 1],
                        bytes: input[pos + 2],
                    },
                    pos + 3,
                ))
            }
            3 => Ok((FieldEncoder::Varint, pos + 1)),
            other => Err(PbcError::CorruptDictionary {
                reason: format!("unknown encoder tag {other}"),
            }),
        }
    }

    /// Short display form used in pattern debugging output, mirroring the
    /// paper's `*<INT(2,1)>` notation.
    pub fn display(&self) -> String {
        match *self {
            FieldEncoder::Char { n } => format!("*<CHAR({n})>"),
            FieldEncoder::Varchar => "*<VARCHAR>".to_string(),
            FieldEncoder::Int { digits, bytes } => format!("*<INT({digits},{bytes})>"),
            FieldEncoder::Varint => "*<VARINT>".to_string(),
        }
    }
}

/// Choose the cheapest encoder that accepts every value (the optimal
/// encoding function of Definition 2 over the finite encoder set of Table 1).
pub fn infer_encoder(values: &[&[u8]]) -> FieldEncoder {
    if values.is_empty() {
        return FieldEncoder::Varchar;
    }
    let mut candidates: Vec<FieldEncoder> = Vec::with_capacity(4);
    let first_len = values[0].len();
    let all_same_len = values.iter().all(|v| v.len() == first_len);
    let all_digits = values
        .iter()
        .all(|v| !v.is_empty() && v.iter().all(u8::is_ascii_digit));
    if all_same_len && all_digits && first_len <= 19 && first_len > 0 {
        candidates.push(FieldEncoder::int_for_digits(first_len as u8));
    }
    if all_digits {
        let no_leading_zeros = values.iter().all(|v| v.len() == 1 || v[0] != b'0');
        let fits = values.iter().all(|v| v.len() <= 19);
        if no_leading_zeros && fits {
            candidates.push(FieldEncoder::Varint);
        }
    }
    if all_same_len && first_len > 0 && first_len < (1 << 16) {
        candidates.push(FieldEncoder::Char {
            n: first_len as u16,
        });
    }
    candidates.push(FieldEncoder::Varchar);

    candidates
        .into_iter()
        .filter(|enc| values.iter().all(|v| enc.accepts(v)))
        .min_by_key(|enc| values.iter().map(|v| enc.encoded_len(v)).sum::<usize>())
        .unwrap_or(FieldEncoder::Varchar)
}

/// Parse an ASCII digit string into a `u64`. Returns `None` on overflow or
/// non-digit bytes.
fn parse_digits(value: &[u8]) -> Option<u64> {
    let mut acc: u64 = 0;
    for &b in value {
        if !b.is_ascii_digit() {
            return None;
        }
        acc = acc.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(enc: FieldEncoder, value: &[u8]) {
        assert!(enc.accepts(value), "{enc:?} must accept {value:?}");
        let mut buf = Vec::new();
        enc.encode(value, &mut buf).unwrap();
        assert_eq!(buf.len(), enc.encoded_len(value));
        let mut out = Vec::new();
        let pos = enc.decode(&buf, 0, &mut out).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(out, value);
    }

    #[test]
    fn char_roundtrip_and_constraints() {
        roundtrip(FieldEncoder::Char { n: 4 }, b"abcd");
        assert!(!FieldEncoder::Char { n: 4 }.accepts(b"abc"));
        assert!(!FieldEncoder::Char { n: 4 }.accepts(b"abcde"));
    }

    #[test]
    fn varchar_roundtrip_short_and_long() {
        roundtrip(FieldEncoder::Varchar, b"");
        roundtrip(FieldEncoder::Varchar, b"hello");
        roundtrip(FieldEncoder::Varchar, &[b'x'; 127]);
        roundtrip(FieldEncoder::Varchar, &[b'y'; 128]);
        roundtrip(FieldEncoder::Varchar, &vec![b'z'; 5000]);
        // Header sizes match the paper: 1 byte below 128, 2 bytes above.
        assert_eq!(FieldEncoder::Varchar.encoded_len(b"abc"), 4);
        assert_eq!(FieldEncoder::Varchar.encoded_len(&[b'a'; 200]), 202);
    }

    #[test]
    fn int_roundtrip_preserves_leading_zeros() {
        let enc = FieldEncoder::int_for_digits(6);
        roundtrip(enc, b"000042");
        roundtrip(enc, b"999999");
        roundtrip(enc, b"123050");
        assert!(!enc.accepts(b"12345"));
        assert!(!enc.accepts(b"12345a"));
    }

    #[test]
    fn int_byte_width_matches_paper_examples() {
        // The paper's Figure 2 uses INT(2,1) and INT(6,2)... 6 digits needs
        // 999999 < 2^20, i.e. 3 bytes; the paper's "int16" is a presentation
        // simplification, our widths are computed from the digit count.
        assert_eq!(FieldEncoder::int_bytes_for_digits(2), 1);
        assert_eq!(FieldEncoder::int_bytes_for_digits(4), 2);
        assert_eq!(FieldEncoder::int_bytes_for_digits(6), 3);
        assert_eq!(FieldEncoder::int_bytes_for_digits(9), 4);
        assert_eq!(FieldEncoder::int_bytes_for_digits(19), 8);
    }

    #[test]
    fn varint_roundtrip_and_constraints() {
        roundtrip(FieldEncoder::Varint, b"0");
        roundtrip(FieldEncoder::Varint, b"7");
        roundtrip(FieldEncoder::Varint, b"1639574096");
        assert!(
            !FieldEncoder::Varint.accepts(b"007"),
            "leading zeros would be lost"
        );
        assert!(!FieldEncoder::Varint.accepts(b""));
        assert!(!FieldEncoder::Varint.accepts(b"12a4"));
        assert!(
            !FieldEncoder::Varint.accepts(b"99999999999999999999"),
            "20 digits may overflow u64"
        );
    }

    #[test]
    fn inference_prefers_cheapest_valid_encoder() {
        // Two-digit numeric values with leading zeros → INT(2,1), 1 byte each.
        let values: Vec<&[u8]> = vec![b"57", b"72", b"15", b"46", b"07"];
        assert_eq!(infer_encoder(&values), FieldEncoder::int_for_digits(2));

        // Variable-length numerics without leading zeros → VARINT.
        let values: Vec<&[u8]> = vec![b"5", b"123", b"99999"];
        assert_eq!(infer_encoder(&values), FieldEncoder::Varint);

        // Same-length non-numeric values → CHAR(n).
        let values: Vec<&[u8]> = vec![b"abcd", b"efgh", b"ijkl"];
        assert_eq!(infer_encoder(&values), FieldEncoder::Char { n: 4 });

        // Mixed lengths and characters → VARCHAR.
        let values: Vec<&[u8]> = vec![b"_ac", b"", b"id"];
        assert_eq!(infer_encoder(&values), FieldEncoder::Varchar);
    }

    #[test]
    fn inference_matches_paper_figure2_fields() {
        // Field 0 of Figure 2: "57", "72", "15", "46" → INT(2,1).
        let field0: Vec<&[u8]> = vec![b"57", b"72", b"15", b"46"];
        assert_eq!(
            infer_encoder(&field0),
            FieldEncoder::Int {
                digits: 2,
                bytes: 1
            }
        );
        // Field 2: "_ac", "_ac", "", "_ac" → VARCHAR.
        let field2: Vec<&[u8]> = vec![b"_ac", b"_ac", b"", b"_ac"];
        assert_eq!(infer_encoder(&field2), FieldEncoder::Varchar);
        // Field 4: "123050", "204181", "205420", "204381" → INT(6,3).
        let field4: Vec<&[u8]> = vec![b"123050", b"204181", b"205420", b"204381"];
        assert_eq!(
            infer_encoder(&field4),
            FieldEncoder::Int {
                digits: 6,
                bytes: 3
            }
        );
    }

    #[test]
    fn inference_on_empty_input_defaults_to_varchar() {
        assert_eq!(infer_encoder(&[]), FieldEncoder::Varchar);
    }

    #[test]
    fn serialization_roundtrips_all_variants() {
        let encoders = [
            FieldEncoder::Char { n: 300 },
            FieldEncoder::Varchar,
            FieldEncoder::Int {
                digits: 6,
                bytes: 3,
            },
            FieldEncoder::Varint,
        ];
        let mut buf = Vec::new();
        for e in &encoders {
            e.serialize(&mut buf);
        }
        let mut pos = 0;
        for e in &encoders {
            let (decoded, p) = FieldEncoder::deserialize(&buf, pos).unwrap();
            assert_eq!(decoded, *e);
            pos = p;
        }
        assert_eq!(pos, buf.len());
        assert!(FieldEncoder::deserialize(&[9], 0).is_err());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(FieldEncoder::int_for_digits(2).display(), "*<INT(2,1)>");
        assert_eq!(FieldEncoder::Varchar.display(), "*<VARCHAR>");
    }

    #[test]
    fn decode_errors_on_truncated_input() {
        let enc = FieldEncoder::Varchar;
        let mut buf = Vec::new();
        enc.encode(b"hello world", &mut buf).unwrap();
        buf.truncate(3);
        let mut out = Vec::new();
        assert!(enc.decode(&buf, 0, &mut out).is_err());

        let enc = FieldEncoder::int_for_digits(6);
        let mut buf = Vec::new();
        enc.encode(b"123456", &mut buf).unwrap();
        buf.truncate(1);
        let mut out = Vec::new();
        assert!(enc.decode(&buf, 0, &mut out).is_err());
    }
}
