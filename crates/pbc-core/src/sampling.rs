//! Reservoir sampling of training records (Figure 1(a), "Sampling").
//!
//! Pattern extraction runs on a small sample of the data (a few MiB in the
//! paper, Section 7.3.3). The sampler here is a seeded reservoir sampler so
//! experiments are reproducible, with an additional byte budget because
//! record sizes vary by two orders of magnitude across datasets.

/// Deterministic reservoir sample of at most `max_records` records and
/// roughly `max_bytes` total bytes.
///
/// The returned records preserve no particular order guarantee beyond being
/// a uniform-ish sample of the input (exact uniformity is unnecessary: the
/// paper only needs the sample to cover the pattern population).
pub fn sample_records(
    records: &[Vec<u8>],
    max_records: usize,
    max_bytes: usize,
    seed: u64,
) -> Vec<Vec<u8>> {
    if records.is_empty() || max_records == 0 || max_bytes == 0 {
        return Vec::new();
    }
    // First pass: classic reservoir sampling by record count.
    let mut reservoir: Vec<&Vec<u8>> = Vec::with_capacity(max_records.min(records.len()));
    let mut rng = SplitMix64::new(seed);
    for (i, rec) in records.iter().enumerate() {
        if reservoir.len() < max_records {
            reservoir.push(rec);
        } else {
            let j = (rng.next() % (i as u64 + 1)) as usize;
            if j < max_records {
                reservoir[j] = rec;
            }
        }
    }
    // Second pass: enforce the byte budget, keeping a prefix of the sample.
    let mut out = Vec::with_capacity(reservoir.len());
    let mut used = 0usize;
    for rec in reservoir {
        if !out.is_empty() && used + rec.len() > max_bytes {
            break;
        }
        used += rec.len();
        out.push(rec.clone());
    }
    out
}

/// Small, dependency-free PRNG (SplitMix64) used only for sampling.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, infallible
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("{i:0width$}", width = len).into_bytes())
            .collect()
    }

    #[test]
    fn sample_is_bounded_by_record_count() {
        let recs = records(1000, 10);
        let sample = sample_records(&recs, 50, usize::MAX, 7);
        assert_eq!(sample.len(), 50);
    }

    #[test]
    fn sample_is_bounded_by_byte_budget() {
        let recs = records(1000, 100);
        let sample = sample_records(&recs, 500, 1000, 7);
        let bytes: usize = sample.iter().map(|r| r.len()).sum();
        assert!(bytes <= 1000);
        assert!(!sample.is_empty(), "at least one record is always kept");
    }

    #[test]
    fn small_inputs_are_returned_whole() {
        let recs = records(5, 8);
        let sample = sample_records(&recs, 100, usize::MAX, 7);
        assert_eq!(sample.len(), 5);
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let recs = records(500, 12);
        let a = sample_records(&recs, 32, usize::MAX, 42);
        let b = sample_records(&recs, 32, usize::MAX, 42);
        assert_eq!(a, b);
        let c = sample_records(&recs, 32, usize::MAX, 43);
        assert_ne!(
            a, c,
            "different seeds should usually give different samples"
        );
    }

    #[test]
    fn degenerate_budgets_yield_empty_samples() {
        let recs = records(10, 4);
        assert!(sample_records(&recs, 0, 100, 1).is_empty());
        assert!(sample_records(&recs, 10, 0, 1).is_empty());
        assert!(sample_records(&[], 10, 100, 1).is_empty());
    }

    #[test]
    fn splitmix_produces_distinct_values() {
        let mut rng = SplitMix64::new(1);
        let a = rng.next();
        let b = rng.next();
        let c = rng.next();
        assert_ne!(a, b);
        assert_ne!(b, c);
    }
}
