//! Minimal encoding-length merging (Algorithms 1 and 2 of the paper).
//!
//! Given two clusters' wildcard sequences `cs_x`, `cs_y` and their member
//! counts, [`min_encoding_length_increment`] computes the encoding-length
//! increment (Definition 3) of merging them under the monotonic `VARCHAR`
//! encoding model, and [`merge`] additionally reconstructs the merged
//! wildcard sequence by tracing the optimal alignment back.
//!
//! The dynamic program is the monotonic-encoder specialisation (Problem 3):
//! each cell only consults its three neighbours, so the cost is `O(n·m)`
//! instead of the `O(|F|·(N+M)·n²·m²)` of the general algorithm. A
//! brute-force reference for the *general* formulation on tiny inputs lives
//! in [`mod@reference`], and tests check the two agree where both apply.
//!
//! ### Note on the paper's pseudo-code
//!
//! Algorithm 1 lines 16–19 set `type[i][j] = isRS` when the diagonal
//! (keep-in-pattern) transition is the unique minimum and `isPattern`
//! otherwise, which contradicts the semantics `UpdateState` relies on
//! (`isPattern` must mean "the previous aligned element stayed in the
//! pattern", so that the first later demotion pays the new-field descriptor
//! cost of `size_x + size_y`). We implement the semantically consistent
//! assignment: diagonal ⇒ `isPattern`, sideways ⇒ `isRS`.

use crate::cluster::PatElem;

/// Result of merging two wildcard sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeOutcome {
    /// The encoding-length increment of Definition 3 (may be negative:
    /// merging two clusters with identical structure removes duplicate
    /// length descriptors).
    pub increment: i64,
    /// The merged wildcard sequence (adjacent gaps coalesced).
    pub cs: Vec<PatElem>,
}

/// Element kind tracked per DP cell (the paper's `type` table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellType {
    IsPattern,
    IsRs,
}

/// Transition provenance for traceback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum From {
    Start,
    Diag,
    ConsumeX,
    ConsumeY,
}

/// Algorithm 2: the state transition.
///
/// `size_own` is the member count of the cluster whose element is being
/// demoted to a residual; `size_other` is the other cluster's member count.
#[inline]
fn update_state(
    cur_state: i64,
    cell_type: CellType,
    new_elem_is_gap: bool,
    size_own: i64,
    size_other: i64,
) -> i64 {
    let mut v = cur_state;
    if cell_type == CellType::IsPattern {
        // A new residual region starts: every record of the merged cluster
        // stores one more length descriptor.
        v += size_own + size_other;
    }
    if !new_elem_is_gap {
        // The demoted literal is stored by each record of its own cluster.
        v += size_own;
    } else {
        // A wildcard that is absorbed into the new region refunds the
        // descriptors its own cluster had already paid for it.
        v -= size_own;
    }
    v
}

/// Algorithm 1: compute the minimal encoding-length increment of merging two
/// clusters, without building the merged sequence.
pub fn min_encoding_length_increment(
    cs_x: &[PatElem],
    cs_y: &[PatElem],
    size_x: usize,
    size_y: usize,
) -> i64 {
    merge_impl(cs_x, cs_y, size_x, size_y, false, i64::MAX).0
}

/// Algorithm 1 with an early-termination bound: as soon as every cell of a
/// DP anti-diagonal exceeds `bound`, the merge cannot beat the best known
/// candidate and `i64::MAX` is returned (Section 5.1, pruning step 3).
pub fn min_encoding_length_increment_bounded(
    cs_x: &[PatElem],
    cs_y: &[PatElem],
    size_x: usize,
    size_y: usize,
    bound: i64,
) -> i64 {
    merge_impl(cs_x, cs_y, size_x, size_y, false, bound).0
}

/// Algorithm 1 plus traceback: compute the increment and the merged
/// wildcard sequence.
pub fn merge(cs_x: &[PatElem], cs_y: &[PatElem], size_x: usize, size_y: usize) -> MergeOutcome {
    let (increment, cs) = merge_impl(cs_x, cs_y, size_x, size_y, true, i64::MAX);
    MergeOutcome { increment, cs }
}

fn merge_impl(
    cs_x: &[PatElem],
    cs_y: &[PatElem],
    size_x: usize,
    size_y: usize,
    traceback: bool,
    bound: i64,
) -> (i64, Vec<PatElem>) {
    let n = cs_x.len();
    let m = cs_y.len();
    let sx = size_x as i64;
    let sy = size_y as i64;
    let width = m + 1;

    // Row-major (n+1) x (m+1) tables. `kept` counts retained pattern
    // literals along the optimal path; it breaks cost ties in favour of the
    // alignment that keeps the most literals (equal-cost alignments exist
    // because a VARCHAR field's descriptor cost can exactly offset a
    // demoted literal, and the literal-rich pattern compresses better).
    let mut state = vec![0i64; (n + 1) * width];
    let mut kept = vec![0u32; (n + 1) * width];
    let mut cell_type = vec![CellType::IsPattern; (n + 1) * width];
    let mut from = if traceback {
        vec![From::Start; (n + 1) * width]
    } else {
        Vec::new()
    };

    // Initialization: consuming only one side demotes its elements.
    for i in 1..=n {
        let idx = i * width;
        let prev = (i - 1) * width;
        state[idx] = update_state(
            state[prev],
            cell_type[prev],
            matches!(cs_x[i - 1], PatElem::Gap),
            sx,
            sy,
        );
        cell_type[idx] = CellType::IsRs;
        if traceback {
            from[idx] = From::ConsumeX;
        }
    }
    for j in 1..=m {
        state[j] = update_state(
            state[j - 1],
            cell_type[j - 1],
            matches!(cs_y[j - 1], PatElem::Gap),
            sy,
            sx,
        );
        cell_type[j] = CellType::IsRs;
        if traceback {
            from[j] = From::ConsumeY;
        }
    }

    for i in 1..=n {
        let row = i * width;
        let prev_row = (i - 1) * width;
        let mut row_min = i64::MAX;
        let x_elem = cs_x[i - 1];
        let x_is_gap = matches!(x_elem, PatElem::Gap);
        for j in 1..=m {
            let y_elem = cs_y[j - 1];
            let y_is_gap = matches!(y_elem, PatElem::Gap);

            let from_x = update_state(
                state[prev_row + j],
                cell_type[prev_row + j],
                x_is_gap,
                sx,
                sy,
            );
            let from_y = update_state(state[row + j - 1], cell_type[row + j - 1], y_is_gap, sy, sx);

            let can_diag = !x_is_gap && !y_is_gap && x_elem == y_elem;
            // Candidates as (cost, -kept) lexicographic minima.
            let kept_x = kept[prev_row + j];
            let kept_y = kept[row + j - 1];
            let mut best = from_x;
            let mut best_kept = kept_x;
            let mut best_from = From::ConsumeX;
            let mut best_type = CellType::IsRs;
            if from_y < best || (from_y == best && kept_y > best_kept) {
                best = from_y;
                best_kept = kept_y;
                best_from = From::ConsumeY;
            }
            if can_diag {
                let diag = state[prev_row + j - 1];
                let diag_kept = kept[prev_row + j - 1] + 1;
                // Prefer the diagonal on ties: keeping shared literals in the
                // pattern is what drives compression.
                if diag < best || (diag == best && diag_kept >= best_kept) {
                    best = diag;
                    best_kept = diag_kept;
                    best_from = From::Diag;
                    best_type = CellType::IsPattern;
                }
            }
            state[row + j] = best;
            kept[row + j] = best_kept;
            cell_type[row + j] = best_type;
            if traceback {
                from[row + j] = best_from;
            }
            if best < row_min {
                row_min = best;
            }
        }
        // Pruning: if the entire row already exceeds the bound, the final
        // cell (which only grows along any path) cannot beat it.
        if row_min > bound {
            return (i64::MAX, Vec::new());
        }
    }

    let final_state = state[n * width + m];
    if !traceback {
        return (final_state, Vec::new());
    }

    // Traceback from (n, m) to (0, 0).
    let mut rev: Vec<PatElem> = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        match from[i * width + j] {
            From::Diag => {
                rev.push(cs_x[i - 1]);
                i -= 1;
                j -= 1;
            }
            From::ConsumeX => {
                rev.push(PatElem::Gap);
                i -= 1;
            }
            From::ConsumeY => {
                rev.push(PatElem::Gap);
                j -= 1;
            }
            From::Start => break,
        }
    }
    rev.reverse();
    // Coalesce adjacent gaps.
    let mut cs = Vec::with_capacity(rev.len());
    for e in rev {
        if matches!(e, PatElem::Gap) && matches!(cs.last(), Some(PatElem::Gap)) {
            continue;
        }
        cs.push(e);
    }
    (final_state, cs)
}

/// Brute-force reference implementations used to validate the DP on tiny
/// inputs.
pub mod reference {
    use super::*;

    /// Exhaustively try every alignment of `cs_x` and `cs_y` (every way of
    /// interleaving "keep shared literal" / "demote x" / "demote y" moves)
    /// and return the minimal increment under the same cost model as
    /// the DP's private `update_state` transition. Exponential — only for
    /// sequences of length ≲ 12.
    pub fn exhaustive_increment(
        cs_x: &[PatElem],
        cs_y: &[PatElem],
        size_x: usize,
        size_y: usize,
    ) -> i64 {
        #[allow(clippy::too_many_arguments)] // mirrors the paper's recurrence state
        fn recurse(
            cs_x: &[PatElem],
            cs_y: &[PatElem],
            i: usize,
            j: usize,
            acc: i64,
            cell_type: CellType,
            sx: i64,
            sy: i64,
        ) -> i64 {
            if i == cs_x.len() && j == cs_y.len() {
                return acc;
            }
            let mut best = i64::MAX;
            if i < cs_x.len() {
                let gap = matches!(cs_x[i], PatElem::Gap);
                let v = update_state(acc, cell_type, gap, sx, sy);
                best = best.min(recurse(cs_x, cs_y, i + 1, j, v, CellType::IsRs, sx, sy));
            }
            if j < cs_y.len() {
                let gap = matches!(cs_y[j], PatElem::Gap);
                let v = update_state(acc, cell_type, gap, sy, sx);
                best = best.min(recurse(cs_x, cs_y, i, j + 1, v, CellType::IsRs, sx, sy));
            }
            if i < cs_x.len() && j < cs_y.len() {
                if let (PatElem::Lit(a), PatElem::Lit(b)) = (cs_x[i], cs_y[j]) {
                    if a == b {
                        best = best.min(recurse(
                            cs_x,
                            cs_y,
                            i + 1,
                            j + 1,
                            acc,
                            CellType::IsPattern,
                            sx,
                            sy,
                        ));
                    }
                }
            }
            best
        }
        recurse(
            cs_x,
            cs_y,
            0,
            0,
            0,
            CellType::IsPattern,
            size_x as i64,
            size_y as i64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;

    fn cs(text: &str) -> Vec<PatElem> {
        Cluster::cs_from_str(text)
    }

    #[test]
    fn identical_sequences_merge_with_shared_pattern() {
        let out = merge(&cs("abcdef"), &cs("abcdef"), 1, 1);
        assert_eq!(
            out.cs,
            cs("abcdef"),
            "identical sequences keep every literal in the pattern"
        );
        assert_eq!(out.increment, 0);
    }

    #[test]
    fn paper_example_ab3_star_2_and_ab_star_12() {
        // Example 2 / Figure 4: merging "ab3*2" and "ab*12".
        let out = merge(&cs("ab3*2"), &cs("ab*12"), 1, 1);
        // The merged pattern must keep the common subsequence "ab", a gap,
        // and the trailing "2" — i.e. "ab*2" (the '3' of x, the '1' of y and
        // both wildcards collapse into one field).
        assert_eq!(out.cs, cs("ab*2"));
    }

    #[test]
    fn merged_literals_form_a_common_subsequence() {
        let a = cs("V5company_charging-100-57accenter20");
        let b = cs("V5company_charging-100-72accenter11");
        let out = merge(&a, &b, 1, 1);
        // Every literal of the merged sequence must be a subsequence of both.
        let lits: Vec<u8> = out
            .cs
            .iter()
            .filter_map(|e| match e {
                PatElem::Lit(c) => Some(*c),
                PatElem::Gap => None,
            })
            .collect();
        for source in [&a, &b] {
            let mut it = source.iter().filter_map(|e| match e {
                PatElem::Lit(c) => Some(*c),
                PatElem::Gap => None,
            });
            for l in &lits {
                assert!(
                    it.any(|c| c == *l),
                    "merged literal {l} must appear in order in both inputs"
                );
            }
        }
        assert!(lits.len() >= b"V5company_charging-100-".len());
    }

    #[test]
    fn similar_clusters_have_lower_increment_than_dissimilar_ones() {
        let base = cs("user=alice action=login status=ok elapsed=12ms");
        let similar = cs("user=bob action=login status=ok elapsed=7ms");
        let dissimilar = cs("7f3a9c0e-22bb-4f6d-9a1e-55c2ab99d001");
        let eli_similar = min_encoding_length_increment(&base, &similar, 4, 4);
        let eli_dissimilar = min_encoding_length_increment(&base, &dissimilar, 4, 4);
        assert!(
            eli_similar < eli_dissimilar,
            "similar: {eli_similar}, dissimilar: {eli_dissimilar}"
        );
    }

    #[test]
    fn increment_scales_with_cluster_sizes() {
        let a = cs("abcXdef");
        let b = cs("abcYdef");
        let small = min_encoding_length_increment(&a, &b, 1, 1);
        let large = min_encoding_length_increment(&a, &b, 100, 100);
        assert!(
            large > small,
            "demoting a literal costs every member record"
        );
    }

    #[test]
    fn dp_matches_exhaustive_reference_on_small_inputs() {
        let cases = [
            ("ab3*2", "ab*12"),
            ("abc", "abc"),
            ("abc", "xyz"),
            ("a*b", "ab"),
            ("*a*", "aa"),
            ("log_12", "log_99"),
            ("", "abc"),
            ("", ""),
            ("a*", "*a"),
        ];
        for (x, y) in cases {
            for (sx, sy) in [(1usize, 1usize), (2, 3), (5, 1)] {
                let dp = min_encoding_length_increment(&cs(x), &cs(y), sx, sy);
                let brute = reference::exhaustive_increment(&cs(x), &cs(y), sx, sy);
                assert_eq!(dp, brute, "x={x:?} y={y:?} sizes=({sx},{sy})");
            }
        }
    }

    #[test]
    fn bounded_variant_prunes_expensive_merges() {
        let a = cs("aaaaaaaaaaaaaaaaaaaaaa");
        let b = cs("zzzzzzzzzzzzzzzzzzzzzz");
        let exact = min_encoding_length_increment(&a, &b, 10, 10);
        assert!(exact > 0);
        let pruned = min_encoding_length_increment_bounded(&a, &b, 10, 10, exact / 4);
        assert_eq!(pruned, i64::MAX, "bound below the true cost must prune");
        let not_pruned = min_encoding_length_increment_bounded(&a, &b, 10, 10, exact + 1);
        assert_eq!(not_pruned, exact);
    }

    #[test]
    fn empty_sequences_merge_trivially() {
        let out = merge(&cs(""), &cs(""), 3, 4);
        assert_eq!(out.increment, 0);
        assert!(out.cs.is_empty());
        let out = merge(&cs("abc"), &cs(""), 2, 2);
        assert_eq!(out.cs, cs("*"));
    }

    #[test]
    fn merged_gaps_are_coalesced() {
        let out = merge(&cs("a*b*c"), &cs("axbyc"), 1, 1);
        // No two adjacent gaps in the output.
        for w in out.cs.windows(2) {
            assert!(
                !(matches!(w[0], PatElem::Gap) && matches!(w[1], PatElem::Gap)),
                "adjacent gaps must be coalesced: {:?}",
                out.cs
            );
        }
        assert_eq!(out.cs, cs("a*b*c"));
    }
}
