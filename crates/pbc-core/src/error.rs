//! Error types for the PBC core crate.

use std::fmt;

/// Result alias used throughout `pbc-core`.
pub type Result<T> = std::result::Result<T, PbcError>;

/// Errors produced by PBC compression, decompression, and pattern handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbcError {
    /// A compressed record references a pattern id that is not in the
    /// dictionary used for decompression.
    UnknownPattern {
        /// The offending pattern id.
        id: u32,
    },
    /// The compressed record ended before all declared fields were decoded.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// A field value cannot be decoded with the encoder the pattern declares.
    FieldDecode {
        /// Index of the field within the pattern.
        field: usize,
        /// Description of the failure.
        reason: String,
    },
    /// A structural invariant of the serialized dictionary was violated.
    CorruptDictionary {
        /// Description of the violation.
        reason: String,
    },
    /// An error bubbled up from the residual / block codec layer.
    Codec(pbc_codecs::CodecError),
}

impl fmt::Display for PbcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PbcError::UnknownPattern { id } => write!(f, "unknown pattern id {id}"),
            PbcError::Truncated { context } => {
                write!(f, "compressed record truncated while reading {context}")
            }
            PbcError::FieldDecode { field, reason } => {
                write!(f, "failed to decode field {field}: {reason}")
            }
            PbcError::CorruptDictionary { reason } => {
                write!(f, "corrupt pattern dictionary: {reason}")
            }
            PbcError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for PbcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PbcError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pbc_codecs::CodecError> for PbcError {
    fn from(e: pbc_codecs::CodecError) -> Self {
        PbcError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_key_information() {
        assert!(PbcError::UnknownPattern { id: 42 }
            .to_string()
            .contains("42"));
        assert!(PbcError::Truncated {
            context: "field count"
        }
        .to_string()
        .contains("field count"));
        assert!(PbcError::FieldDecode {
            field: 3,
            reason: "not a digit".into()
        }
        .to_string()
        .contains("field 3"));
    }

    #[test]
    fn codec_errors_convert() {
        let codec_err = pbc_codecs::CodecError::MissingDictionary;
        let err: PbcError = codec_err.clone().into();
        assert_eq!(err, PbcError::Codec(codec_err));
    }
}
