//! Configuration of the PBC training (pattern extraction) and compression
//! pipeline.

use crate::clustering::Criterion;

/// Tunable parameters of PBC.
///
/// The defaults follow the paper's recommendations: a few hundred KiB of
/// samples is enough for the compression ratio to converge (Figure 9(a)),
/// the pattern size should be set "according to the cache budget"
/// (Figure 9(b)), and re-training is triggered when the share of outliers
/// exceeds a fixed threshold (Sections 3.2 and 7.5).
#[derive(Debug, Clone)]
pub struct PbcConfig {
    /// Maximum number of sample records used for pattern extraction.
    pub max_sample_records: usize,
    /// Maximum number of sample bytes used for pattern extraction (applied
    /// together with `max_sample_records`, whichever is hit first).
    pub max_sample_bytes: usize,
    /// Number of clusters the agglomerative merging stops at (`k`).
    pub target_clusters: usize,
    /// Cap on the wildcard-sequence length used during clustering.
    pub max_cs_len: usize,
    /// Optional budget (in bytes) for the total size of the extracted
    /// pattern dictionary; `None` keeps every pattern.
    pub pattern_budget_bytes: Option<usize>,
    /// Patterns whose literal content is shorter than this are discarded
    /// (they save too little to be worth a dictionary slot).
    pub min_pattern_literal: usize,
    /// Clustering criterion (the ablation of Figure 7 swaps this).
    pub criterion: Criterion,
    /// Enable 1-gram pruning during clustering (Section 5.1).
    pub use_onegram_pruning: bool,
    /// Fraction of compressed records allowed to be outliers before
    /// [`crate::compressor::PbcCompressor::should_retrain`] reports `true`.
    pub outlier_retrain_threshold: f64,
    /// Random seed used for sampling (fixed for reproducible experiments).
    pub sample_seed: u64,
}

impl Default for PbcConfig {
    fn default() -> Self {
        PbcConfig {
            max_sample_records: 256,
            max_sample_bytes: 256 * 1024,
            target_clusters: 64,
            max_cs_len: 512,
            pattern_budget_bytes: None,
            min_pattern_literal: 4,
            criterion: Criterion::EncodingLength,
            use_onegram_pruning: true,
            outlier_retrain_threshold: 0.05,
            sample_seed: 0x5eed_1234_abcd,
        }
    }
}

impl PbcConfig {
    /// A configuration tuned for very small training sets (used by unit
    /// tests and doc examples to keep runtimes negligible).
    pub fn small() -> Self {
        PbcConfig {
            max_sample_records: 64,
            max_sample_bytes: 64 * 1024,
            target_clusters: 8,
            max_cs_len: 256,
            ..PbcConfig::default()
        }
    }

    /// Derive the clustering sub-configuration.
    pub fn clustering(&self) -> crate::clustering::ClusteringConfig {
        crate::clustering::ClusteringConfig {
            target_clusters: self.target_clusters,
            criterion: self.criterion,
            use_onegram_pruning: self.use_onegram_pruning,
            max_cs_len: self.max_cs_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = PbcConfig::default();
        assert!(c.max_sample_records > 0);
        assert!(c.target_clusters > 0);
        assert!(c.outlier_retrain_threshold > 0.0 && c.outlier_retrain_threshold < 1.0);
        assert_eq!(c.criterion, Criterion::EncodingLength);
    }

    #[test]
    fn clustering_config_mirrors_pbc_config() {
        let c = PbcConfig {
            target_clusters: 17,
            use_onegram_pruning: false,
            ..PbcConfig::default()
        };
        let cc = c.clustering();
        assert_eq!(cc.target_clusters, 17);
        assert!(!cc.use_onegram_pruning);
        assert_eq!(cc.max_cs_len, c.max_cs_len);
    }

    #[test]
    fn small_profile_shrinks_the_sample() {
        let small = PbcConfig::small();
        let default = PbcConfig::default();
        assert!(small.max_sample_records < default.max_sample_records);
        assert!(small.target_clusters < default.target_clusters);
    }
}
