//! # pbc-core — Pattern-Based Compression
//!
//! From-scratch Rust implementation of the PBC algorithm from
//! *"High-Ratio Compression for Machine-Generated Data"* (SIGMOD 2023):
//! per-record compression of machine-generated data driven by patterns
//! (common subsequences with typed wildcard fields) that are discovered
//! offline by minimal-encoding-length clustering.
//!
//! ## Pipeline
//!
//! 1. **Sampling** ([`sampling`]) — a few hundred KiB of records.
//! 2. **Clustering** ([`clustering`], [`dp`], [`onegram`]) — greedy
//!    agglomerative merging under the minimal encoding-length increment
//!    criterion (Algorithms 1–2), with 1-gram pruning.
//! 3. **Pattern extraction** ([`extraction`], [`encoders`]) — one pattern
//!    per cluster, each wildcard assigned the cheapest valid field encoder
//!    of Table 1 (`CHAR`, `VARCHAR`, `INT`, `VARINT`).
//! 4. **Compression** ([`compressor`], [`multimatch`], [`matching`]) — each
//!    record is matched against the dictionary (longest pattern wins), its
//!    residual field values are encoded, and the output is
//!    `pattern id + encoded fields`; unmatched records are stored verbatim
//!    as outliers. Decompression is a dictionary lookup plus field decoding.
//!
//! Variants: plain `PBC`, `PBC_F` (FSST-coded residuals,
//! [`compressor::PbcCompressor::train_fsst`]), and the block-compressed
//! `PBC_Z` / `PBC_L` ([`variants::PbcBlockCompressor`]).
//!
//! ## Example
//!
//! ```
//! use pbc_core::{PbcCompressor, PbcConfig};
//!
//! let records: Vec<Vec<u8>> = (0..300)
//!     .map(|i| format!("GET /api/v1/users/{}/profile?lang=en HTTP/1.1", 10_000 + (i * 7919) % 80_000).into_bytes())
//!     .collect();
//! let sample: Vec<&[u8]> = records.iter().take(100).map(|r| r.as_slice()).collect();
//!
//! let pbc = PbcCompressor::train(&sample, &PbcConfig::small());
//! let compressed = pbc.compress(&records[250]);
//! assert!(compressed.len() < records[250].len() / 2);
//! assert_eq!(pbc.decompress(&compressed).unwrap(), records[250]);
//! ```

#![forbid(unsafe_code)]

pub mod cluster;
pub mod clustering;
pub mod compressor;
pub mod config;
pub mod dictionary;
pub mod dp;
pub mod encoders;
pub mod encoding_length;
pub mod entropy;
pub mod error;
pub mod extraction;
pub mod matching;
pub mod multimatch;
pub mod onegram;
pub mod pattern;
pub mod sampling;
pub mod stats;
pub mod variants;

pub use clustering::{cluster_records, ClusteringConfig, Criterion};
pub use compressor::{PbcCompressor, ResidualMode};
pub use config::PbcConfig;
pub use dictionary::{PatternDictionary, OUTLIER_ID};
pub use encoders::FieldEncoder;
pub use error::{PbcError, Result};
pub use extraction::{extract_from_samples, extract_patterns, ExtractionReport};
pub use pattern::{Pattern, Segment};
pub use stats::StatsSnapshot;
pub use variants::PbcBlockCompressor;
