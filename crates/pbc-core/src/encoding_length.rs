//! Encoding length (Definitions 1–2 of the paper) computed on actual
//! records.
//!
//! The clustering loop estimates encoding-length *increments* from the
//! clusters' wildcard sequences alone (see [`crate::dp`]); this module
//! computes the real thing — the number of bytes needed to store a set of
//! records under a given pattern and encoder assignment — which is used by
//! the ablation criteria, the entropy analysis, and tests that validate the
//! clustering heuristic against ground truth.

use crate::cluster::{Cluster, PatElem};
use crate::encoders::{infer_encoder, FieldEncoder};
use crate::matching::match_structure;
use crate::pattern::{Pattern, Segment};

/// Convert a cluster's wildcard sequence into a [`Pattern`] whose fields all
/// use the `VARCHAR` encoder (the monotonic encoder the clustering model
/// assumes, Section 6 "we only consider the VARCHAR encoding").
pub fn pattern_from_cs(cs: &[PatElem]) -> Pattern {
    let mut segments = Vec::new();
    let mut literal = Vec::new();
    for e in cs {
        match e {
            PatElem::Lit(b) => literal.push(*b),
            PatElem::Gap => {
                if !literal.is_empty() {
                    segments.push(Segment::Literal(std::mem::take(&mut literal)));
                }
                segments.push(Segment::Field(FieldEncoder::Varchar));
            }
        }
    }
    if !literal.is_empty() {
        segments.push(Segment::Literal(literal));
    }
    Pattern::new(segments)
}

/// Convert a cluster's wildcard sequence into a pattern with *inferred*
/// field encoders: each field's encoder is the cheapest one accepting every
/// member's residual value (Definition 2's optimal encoding function).
///
/// Records that do not structurally match (which cannot happen for genuine
/// cluster members, but can for capped sequences) fall back to `VARCHAR`.
pub fn pattern_with_inferred_encoders(cs: &[PatElem], members: &[&[u8]]) -> Pattern {
    let base = pattern_from_cs(cs);
    let field_count = base.field_count();
    if field_count == 0 {
        return base;
    }
    // Collect the residual values per field across all members.
    let mut per_field: Vec<Vec<Vec<u8>>> = vec![Vec::new(); field_count];
    for &record in members {
        if let Some(m) = match_structure(&base, record) {
            for (k, &(s, e)) in m.field_spans.iter().enumerate() {
                per_field[k].push(record[s..e].to_vec());
            }
        }
    }
    // Rebuild the pattern: fields whose observed values are all empty are
    // alignment artefacts (every member is fully covered by the surrounding
    // literals), so they are dropped — keeping them would force future
    // records to have nothing at that position. The remaining fields get the
    // cheapest encoder accepting all observed values.
    let mut segments = Vec::with_capacity(base.segments().len());
    let mut field_idx = 0usize;
    for seg in base.segments() {
        match seg {
            Segment::Literal(l) => segments.push(Segment::Literal(l.clone())),
            Segment::Field(_) => {
                let values = &per_field[field_idx];
                field_idx += 1;
                let all_empty = !values.is_empty() && values.iter().all(|v| v.is_empty());
                if all_empty {
                    continue;
                }
                let encoder = if values.is_empty() {
                    FieldEncoder::Varchar
                } else {
                    let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
                    infer_encoder(&refs)
                };
                segments.push(Segment::Field(encoder));
            }
        }
    }
    Pattern::new(segments)
}

/// Encoding length of one record under a pattern (Definition 1 for a single
/// string): the summed encoded size of its residual field values. Returns
/// `None` if the record does not match the pattern structurally.
pub fn record_encoding_length(pattern: &Pattern, record: &[u8]) -> Option<usize> {
    let m = match_structure(pattern, record)?;
    let encoders = pattern.field_encoders();
    let mut total = 0usize;
    for (enc, &(s, e)) in encoders.iter().zip(m.field_spans.iter()) {
        let value = &record[s..e];
        if enc.accepts(value) {
            total += enc.encoded_len(value);
        } else {
            // Fall back to the VARCHAR cost for values the specialised
            // encoder rejects (the compressor would treat the record as an
            // outlier; for EL accounting the generic cost is the fair
            // stand-in).
            total += FieldEncoder::Varchar.encoded_len(value);
        }
    }
    Some(total)
}

/// Encoding length of a set of records under a pattern (Definition 1):
/// `EL(S, p, f) = Σᵢ f(rᵢ)`. Records that do not match are charged their
/// raw length plus a one-byte marker (they would be stored as outliers).
pub fn set_encoding_length(pattern: &Pattern, records: &[&[u8]]) -> usize {
    records
        .iter()
        .map(|r| record_encoding_length(pattern, r).unwrap_or(r.len() + 1))
        .sum()
}

/// Encoding length of a cluster under the VARCHAR-only model used during
/// clustering; convenience wrapper combining [`pattern_from_cs`] and
/// [`set_encoding_length`].
pub fn cluster_encoding_length(cluster: &Cluster, samples: &[Vec<u8>]) -> usize {
    let pattern = pattern_from_cs(&cluster.cs);
    let members: Vec<&[u8]> = cluster
        .members
        .iter()
        .map(|&i| samples[i].as_slice())
        .collect();
    set_encoding_length(&pattern, &members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;

    #[test]
    fn pattern_from_cs_translates_gaps_to_varchar_fields() {
        let cs = Cluster::cs_from_str("ab3*2");
        let p = pattern_from_cs(&cs);
        assert_eq!(p.display(), "ab3*<VARCHAR>2");
        assert_eq!(p.field_count(), 1);
    }

    #[test]
    fn record_encoding_length_counts_varchar_headers() {
        let p = pattern_from_cs(&Cluster::cs_from_str("ab*cd*"));
        // Residuals: "XY" (2+1 header) and "" (0+1 header) → 4 bytes.
        assert_eq!(record_encoding_length(&p, b"abXYcd"), Some(4));
        // Non-matching record.
        assert_eq!(record_encoding_length(&p, b"zzzz"), None);
    }

    #[test]
    fn inferred_encoders_match_figure2() {
        let cs = Cluster::cs_from_str("V5company_charging-100-*accenter*ac*counting_log_*202*");
        let records: Vec<&[u8]> = vec![
            b"V5company_charging-100-57accenter20ac_accounting_log_202123050",
            b"V5company_charging-100-72accenter11ac_accounting_log_202204181",
            b"V5company_charging-100-15accenter42accounting_log_id202205420",
            b"V5company_charging-100-46accenter32ac_accounting_log_202204381",
        ];
        let p = pattern_with_inferred_encoders(&cs, &records);
        let encoders = p.field_encoders();
        assert_eq!(encoders.len(), 5);
        assert_eq!(
            encoders[0],
            FieldEncoder::Int {
                digits: 2,
                bytes: 1
            }
        );
        assert_eq!(
            encoders[1],
            FieldEncoder::Int {
                digits: 2,
                bytes: 1
            }
        );
        assert_eq!(encoders[2], FieldEncoder::Varchar);
        assert_eq!(encoders[3], FieldEncoder::Varchar);
        assert_eq!(
            encoders[4],
            FieldEncoder::Int {
                digits: 6,
                bytes: 3
            }
        );
        // All records still match with the constrained encoders.
        for r in &records {
            assert!(crate::matching::match_record(&p, r).is_some());
        }
    }

    #[test]
    fn set_encoding_length_is_smaller_for_better_patterns() {
        let records: Vec<&[u8]> = vec![
            b"user=alice action=login",
            b"user=bob action=login",
            b"user=carol action=login",
        ];
        let good = pattern_from_cs(&Cluster::cs_from_str("user=* action=login"));
        let poor = pattern_from_cs(&Cluster::cs_from_str("user=*"));
        assert!(set_encoding_length(&good, &records) < set_encoding_length(&poor, &records));
    }

    #[test]
    fn unmatched_records_are_charged_raw_length() {
        let p = pattern_from_cs(&Cluster::cs_from_str("prefix-*"));
        let records: Vec<&[u8]> = vec![b"prefix-1", b"other"];
        // "prefix-1": residual "1" → 2 bytes; "other": 5 + 1 = 6 bytes.
        assert_eq!(set_encoding_length(&p, &records), 8);
    }

    #[test]
    fn cluster_encoding_length_uses_member_indices() {
        let samples = vec![
            b"item-001-ok".to_vec(),
            b"item-002-ok".to_vec(),
            b"unrelated".to_vec(),
        ];
        let cluster = Cluster {
            cs: Cluster::cs_from_str("item-00*-ok"),
            members: vec![0, 1],
            weight: 2,
            onegram: crate::onegram::OneGram::default(),
        };
        // Each member's residual is one digit → 2 bytes each with the header.
        assert_eq!(cluster_encoding_length(&cluster, &samples), 4);
    }
}
