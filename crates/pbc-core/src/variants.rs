//! Block-compressed PBC variants: `PBC_Z` (Zstd-like backend) and `PBC_L`
//! (LZMA-like backend).
//!
//! Section 5.2 / Section 7.2.3: PBC is orthogonal to block compression —
//! after records are individually pattern-compressed, the concatenated
//! output can be passed to a dictionary compressor to squeeze the remaining
//! redundancy (at the price of losing per-record random access, exactly like
//! the paper's `PBC_Z` / `PBC_L` file-compression variants).

use pbc_codecs::traits::Codec;
use pbc_codecs::varint;
use pbc_codecs::{LzmaLike, ZstdLike};

use crate::compressor::PbcCompressor;
use crate::config::PbcConfig;
use crate::error::{PbcError, Result};

/// A PBC compressor whose per-record output is additionally block-compressed
/// by a general-purpose backend.
pub struct PbcBlockCompressor {
    pbc: PbcCompressor,
    backend: Box<dyn Codec + Send + Sync>,
    name: &'static str,
}

impl PbcBlockCompressor {
    /// `PBC_Z`: PBC followed by the Zstd-like codec.
    pub fn zstd(samples: &[&[u8]], config: &PbcConfig, level: i32) -> Self {
        PbcBlockCompressor {
            pbc: PbcCompressor::train(samples, config),
            backend: Box::new(ZstdLike::new(level)),
            name: "PBC_Z",
        }
    }

    /// `PBC_L`: PBC followed by the LZMA-like codec.
    pub fn lzma(samples: &[&[u8]], config: &PbcConfig, level: i32) -> Self {
        PbcBlockCompressor {
            pbc: PbcCompressor::train(samples, config),
            backend: Box::new(LzmaLike::new(level)),
            name: "PBC_L",
        }
    }

    /// Wrap an already-trained PBC compressor with an arbitrary backend.
    pub fn with_backend(
        pbc: PbcCompressor,
        backend: Box<dyn Codec + Send + Sync>,
        name: &'static str,
    ) -> Self {
        PbcBlockCompressor { pbc, backend, name }
    }

    /// Variant name for benchmark tables ("PBC_Z", "PBC_L", ...).
    pub fn variant_name(&self) -> &'static str {
        self.name
    }

    /// Access the inner per-record compressor.
    pub fn inner(&self) -> &PbcCompressor {
        &self.pbc
    }

    /// Compress a whole block (file) of records: each record is
    /// pattern-compressed, length-prefixed, concatenated, and the result is
    /// block-compressed by the backend.
    pub fn compress_block(&self, records: &[Vec<u8>]) -> Vec<u8> {
        let mut intermediate = Vec::new();
        varint::write_usize(&mut intermediate, records.len());
        for rec in records {
            let compressed = self.pbc.compress(rec);
            varint::write_usize(&mut intermediate, compressed.len());
            intermediate.extend_from_slice(&compressed);
        }
        self.backend.compress(&intermediate)
    }

    /// Decompress a block produced by [`Self::compress_block`], returning
    /// the original records.
    pub fn decompress_block(&self, block: &[u8]) -> Result<Vec<Vec<u8>>> {
        let intermediate = self.backend.decompress(block)?;
        let (count, mut pos) = varint::read_usize(&intermediate, 0)?;
        if count > intermediate.len() {
            return Err(PbcError::CorruptDictionary {
                reason: format!("implausible record count {count} in block"),
            });
        }
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let (len, p) = varint::read_usize(&intermediate, pos)?;
            pos = p;
            if pos + len > intermediate.len() {
                return Err(PbcError::Truncated {
                    context: "block record payload",
                });
            }
            records.push(self.pbc.decompress(&intermediate[pos..pos + len])?);
            pos += len;
        }
        Ok(records)
    }

    /// Block compression ratio over a record set (compressed / raw).
    pub fn block_ratio(&self, records: &[Vec<u8>]) -> f64 {
        let raw: usize = records.iter().map(|r| r.len()).sum();
        if raw == 0 {
            return 1.0;
        }
        self.compress_block(records).len() as f64 / raw as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_records(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                format!(
                    "2023-06-13 10:{:02}:{:02} INFO dfs.DataNode$PacketResponder: Received block blk_{} of size {} from /10.0.{}.{}",
                    (i / 60) % 60,
                    i % 60,
                    5_000_000 + i * 97,
                    67_108_864 - (i % 4096),
                    i % 256,
                    (i * 7) % 256
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn block_roundtrip_zstd_backend() {
        let records = log_records(200);
        let refs: Vec<&[u8]> = records[..80].iter().map(|r| r.as_slice()).collect();
        let codec = PbcBlockCompressor::zstd(&refs, &PbcConfig::small(), 3);
        assert_eq!(codec.variant_name(), "PBC_Z");
        let block = codec.compress_block(&records);
        let restored = codec.decompress_block(&block).unwrap();
        assert_eq!(restored, records);
    }

    #[test]
    fn block_roundtrip_lzma_backend() {
        let records = log_records(150);
        let refs: Vec<&[u8]> = records[..80].iter().map(|r| r.as_slice()).collect();
        let codec = PbcBlockCompressor::lzma(&refs, &PbcConfig::small(), 6);
        assert_eq!(codec.variant_name(), "PBC_L");
        let block = codec.compress_block(&records);
        let restored = codec.decompress_block(&block).unwrap();
        assert_eq!(restored, records);
    }

    #[test]
    fn block_variants_compress_tighter_than_per_record_pbc() {
        let records = log_records(300);
        let refs: Vec<&[u8]> = records[..100].iter().map(|r| r.as_slice()).collect();
        let config = PbcConfig::small();
        let block = PbcBlockCompressor::zstd(&refs, &config, 3);
        let per_record = PbcCompressor::train(&refs, &config);

        let raw: usize = records.iter().map(|r| r.len()).sum();
        let per_record_total: usize = records.iter().map(|r| per_record.compress(r).len()).sum();
        let block_total = block.compress_block(&records).len();
        assert!(
            block_total < per_record_total,
            "block {} vs per-record {} (raw {})",
            block_total,
            per_record_total,
            raw
        );
        assert!(block.block_ratio(&records) < 0.5);
    }

    #[test]
    fn corrupt_blocks_are_rejected() {
        let records = log_records(50);
        let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
        let codec = PbcBlockCompressor::zstd(&refs, &PbcConfig::small(), 3);
        let mut block = codec.compress_block(&records);
        block.truncate(block.len() / 2);
        assert!(codec.decompress_block(&block).is_err());
        assert!(codec.decompress_block(&[1, 2, 3]).is_err());
    }

    #[test]
    fn empty_block_roundtrips() {
        let records = log_records(30);
        let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
        let codec = PbcBlockCompressor::zstd(&refs, &PbcConfig::small(), 3);
        let block = codec.compress_block(&[]);
        assert!(codec.decompress_block(&block).unwrap().is_empty());
        assert_eq!(codec.block_ratio(&[]), 1.0);
    }
}
