//! Runtime statistics of a compressor instance.
//!
//! The production integration (Section 7.5) monitors the share of records
//! that fail to match any pattern; when it exceeds a threshold, re-sampling
//! and re-training is triggered. The counters here are atomic so a shared
//! compressor can be used concurrently from a store's worker threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters describing the work a [`crate::compressor::PbcCompressor`]
/// has performed since creation (or the last [`CompressionStats::reset`]).
#[derive(Debug, Default)]
pub struct CompressionStats {
    records: AtomicU64,
    outliers: AtomicU64,
    raw_bytes: AtomicU64,
    compressed_bytes: AtomicU64,
}

/// A plain snapshot of [`CompressionStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Records compressed.
    pub records: u64,
    /// Records stored as outliers (no matching pattern).
    pub outliers: u64,
    /// Total raw input bytes.
    pub raw_bytes: u64,
    /// Total compressed output bytes.
    pub compressed_bytes: u64,
}

impl StatsSnapshot {
    /// Compression ratio (compressed / raw), 1.0 when nothing was compressed.
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.compressed_bytes as f64 / self.raw_bytes as f64
        }
    }

    /// Fraction of records stored as outliers.
    pub fn outlier_rate(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.outliers as f64 / self.records as f64
        }
    }
}

impl CompressionStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one compressed record.
    pub fn record(&self, raw_len: usize, compressed_len: usize, outlier: bool) {
        self.records.fetch_add(1, Ordering::Relaxed);
        if outlier {
            self.outliers.fetch_add(1, Ordering::Relaxed);
        }
        self.raw_bytes.fetch_add(raw_len as u64, Ordering::Relaxed);
        self.compressed_bytes
            .fetch_add(compressed_len as u64, Ordering::Relaxed);
    }

    /// Take a consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            records: self.records.load(Ordering::Relaxed),
            outliers: self.outliers.load(Ordering::Relaxed),
            raw_bytes: self.raw_bytes.load(Ordering::Relaxed),
            compressed_bytes: self.compressed_bytes.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters (used after re-training).
    pub fn reset(&self) {
        self.records.store(0, Ordering::Relaxed);
        self.outliers.store(0, Ordering::Relaxed);
        self.raw_bytes.store(0, Ordering::Relaxed);
        self.compressed_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = CompressionStats::new();
        stats.record(100, 30, false);
        stats.record(50, 50, true);
        let snap = stats.snapshot();
        assert_eq!(snap.records, 2);
        assert_eq!(snap.outliers, 1);
        assert_eq!(snap.raw_bytes, 150);
        assert_eq!(snap.compressed_bytes, 80);
        assert!((snap.ratio() - 80.0 / 150.0).abs() < 1e-12);
        assert!((snap.outlier_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_neutral_ratios() {
        let snap = CompressionStats::new().snapshot();
        assert_eq!(snap.ratio(), 1.0);
        assert_eq!(snap.outlier_rate(), 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let stats = CompressionStats::new();
        stats.record(10, 5, true);
        stats.reset();
        let snap = stats.snapshot();
        assert_eq!(snap.records, 0);
        assert_eq!(snap.raw_bytes, 0);
    }

    #[test]
    fn counters_are_safe_under_concurrent_updates() {
        use std::sync::Arc;
        let stats = Arc::new(CompressionStats::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let stats = Arc::clone(&stats);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    stats.record(10, 3, false);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = stats.snapshot();
        assert_eq!(snap.records, 4000);
        assert_eq!(snap.raw_bytes, 40_000);
        assert_eq!(snap.compressed_bytes, 12_000);
    }
}
