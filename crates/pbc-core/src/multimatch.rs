//! Multi-pattern matching: finding, among all dictionary patterns, the best
//! one for a record.
//!
//! The paper uses Hyperscan, a multi-regex matcher, to test a record against
//! every pattern at once and then keeps the longest matching pattern
//! (Section 3.2). This module is the from-scratch substitute: patterns are
//! bucketed by a short literal-prefix anchor and screened with a cheap byte
//! signature before the exact glob matcher runs, and candidates are tried in
//! descending literal-length order so the first hit is the longest pattern.

use crate::dictionary::PatternDictionary;
use crate::matching::{match_record, MatchResult};
use crate::pattern::{Pattern, Segment};

/// Length of the literal prefix used as a hash anchor.
const ANCHOR_LEN: usize = 4;

/// A prepared matcher over a pattern dictionary.
#[derive(Debug, Clone)]
pub struct MultiMatcher {
    /// `(pattern id, pattern, byte signature)` sorted by literal length
    /// descending (so the first match found is the longest pattern).
    anchored: Vec<PatternEntry>,
    floating: Vec<PatternEntry>,
}

#[derive(Debug, Clone)]
struct PatternEntry {
    id: u32,
    pattern: Pattern,
    /// Prefix anchor bytes (empty for floating patterns).
    anchor: Vec<u8>,
    /// 256-bit byte-occurrence signature of all literal bytes.
    signature: [u64; 4],
    literal_len: usize,
}

/// Compute the byte-occurrence signature of a byte string.
fn signature_of(bytes: impl Iterator<Item = u8>) -> [u64; 4] {
    let mut sig = [0u64; 4];
    for b in bytes {
        sig[(b >> 6) as usize] |= 1u64 << (b & 63);
    }
    sig
}

/// Whether every bit of `needle` is present in `haystack`.
fn signature_subset(needle: &[u64; 4], haystack: &[u64; 4]) -> bool {
    needle.iter().zip(haystack.iter()).all(|(n, h)| n & !h == 0)
}

impl MultiMatcher {
    /// Build a matcher for all patterns of a dictionary.
    pub fn new(dictionary: &PatternDictionary) -> Self {
        let mut anchored = Vec::new();
        let mut floating = Vec::new();
        for (id, pattern) in dictionary.iter() {
            let literal_bytes = pattern.segments().iter().flat_map(|s| match s {
                Segment::Literal(l) => l.to_vec(),
                Segment::Field(_) => Vec::new(),
            });
            let signature = signature_of(literal_bytes);
            let anchor = match pattern.segments().first() {
                Some(Segment::Literal(l)) => l[..l.len().min(ANCHOR_LEN)].to_vec(),
                _ => Vec::new(),
            };
            let entry = PatternEntry {
                id,
                literal_len: pattern.literal_len(),
                pattern: pattern.clone(),
                anchor: anchor.clone(),
                signature,
            };
            if anchor.is_empty() {
                floating.push(entry);
            } else {
                anchored.push(entry);
            }
        }
        anchored.sort_by_key(|e| std::cmp::Reverse(e.literal_len));
        floating.sort_by_key(|e| std::cmp::Reverse(e.literal_len));
        MultiMatcher { anchored, floating }
    }

    /// Number of patterns the matcher screens.
    pub fn pattern_count(&self) -> usize {
        self.anchored.len() + self.floating.len()
    }

    /// Find the longest pattern matching `record` (including field encoder
    /// constraints). Returns `(pattern id, match result)`.
    pub fn best_match(&self, record: &[u8]) -> Option<(u32, MatchResult)> {
        let record_sig = signature_of(record.iter().copied());
        let mut best: Option<(u32, usize, MatchResult)> = None;

        let consider = |entry: &PatternEntry, best: &mut Option<(u32, usize, MatchResult)>| {
            if let Some((_, best_len, _)) = best {
                if entry.literal_len <= *best_len {
                    return;
                }
            }
            if entry.literal_len > record.len() {
                return;
            }
            if !signature_subset(&entry.signature, &record_sig) {
                return;
            }
            if !entry.anchor.is_empty() && !record.starts_with(&entry.anchor) {
                return;
            }
            if let Some(m) = match_record(&entry.pattern, record) {
                *best = Some((entry.id, entry.literal_len, m));
            }
        };

        // Entries are sorted by literal length descending, so the first
        // accepted anchored entry is the best anchored one; likewise for
        // floating entries. We still compare across both lists.
        for entry in &self.anchored {
            if best
                .as_ref()
                .is_some_and(|(_, l, _)| entry.literal_len <= *l)
            {
                break;
            }
            consider(entry, &mut best);
        }
        for entry in &self.floating {
            if best
                .as_ref()
                .is_some_and(|(_, l, _)| entry.literal_len <= *l)
            {
                break;
            }
            consider(entry, &mut best);
        }
        best.map(|(id, _, m)| (id, m))
    }

    /// Look up the pattern for an id (used by tests and diagnostics).
    pub fn pattern(&self, id: u32) -> Option<&Pattern> {
        self.anchored
            .iter()
            .chain(self.floating.iter())
            .find(|e| e.id == id)
            .map(|e| &e.pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::PatternDictionary;

    fn dict() -> PatternDictionary {
        PatternDictionary::from_patterns(vec![
            Pattern::parse("*ob*"),
            Pattern::parse("*ooba*"),
            Pattern::parse("GET /api/users/*<VARINT> HTTP/1.1"),
            Pattern::parse("GET /api/* HTTP/1.1"),
            Pattern::parse("level=*<CHAR(4)> component=* msg=*"),
        ])
    }

    #[test]
    fn longest_matching_pattern_wins() {
        let matcher = MultiMatcher::new(&dict());
        // Paper example: both *ob* and *ooba* match "foobar"; the longer wins.
        let (id, m) = matcher.best_match(b"foobar").expect("foobar matches");
        let pattern = matcher.pattern(id).unwrap();
        assert_eq!(pattern.display(), "*<VARCHAR>ooba*<VARCHAR>");
        assert_eq!(m.residual_len(), 2);
    }

    #[test]
    fn anchored_patterns_prefer_more_specific_literal() {
        let matcher = MultiMatcher::new(&dict());
        let (id, _) = matcher
            .best_match(b"GET /api/users/4711 HTTP/1.1")
            .expect("request matches");
        let pattern = matcher.pattern(id).unwrap();
        assert!(pattern.display().contains("/api/users/"));
        // A different API path falls back to the generic pattern.
        let (id2, _) = matcher
            .best_match(b"GET /api/orders HTTP/1.1")
            .expect("request matches generic pattern");
        let pattern2 = matcher.pattern(id2).unwrap();
        assert_eq!(pattern2.display(), "GET /api/*<VARCHAR> HTTP/1.1");
    }

    #[test]
    fn unmatched_records_return_none() {
        let matcher = MultiMatcher::new(&dict());
        assert!(matcher.best_match(b"completely unrelated").is_none());
        assert!(matcher.best_match(b"").is_none());
    }

    #[test]
    fn encoder_constraints_reject_candidates() {
        let matcher = MultiMatcher::new(&dict());
        // "users/abc" is not a VARINT, so the specific pattern is rejected
        // and the generic /api/* one matches instead.
        let (id, _) = matcher
            .best_match(b"GET /api/users/abc HTTP/1.1")
            .expect("generic pattern still matches");
        assert_eq!(
            matcher.pattern(id).unwrap().display(),
            "GET /api/*<VARCHAR> HTTP/1.1"
        );
    }

    #[test]
    fn empty_dictionary_matches_nothing() {
        let matcher = MultiMatcher::new(&PatternDictionary::new());
        assert_eq!(matcher.pattern_count(), 0);
        assert!(matcher.best_match(b"anything").is_none());
    }

    #[test]
    fn signature_prefilter_is_sound() {
        // A record missing a byte that appears in a pattern's literals can
        // never match that pattern; make sure the filter agrees with the
        // matcher by exercising many records.
        let matcher = MultiMatcher::new(&dict());
        let records: Vec<Vec<u8>> = (0..100)
            .map(|i| format!("GET /api/users/{i} HTTP/1.1").into_bytes())
            .collect();
        for r in &records {
            let found = matcher.best_match(r);
            assert!(
                found.is_some(),
                "record {:?} must match",
                String::from_utf8_lossy(r)
            );
        }
    }
}
