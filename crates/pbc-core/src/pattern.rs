//! Patterns: common subsequences with wildcard fields.
//!
//! A pattern (Section 3.2 / Example 1 of the paper) is a common subsequence
//! of a cluster's records in which the varying parts are replaced by
//! wildcards, each wildcard carrying a [`FieldEncoder`]:
//!
//! ```text
//! V5company_charging-100-*<INT(2,1)>accenter*<INT(2,1)>ac*<VARCHAR>counting_log_*<VARCHAR>202*<INT(6,2)>
//! ```
//!
//! Internally a pattern is a list of [`Segment`]s alternating between
//! literal byte runs and fields; adjacent fields are always coalesced so
//! matching is unambiguous.

use crate::encoders::FieldEncoder;
use crate::error::{PbcError, Result};

/// One element of a pattern: a literal byte run or a wildcard field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Bytes that every record of the cluster contains at this position.
    Literal(Vec<u8>),
    /// A varying field, encoded with the given encoder.
    Field(FieldEncoder),
}

/// A compiled pattern: alternating literal and field segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    segments: Vec<Segment>,
}

impl Pattern {
    /// Build a pattern from segments, coalescing adjacent literals and
    /// adjacent fields (two adjacent VARCHAR wildcards are ambiguous, so the
    /// second is merged into the first).
    pub fn new(segments: Vec<Segment>) -> Self {
        let mut out: Vec<Segment> = Vec::with_capacity(segments.len());
        for seg in segments {
            match (out.last_mut(), seg) {
                (Some(Segment::Literal(prev)), Segment::Literal(cur)) => {
                    prev.extend_from_slice(&cur);
                }
                (Some(Segment::Field(_)), Segment::Field(_)) => {
                    // Coalesce into a single VARCHAR field: the combined
                    // content varies in both halves, so only VARCHAR is safe.
                    // pbc-allow(panic): the match arm just destructured Some
                    let last = out.last_mut().expect("just matched Some");
                    *last = Segment::Field(FieldEncoder::Varchar);
                }
                (_, seg @ (Segment::Literal(_) | Segment::Field(_))) => {
                    // Skip empty literals entirely.
                    if let Segment::Literal(ref l) = seg {
                        if l.is_empty() {
                            continue;
                        }
                    }
                    out.push(seg);
                }
            }
        }
        Pattern { segments: out }
    }

    /// Parse the paper's textual notation, e.g. `"ab3*2"` or
    /// `"V5-*<VARCHAR>-202*"`. A bare `*` becomes a VARCHAR field; the
    /// explicit forms `*<VARCHAR>`, `*<VARINT>`, `*<CHAR(n)>`, `*<INT(n,m)>`
    /// are also recognised. Used by tests and examples.
    pub fn parse(text: &str) -> Self {
        let bytes = text.as_bytes();
        let mut segments = Vec::new();
        let mut literal = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'*' {
                if !literal.is_empty() {
                    segments.push(Segment::Literal(std::mem::take(&mut literal)));
                }
                // Check for an explicit encoder spec.
                if bytes.get(i + 1) == Some(&b'<') {
                    if let Some(end) = text[i + 2..].find('>') {
                        let spec = &text[i + 2..i + 2 + end];
                        segments.push(Segment::Field(parse_encoder_spec(spec)));
                        i += 2 + end + 1;
                        continue;
                    }
                }
                segments.push(Segment::Field(FieldEncoder::Varchar));
                i += 1;
            } else {
                literal.push(bytes[i]);
                i += 1;
            }
        }
        if !literal.is_empty() {
            segments.push(Segment::Literal(literal));
        }
        Pattern::new(segments)
    }

    /// The segments of this pattern.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of wildcard fields.
    pub fn field_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Field(_)))
            .count()
    }

    /// The field encoders in order.
    pub fn field_encoders(&self) -> Vec<FieldEncoder> {
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Field(e) => Some(*e),
                Segment::Literal(_) => None,
            })
            .collect()
    }

    /// Replace the field encoders (in order) with the supplied ones; used
    /// after encoder inference during pattern extraction.
    pub fn with_field_encoders(&self, encoders: &[FieldEncoder]) -> Self {
        let mut it = encoders.iter();
        let segments = self
            .segments
            .iter()
            .map(|s| match s {
                // pbc-allow(panic): the encoder iterator is built with one entry per field
                Segment::Field(_) => Segment::Field(*it.next().expect("one encoder per field")),
                Segment::Literal(l) => Segment::Literal(l.clone()),
            })
            .collect();
        Pattern { segments }
    }

    /// Total number of literal bytes in the pattern (the length of the
    /// common subsequence the pattern captures).
    pub fn literal_len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Literal(l) => l.len(),
                Segment::Field(_) => 0,
            })
            .sum()
    }

    /// In-memory size of the pattern in bytes: literal content plus a small
    /// per-field descriptor. This is what the paper's "pattern size" budget
    /// (Figure 9(b)) counts against the cache budget.
    pub fn size_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Literal(l) => l.len() + 1,
                Segment::Field(_) => 3,
            })
            .sum()
    }

    /// Whether the pattern contains any literal content at all (a pattern
    /// that is a single wildcard matches everything and compresses nothing).
    pub fn has_literals(&self) -> bool {
        self.literal_len() > 0
    }

    /// Human-readable form mirroring the paper's notation.
    pub fn display(&self) -> String {
        let mut s = String::new();
        for seg in &self.segments {
            match seg {
                Segment::Literal(l) => s.push_str(&String::from_utf8_lossy(l)),
                Segment::Field(e) => s.push_str(&e.display()),
            }
        }
        s
    }

    /// Serialize the pattern for the on-disk / in-store dictionary.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        pbc_codecs::varint::write_usize(out, self.segments.len());
        for seg in &self.segments {
            match seg {
                Segment::Literal(l) => {
                    out.push(0);
                    pbc_codecs::varint::write_usize(out, l.len());
                    out.extend_from_slice(l);
                }
                Segment::Field(e) => {
                    out.push(1);
                    e.serialize(out);
                }
            }
        }
    }

    /// Inverse of [`Pattern::serialize`]; returns the pattern and new
    /// position.
    pub fn deserialize(input: &[u8], pos: usize) -> Result<(Self, usize)> {
        let (count, mut pos) = pbc_codecs::varint::read_usize(input, pos)?;
        if count > input.len() + 1 {
            return Err(PbcError::CorruptDictionary {
                reason: format!("implausible segment count {count}"),
            });
        }
        let mut segments = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = *input.get(pos).ok_or(PbcError::Truncated {
                context: "pattern segment tag",
            })?;
            pos += 1;
            match tag {
                0 => {
                    let (len, p) = pbc_codecs::varint::read_usize(input, pos)?;
                    pos = p;
                    if pos + len > input.len() {
                        return Err(PbcError::Truncated {
                            context: "pattern literal",
                        });
                    }
                    segments.push(Segment::Literal(input[pos..pos + len].to_vec()));
                    pos += len;
                }
                1 => {
                    let (enc, p) = FieldEncoder::deserialize(input, pos)?;
                    pos = p;
                    segments.push(Segment::Field(enc));
                }
                other => {
                    return Err(PbcError::CorruptDictionary {
                        reason: format!("unknown segment tag {other}"),
                    })
                }
            }
        }
        // Note: deliberately *not* re-coalescing here; serialization always
        // comes from a normalized pattern.
        Ok((Pattern { segments }, pos))
    }
}

/// Parse one encoder spec from the textual pattern notation.
fn parse_encoder_spec(spec: &str) -> FieldEncoder {
    if spec.eq_ignore_ascii_case("VARCHAR") {
        FieldEncoder::Varchar
    } else if spec.eq_ignore_ascii_case("VARINT") {
        FieldEncoder::Varint
    } else if let Some(args) = spec
        .strip_prefix("INT(")
        .or_else(|| spec.strip_prefix("int("))
        .and_then(|s| s.strip_suffix(')'))
    {
        let mut parts = args.split(',');
        let digits: u8 = parts
            .next()
            .and_then(|p| p.trim().parse().ok())
            .unwrap_or(1);
        let bytes: u8 = parts
            .next()
            .and_then(|p| p.trim().parse().ok())
            .unwrap_or_else(|| FieldEncoder::int_bytes_for_digits(digits));
        FieldEncoder::Int { digits, bytes }
    } else if let Some(arg) = spec
        .strip_prefix("CHAR(")
        .or_else(|| spec.strip_prefix("char("))
        .and_then(|s| s.strip_suffix(')'))
    {
        FieldEncoder::Char {
            n: arg.trim().parse().unwrap_or(1),
        }
    } else {
        FieldEncoder::Varchar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip_paper_notation() {
        let p = Pattern::parse("V5company_charging-100-*<INT(2,1)>accenter*<INT(2,1)>ac*<VARCHAR>counting_log_*<VARCHAR>202*<INT(6,2)>");
        assert_eq!(p.field_count(), 5);
        assert!(p
            .display()
            .starts_with("V5company_charging-100-*<INT(2,1)>"));
        let p2 = Pattern::parse(&p.display());
        assert_eq!(p, p2);
    }

    #[test]
    fn bare_star_becomes_varchar_field() {
        let p = Pattern::parse("ab3*2");
        assert_eq!(p.field_count(), 1);
        assert_eq!(p.field_encoders(), vec![FieldEncoder::Varchar]);
        assert_eq!(p.literal_len(), 4);
    }

    #[test]
    fn adjacent_fields_are_coalesced() {
        let p = Pattern::new(vec![
            Segment::Literal(b"a".to_vec()),
            Segment::Field(FieldEncoder::Varint),
            Segment::Field(FieldEncoder::Varchar),
            Segment::Literal(b"b".to_vec()),
        ]);
        assert_eq!(p.field_count(), 1);
        assert_eq!(p.field_encoders(), vec![FieldEncoder::Varchar]);
    }

    #[test]
    fn adjacent_literals_are_merged_and_empty_literals_dropped() {
        let p = Pattern::new(vec![
            Segment::Literal(b"ab".to_vec()),
            Segment::Literal(b"".to_vec()),
            Segment::Literal(b"cd".to_vec()),
            Segment::Field(FieldEncoder::Varchar),
            Segment::Literal(b"".to_vec()),
        ]);
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.literal_len(), 4);
    }

    #[test]
    fn with_field_encoders_replaces_in_order() {
        let p = Pattern::parse("a*b*c");
        let q = p.with_field_encoders(&[FieldEncoder::int_for_digits(2), FieldEncoder::Varint]);
        assert_eq!(
            q.field_encoders(),
            vec![FieldEncoder::int_for_digits(2), FieldEncoder::Varint]
        );
        // Literals untouched.
        assert_eq!(q.literal_len(), 3);
    }

    #[test]
    fn serialization_roundtrips() {
        let p = Pattern::parse(
            "GET /api/v1/users/*<VARINT>/profile?lang=*<CHAR(2)> HTTP/1.*<INT(1,1)>",
        );
        let mut buf = Vec::new();
        p.serialize(&mut buf);
        let (q, pos) = Pattern::deserialize(&buf, 0).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(p, q);
    }

    #[test]
    fn deserialize_rejects_corrupt_input() {
        assert!(Pattern::deserialize(&[], 0).is_err());
        // Segment count says 3 but nothing follows.
        assert!(Pattern::deserialize(&[3], 0).is_err());
        // Unknown segment tag.
        assert!(Pattern::deserialize(&[1, 7], 0).is_err());
    }

    #[test]
    fn size_bytes_counts_literals_and_fields() {
        let p = Pattern::parse("abc*def*");
        // 2 literals (3+1 + 3+1) + 2 fields (3 each) = 14.
        assert_eq!(p.size_bytes(), 14);
        assert!(p.has_literals());
        assert!(!Pattern::parse("*").has_literals());
    }
}
