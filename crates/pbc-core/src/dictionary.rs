//! The pattern dictionary: the offline-trained artifact shared by the
//! compressor and decompressor.
//!
//! Pattern extraction (Figure 1(a)) produces a dictionary mapping small
//! integer pattern ids to [`Pattern`]s. Compressed records reference their
//! pattern by id; decompression looks the pattern up and stitches literals
//! and decoded field values back together (Figure 1(c)).
//!
//! Pattern id 0 is reserved for outliers: records that match no pattern are
//! stored verbatim under this id (Section 3.2).

use crate::error::{PbcError, Result};
use crate::pattern::Pattern;

/// Reserved pattern id marking an outlier record stored in raw form.
pub const OUTLIER_ID: u32 = 0;

/// An ordered collection of patterns with stable integer ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PatternDictionary {
    /// Patterns indexed by `id - 1` (id 0 is the outlier sentinel).
    patterns: Vec<Pattern>,
}

impl PatternDictionary {
    /// Create an empty dictionary (every record becomes an outlier).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a dictionary from extracted patterns. Patterns without literal
    /// content are dropped: a pure-wildcard pattern cannot save any bytes.
    pub fn from_patterns(patterns: Vec<Pattern>) -> Self {
        PatternDictionary {
            patterns: patterns.into_iter().filter(Pattern::has_literals).collect(),
        }
    }

    /// Number of patterns (excluding the outlier sentinel).
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the dictionary holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Iterate `(id, pattern)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Pattern)> {
        self.patterns
            .iter()
            .enumerate()
            .map(|(i, p)| ((i + 1) as u32, p))
    }

    /// Look a pattern up by id. Returns `None` for the outlier id and for
    /// ids beyond the dictionary.
    pub fn get(&self, id: u32) -> Option<&Pattern> {
        if id == OUTLIER_ID {
            return None;
        }
        self.patterns.get((id - 1) as usize)
    }

    /// Look a pattern up by id, returning an error suitable for the
    /// decompression path.
    pub fn get_or_err(&self, id: u32) -> Result<&Pattern> {
        self.get(id).ok_or(PbcError::UnknownPattern { id })
    }

    /// Total in-memory size of the patterns in bytes (the paper's "pattern
    /// size", the knob of Figure 9(b)).
    pub fn size_bytes(&self) -> usize {
        self.patterns.iter().map(Pattern::size_bytes).sum()
    }

    /// Serialize the whole dictionary (for persistence or for shipping to
    /// TierBase instances).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        pbc_codecs::varint::write_usize(&mut out, self.patterns.len());
        for p in &self.patterns {
            p.serialize(&mut out);
        }
        out
    }

    /// Inverse of [`PatternDictionary::serialize`].
    pub fn deserialize(input: &[u8]) -> Result<Self> {
        let (count, mut pos) = pbc_codecs::varint::read_usize(input, 0)?;
        if count > input.len() {
            return Err(PbcError::CorruptDictionary {
                reason: format!("implausible pattern count {count}"),
            });
        }
        let mut patterns = Vec::with_capacity(count);
        for _ in 0..count {
            let (p, new_pos) = Pattern::deserialize(input, pos)?;
            pos = new_pos;
            patterns.push(p);
        }
        Ok(PatternDictionary { patterns })
    }

    /// Keep only the largest-benefit patterns so that the total pattern size
    /// stays within `budget_bytes` (Figure 9(b): the pattern size is set
    /// "according to the cache budget"). Patterns are ranked by literal
    /// length, the bytes they save per matching record.
    pub fn truncate_to_budget(&mut self, budget_bytes: usize) {
        if self.size_bytes() <= budget_bytes {
            return;
        }
        let mut indexed: Vec<(usize, usize)> = self
            .patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.literal_len()))
            .collect();
        indexed.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut keep = vec![false; self.patterns.len()];
        let mut used = 0usize;
        for (i, _) in indexed {
            let sz = self.patterns[i].size_bytes();
            if used + sz <= budget_bytes {
                used += sz;
                keep[i] = true;
            }
        }
        let mut idx = 0;
        self.patterns.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dictionary() -> PatternDictionary {
        PatternDictionary::from_patterns(vec![
            Pattern::parse("GET /api/users/*<VARINT> HTTP/1.1"),
            Pattern::parse("POST /api/orders/*<VARINT>/items HTTP/1.1"),
            Pattern::parse("level=* msg=*"),
        ])
    }

    #[test]
    fn ids_start_at_one_and_zero_is_reserved() {
        let dict = sample_dictionary();
        assert_eq!(dict.len(), 3);
        assert!(dict.get(OUTLIER_ID).is_none());
        assert!(dict.get(1).is_some());
        assert!(dict.get(3).is_some());
        assert!(dict.get(4).is_none());
        assert!(matches!(
            dict.get_or_err(9),
            Err(PbcError::UnknownPattern { id: 9 })
        ));
    }

    #[test]
    fn pure_wildcard_patterns_are_dropped() {
        let dict =
            PatternDictionary::from_patterns(vec![Pattern::parse("*"), Pattern::parse("a*b")]);
        assert_eq!(dict.len(), 1);
    }

    #[test]
    fn serialization_roundtrips() {
        let dict = sample_dictionary();
        let bytes = dict.serialize();
        let restored = PatternDictionary::deserialize(&bytes).unwrap();
        assert_eq!(dict, restored);
        assert!(PatternDictionary::deserialize(&[0xff, 0xff]).is_err());
    }

    #[test]
    fn empty_dictionary_roundtrips() {
        let dict = PatternDictionary::new();
        assert!(dict.is_empty());
        let restored = PatternDictionary::deserialize(&dict.serialize()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn budget_truncation_keeps_highest_value_patterns() {
        let mut dict = PatternDictionary::from_patterns(vec![
            Pattern::parse("short*"),
            Pattern::parse("a much longer literal pattern that saves many bytes *<VARINT> end"),
            Pattern::parse("medium sized literal *"),
        ]);
        let full = dict.size_bytes();
        // Leave room for the largest pattern but not for everything.
        let budget = full - 20;
        dict.truncate_to_budget(budget);
        assert!(dict.size_bytes() <= budget);
        assert!(!dict.is_empty());
        // The longest-literal pattern must survive.
        assert!(dict
            .iter()
            .any(|(_, p)| p.display().contains("much longer literal")));
    }

    #[test]
    fn budget_truncation_is_noop_when_within_budget() {
        let mut dict = sample_dictionary();
        let before = dict.clone();
        dict.truncate_to_budget(usize::MAX);
        assert_eq!(dict, before);
    }
}
