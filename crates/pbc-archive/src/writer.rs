//! Streaming segment writer with a worker pool for block compression.
//!
//! Records accumulate into blocks of roughly `target_block_bytes`; each
//! full block is handed to a `std::thread` worker pool as `(sequence,
//! entries)`, compressed independently, and reassembled in sequence order
//! before hitting the file — so a segment written with N workers is
//! byte-identical to one written single-threaded.
//!
//! The block codec is fixed once: forced specs train on the first block as
//! it closes, while [`CodecSpec::Auto`] buffers a window of blocks
//! ([`SegmentConfig::auto_sample_window`]) and trial-selects over up to
//! [`SegmentConfig::auto_sample_blocks`] samples spread across it, so a
//! drifting corpus cannot commit the segment to whatever the first block
//! alone suggested. Either way the header with the trained artifacts is
//! written before any block bytes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use crate::codec::{build_codec, serialized_len, BlockCodec, CodecSpec, Entry};
use crate::error::{ArchiveError, Result};
use crate::format::{
    crc32, encode_index, encode_trailer, BlockMeta, Header, FLAG_SORTED_KEYS, VERSION,
};
use crate::obs::WriterObs;

/// Tuning for [`SegmentWriter`].
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Close a block once its serialized payload reaches this many bytes.
    pub target_block_bytes: usize,
    /// Hard cap on records per block regardless of size.
    pub max_block_records: usize,
    /// Which codec to use (or how to pick one).
    pub codec: CodecSpec,
    /// Compression worker threads. `0` and `1` both mean inline (no pool).
    pub workers: usize,
    /// For [`CodecSpec::Auto`]: buffer up to this many closed blocks before
    /// committing to a codec, so selection can sample across the input
    /// instead of trusting the first block. Bounds the writer's extra memory
    /// to roughly `auto_sample_window * target_block_bytes`.
    pub auto_sample_window: usize,
    /// For [`CodecSpec::Auto`]: how many blocks, spread evenly across the
    /// buffered window, the trial selection samples (at most 4 by default).
    pub auto_sample_blocks: usize,
    /// How readers opened against this segment fetch bytes (carried here so
    /// hosts that embed a `SegmentConfig` — e.g. `pbc-tier` — pick one knob
    /// for both writing and reopening). The writer itself ignores it.
    pub read_mode: crate::ReadMode,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            target_block_bytes: 64 * 1024,
            max_block_records: 4096,
            codec: CodecSpec::Auto,
            workers: 1,
            auto_sample_window: 16,
            auto_sample_blocks: 4,
            read_mode: crate::ReadMode::Auto,
        }
    }
}

impl SegmentConfig {
    /// Convenience: default config with the given codec.
    pub fn with_codec(codec: CodecSpec) -> Self {
        SegmentConfig {
            codec,
            ..SegmentConfig::default()
        }
    }

    /// Convenience: set the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Convenience: set the read mode used when reopening this segment.
    pub fn with_read_mode(mut self, read_mode: crate::ReadMode) -> Self {
        self.read_mode = read_mode;
        self
    }

    /// Whether a block holding `records` entries of `bytes` estimated
    /// payload is due to close under this config. This is **the** blocking
    /// rule — callers predicting writer block boundaries (e.g. to sample
    /// spill payloads for codec selection) must use it rather than
    /// re-deriving the thresholds.
    pub fn block_is_full(&self, records: usize, bytes: usize) -> bool {
        bytes >= self.target_block_bytes || records >= self.max_block_records
    }
}

/// The writer's per-entry size estimate used to close blocks: key and
/// value bytes plus ~10 bytes of varint framing. Shared so external block
/// predictions stay in sync with [`SegmentWriter::append`].
pub fn entry_size_estimate(key_len: usize, value_len: usize) -> usize {
    key_len + value_len + 10
}

/// What [`SegmentWriter::finish`] reports.
#[derive(Debug, Clone)]
pub struct SegmentSummary {
    /// Where the segment was written.
    pub path: PathBuf,
    /// Records stored.
    pub record_count: u64,
    /// Blocks written.
    pub block_count: usize,
    /// Total serialized (uncompressed) payload bytes.
    pub raw_bytes: u64,
    /// Total compressed block bytes (excluding header/index).
    pub compressed_bytes: u64,
    /// Name of the codec the segment committed to.
    pub codec: &'static str,
    /// Records appended via [`SegmentWriter::append_flagged`] (tombstones,
    /// for the tiered store).
    pub flagged_count: u64,
    /// Total bytes written to the segment file (header + blocks + index +
    /// trailer) — the authoritative on-disk size, counted by the writer
    /// itself so callers never have to re-stat a file they just fsynced.
    pub file_bytes: u64,
}

impl SegmentSummary {
    /// Compressed/raw ratio over block payloads (1.0 when empty).
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.compressed_bytes as f64 / self.raw_bytes as f64
        }
    }
}

/// A compressed block travelling from a worker back to the writer.
struct CompressedBlock {
    entries_meta: BlockEntryMeta,
    /// Codec the block actually used (the segment codec, or the raw
    /// fallback when compression expanded the payload).
    codec_id: u8,
    bytes: Vec<u8>,
}

/// Everything the index needs to know about a block besides its file
/// position. Most of it is computed from the raw entries before
/// compression; `flagged_count` is carried in by the writer (it is not
/// derivable from the entry bytes).
struct BlockEntryMeta {
    record_count: u64,
    raw_len: u64,
    min_key: Vec<u8>,
    max_key: Vec<u8>,
    flagged_count: u64,
}

fn block_entry_meta(entries: &[Entry], flagged_count: u64) -> BlockEntryMeta {
    let mut min_key: Option<&[u8]> = None;
    let mut max_key: Option<&[u8]> = None;
    for (key, _) in entries {
        if min_key.is_none_or(|m| key.as_slice() < m) {
            min_key = Some(key);
        }
        if max_key.is_none_or(|m| key.as_slice() > m) {
            max_key = Some(key);
        }
    }
    BlockEntryMeta {
        record_count: entries.len() as u64,
        raw_len: serialized_len(entries) as u64,
        min_key: min_key.unwrap_or_default().to_vec(),
        max_key: max_key.unwrap_or_default().to_vec(),
        flagged_count,
    }
}

/// A closed block on its way to compression: its entries plus the count of
/// flagged records among them.
struct BlockJob {
    entries: Vec<Entry>,
    flagged: u64,
}

fn compress_one(codec: &BlockCodec, job: BlockJob, obs: &WriterObs) -> CompressedBlock {
    let timer = obs.encode_ns.start_timer();
    obs.blocks_encoded.inc();
    let BlockJob { entries, flagged } = job;
    let entries_meta = block_entry_meta(&entries, flagged);
    let bytes = codec.compress_block(&entries);
    timer.observe();
    // Per-block raw fallback: when the segment codec expands this block
    // (data drifted away from what the first block trained on), store the
    // serialized payload verbatim instead, bounding worst-case ratio.
    if entries_meta.raw_len < bytes.len() as u64 {
        return CompressedBlock {
            bytes: crate::codec::serialize_entries(&entries),
            entries_meta,
            codec_id: crate::codec::codec_id::RAW,
        };
    }
    CompressedBlock {
        entries_meta,
        codec_id: codec.id(),
        bytes,
    }
}

/// Up to `k` strictly increasing indices spread evenly over `0..n` (first
/// and last always included when `n > 1`) — the shared sampling rule for
/// codec selection, used by this writer's `Auto` window and by callers
/// sampling whole segments or spill payloads.
pub fn spread_sample_indices(n: usize, k: usize) -> Vec<usize> {
    if n <= k {
        return (0..n).collect();
    }
    if k == 1 {
        return vec![0];
    }
    (0..k).map(|i| i * (n - 1) / (k - 1)).collect()
}

struct Pool {
    work_tx: Option<SyncSender<(u64, BlockJob)>>,
    result_rx: Receiver<(u64, CompressedBlock)>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    fn spawn(codec: Arc<BlockCodec>, workers: usize, obs: WriterObs) -> Pool {
        let (work_tx, work_rx) = mpsc::sync_channel::<(u64, BlockJob)>(workers * 2);
        let (result_tx, result_rx) = mpsc::channel();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let handles = (0..workers)
            .map(|worker| {
                let work_rx = Arc::clone(&work_rx);
                let result_tx = result_tx.clone();
                let codec = Arc::clone(&codec);
                let obs = obs.clone();
                std::thread::Builder::new()
                    .name(format!("pbc-archive-compress-{worker}"))
                    .spawn(move || loop {
                        // pbc-allow(panic): queue mutex poisoning means a sibling worker panicked; abort this one too
                        let job = work_rx.lock().expect("worker queue poisoned").recv();
                        match job {
                            Ok((seq, block)) => {
                                // A send error means the writer is gone; just
                                // stop, it can no longer use the result.
                                if result_tx
                                    .send((seq, compress_one(&codec, block, &obs)))
                                    .is_err()
                                {
                                    return;
                                }
                            }
                            Err(_) => return,
                        }
                    })
                    // pbc-allow(panic): OS thread-spawn failure at pool creation is not a recoverable write error
                    .expect("spawning compression worker")
            })
            .collect();
        Pool {
            work_tx: Some(work_tx),
            result_rx,
            handles,
        }
    }

    fn shutdown(&mut self) {
        // Closing the work channel makes every worker's recv fail and exit.
        self.work_tx = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Writes one segment file; see the [module docs](self) for the pipeline.
pub struct SegmentWriter {
    path: PathBuf,
    file: BufWriter<File>,
    config: SegmentConfig,
    codec: Option<Arc<BlockCodec>>,
    /// `(artifacts, sorted-bit-as-written)` — kept so `finish` can re-write
    /// the header if a later append broke sorted order after the header
    /// already hit the file.
    header_state: Option<(Vec<u8>, bool)>,
    pool: Option<Pool>,
    current: Vec<Entry>,
    current_bytes: usize,
    /// Flagged records in the current (open) block.
    current_flagged: u64,
    /// Closed blocks held back while [`CodecSpec::Auto`] waits for its
    /// sampling window to fill (see [`SegmentConfig::auto_sample_window`]).
    pending: Vec<BlockJob>,
    sorted: bool,
    last_key: Vec<u8>,
    offset: u64,
    index: Vec<BlockMeta>,
    /// Sequence number the next closed block gets.
    next_seq: u64,
    /// Sequence number the next block written to the file must have.
    next_write: u64,
    /// Out-of-order results waiting for their turn.
    reorder: BinaryHeap<Reverse<SeqBlock>>,
    raw_bytes: u64,
    compressed_bytes: u64,
    record_count: u64,
    flagged_count: u64,
    /// Encode instrumentation; no-op unless attached via
    /// [`SegmentWriter::create_with_obs`]. Cloned into pool workers, so
    /// it must be set before the first block closes.
    obs: WriterObs,
}

struct SeqBlock {
    seq: u64,
    block: CompressedBlock,
}

impl PartialEq for SeqBlock {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for SeqBlock {}

impl PartialOrd for SeqBlock {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SeqBlock {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.seq.cmp(&other.seq)
    }
}

impl SegmentWriter {
    /// Create a segment at `path` (truncating any existing file).
    pub fn create(path: impl AsRef<Path>, config: SegmentConfig) -> Result<Self> {
        Self::create_with_obs(path, config, WriterObs::noop())
    }

    /// [`SegmentWriter::create`] with encode instrumentation attached:
    /// `obs` counts blocks encoded and times each block's compression
    /// (on whichever thread runs it, inline or pool worker).
    pub fn create_with_obs(
        path: impl AsRef<Path>,
        config: SegmentConfig,
        obs: WriterObs,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = BufWriter::new(File::create(&path)?);
        Ok(SegmentWriter {
            path,
            file,
            config,
            codec: None,
            header_state: None,
            pool: None,
            current: Vec::new(),
            current_bytes: 0,
            current_flagged: 0,
            pending: Vec::new(),
            sorted: true,
            last_key: Vec::new(),
            offset: 0,
            index: Vec::new(),
            next_seq: 0,
            next_write: 0,
            reorder: BinaryHeap::new(),
            raw_bytes: 0,
            compressed_bytes: 0,
            record_count: 0,
            flagged_count: 0,
            obs,
        })
    }

    /// Append a keyed record. Keys appended in non-decreasing order keep the
    /// segment key-searchable via [`crate::SegmentReader::get`].
    pub fn append(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.append_inner(key, value, false)
    }

    /// Append a keyed record and count it in the block's `flagged_count`
    /// (surfaced per block and per segment through the footer index). The
    /// flag changes nothing about how the record is stored or read back;
    /// callers define its meaning — the tiered store flags tombstones so
    /// dead-entry ratios are readable without decoding blocks.
    pub fn append_flagged(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.append_inner(key, value, true)
    }

    fn append_inner(&mut self, key: &[u8], value: &[u8], flagged: bool) -> Result<()> {
        if self.sorted && self.record_count > 0 && key < self.last_key.as_slice() {
            self.sorted = false;
        }
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.current_bytes += entry_size_estimate(key.len(), value.len());
        self.current.push((key.to_vec(), value.to_vec()));
        self.record_count += 1;
        if flagged {
            self.current_flagged += 1;
            self.flagged_count += 1;
        }
        if self
            .config
            .block_is_full(self.current.len(), self.current_bytes)
        {
            self.close_block()?;
        }
        Ok(())
    }

    /// Append a keyless record (empty key); retrieval is by ordinal via
    /// [`crate::SegmentReader::get_record`].
    pub fn append_record(&mut self, value: &[u8]) -> Result<()> {
        self.append(&[], value)
    }

    /// Records appended so far.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// The codec the segment committed to, if the first block has closed.
    pub fn codec_name(&self) -> Option<&'static str> {
        self.codec.as_ref().map(|c| c.name())
    }

    /// Close the current block: pick the codec if none is committed yet
    /// (buffering under [`CodecSpec::Auto`] until the sampling window
    /// fills), then compress inline or enqueue to the pool.
    fn close_block(&mut self) -> Result<()> {
        if self.current.is_empty() {
            return Ok(());
        }
        let job = BlockJob {
            entries: std::mem::take(&mut self.current),
            flagged: std::mem::take(&mut self.current_flagged),
        };
        self.current_bytes = 0;
        if self.codec.is_none() {
            if matches!(self.config.codec, CodecSpec::Auto) {
                self.pending.push(job);
                if self.pending.len() >= self.config.auto_sample_window.max(1) {
                    self.commit_pending()?;
                }
                return Ok(());
            }
            self.commit_codec(build_codec(&self.config.codec, &job.entries))?;
        }
        self.dispatch_block(job)
    }

    /// Hand a closed block to the worker pool (or compress it inline) once a
    /// codec is committed.
    fn dispatch_block(&mut self, job: BlockJob) -> Result<()> {
        let codec = Arc::clone(
            self.codec
                .as_ref()
                // pbc-allow(panic): commit_codec runs before any block dispatch
                .expect("codec committed before dispatch"),
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.config.workers > 1 {
            if self.pool.is_none() {
                self.pool = Some(Pool::spawn(
                    Arc::clone(&codec),
                    self.config.workers,
                    self.obs.clone(),
                ));
            }
            self.pool
                .as_ref()
                // pbc-allow(panic): pool created in the branch above
                .expect("pool spawned above")
                .work_tx
                .as_ref()
                // pbc-allow(panic): work channel closes only when the pool is dropped
                .expect("work channel open while writing")
                .send((seq, job))
                // pbc-allow(panic): workers only exit after the work channel closes; send cannot fail here
                .expect("compression workers alive while writer holds the pool");
            self.drain_results(false)?;
        } else {
            let block = compress_one(&codec, job, &self.obs);
            self.write_block(seq, block)?;
        }
        Ok(())
    }

    /// Commit the `Auto` codec: trial-select over up to
    /// [`SegmentConfig::auto_sample_blocks`] blocks spread evenly across the
    /// buffered window, write the header, then stream the buffered blocks
    /// out in their original order.
    fn commit_pending(&mut self) -> Result<()> {
        let pending = std::mem::take(&mut self.pending);
        let samples = spread_sample_indices(pending.len(), self.config.auto_sample_blocks.max(1));
        let sample_blocks: Vec<&[Entry]> = samples
            .iter()
            .map(|&i| pending[i].entries.as_slice())
            .collect();
        let codec = crate::codec::select_codec_over_blocks(&sample_blocks);
        self.commit_codec(codec)?;
        for job in pending {
            self.dispatch_block(job)?;
        }
        Ok(())
    }

    /// Write the header for a trained codec and commit to it.
    fn commit_codec(&mut self, codec: BlockCodec) -> Result<()> {
        let header = Header {
            version: VERSION,
            codec_id: codec.id(),
            flags: if self.sorted { FLAG_SORTED_KEYS } else { 0 },
            artifacts: codec.artifacts(),
        };
        let bytes = header.encode();
        self.file.write_all(&bytes)?;
        self.offset = bytes.len() as u64;
        self.header_state = Some((header.artifacts, self.sorted));
        self.codec = Some(Arc::new(codec));
        Ok(())
    }

    /// If appends after the header was written broke sorted order, re-write
    /// the header in place with the flag cleared (same length, new CRC).
    fn patch_header_if_stale(&mut self) -> Result<()> {
        use std::io::{Seek, SeekFrom};
        let Some((artifacts, written_sorted)) = self.header_state.take() else {
            return Ok(());
        };
        if written_sorted == self.sorted {
            return Ok(());
        }
        let header = Header {
            version: VERSION,
            // pbc-allow(panic): codec committed before the header rewrite
            codec_id: self.codec.as_ref().expect("codec set with header").id(),
            flags: if self.sorted { FLAG_SORTED_KEYS } else { 0 },
            artifacts,
        };
        self.file.flush()?;
        let file = self.file.get_mut();
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header.encode())?;
        file.seek(SeekFrom::Start(self.offset))?;
        Ok(())
    }

    /// Pull finished blocks off the result channel and write every in-order
    /// prefix. `blocking` waits until all submitted blocks are written.
    fn drain_results(&mut self, blocking: bool) -> Result<()> {
        if self.pool.is_none() {
            return Ok(());
        }
        loop {
            // First flush whatever the reorder heap already has in order.
            while self
                .reorder
                .peek()
                .is_some_and(|Reverse(b)| b.seq == self.next_write)
            {
                // pbc-allow(panic): peeked Some on the line above
                let Reverse(SeqBlock { seq, block }) = self.reorder.pop().expect("peeked above");
                self.write_block(seq, block)?;
            }
            if self.next_write == self.next_seq {
                return Ok(()); // everything submitted has been written
            }
            let received = {
                // pbc-allow(panic): pool presence checked at fn entry
                let pool = self.pool.as_ref().expect("pool presence checked above");
                if blocking {
                    match pool.result_rx.recv() {
                        Ok(result) => Some(result),
                        Err(_) => {
                            return Err(ArchiveError::Corrupt {
                                context: "compression workers exited early".into(),
                            })
                        }
                    }
                } else {
                    pool.result_rx.try_recv().ok()
                }
            };
            match received {
                Some((seq, block)) => self.reorder.push(Reverse(SeqBlock { seq, block })),
                None => return Ok(()), // non-blocking and nothing ready yet
            }
        }
    }

    fn write_block(&mut self, seq: u64, block: CompressedBlock) -> Result<()> {
        debug_assert_eq!(seq, self.next_write, "blocks must be written in order");
        let CompressedBlock {
            entries_meta,
            codec_id,
            bytes,
        } = block;
        self.file.write_all(&bytes)?;
        self.index.push(BlockMeta {
            codec_id,
            record_count: entries_meta.record_count,
            raw_len: entries_meta.raw_len,
            file_offset: self.offset,
            comp_len: bytes.len() as u64,
            crc: crc32(&bytes),
            min_key: entries_meta.min_key,
            max_key: entries_meta.max_key,
            flagged_count: entries_meta.flagged_count,
        });
        self.offset += bytes.len() as u64;
        self.raw_bytes += entries_meta.raw_len;
        self.compressed_bytes += bytes.len() as u64;
        self.next_write = seq + 1;
        Ok(())
    }

    /// Flush the tail block, drain the pool, and write the index + trailer.
    pub fn finish(mut self) -> Result<SegmentSummary> {
        self.close_block()?;
        if self.codec.is_none() && !self.pending.is_empty() {
            // Auto segment shorter than the sampling window: select over
            // whatever blocks exist.
            self.commit_pending()?;
        }
        if self.codec.is_none() {
            // Zero-record segment: commit so the file is still
            // self-describing (Raw under Auto).
            self.commit_codec(build_codec(&self.config.codec, &[]))?;
        }
        self.drain_results(true)?;
        if let Some(mut pool) = self.pool.take() {
            pool.shutdown();
        }
        self.patch_header_if_stale()?;
        let index = encode_index(&self.index);
        let index_offset = self.offset;
        self.file.write_all(&index)?;
        let trailer = encode_trailer(index_offset, index.len() as u32, crc32(&index));
        self.file.write_all(&trailer)?;
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        Ok(SegmentSummary {
            path: self.path.clone(),
            record_count: self.record_count,
            block_count: self.index.len(),
            raw_bytes: self.raw_bytes,
            compressed_bytes: self.compressed_bytes,
            // pbc-allow(panic): stats are read after commit_codec
            codec: self.codec.as_ref().expect("codec committed above").name(),
            flagged_count: self.flagged_count,
            file_bytes: index_offset + index.len() as u64 + trailer.len() as u64,
        })
    }
}

#[cfg(test)]
mod sampling_tests {
    use super::spread_sample_indices;

    #[test]
    fn spread_indices_cover_first_and_last() {
        assert_eq!(spread_sample_indices(16, 4), vec![0, 5, 10, 15]);
        assert_eq!(spread_sample_indices(5, 4), vec![0, 1, 2, 4]);
        assert_eq!(spread_sample_indices(3, 4), vec![0, 1, 2]);
        assert_eq!(spread_sample_indices(0, 4), Vec::<usize>::new());
        assert_eq!(spread_sample_indices(9, 1), vec![0]);
        // Strictly increasing whenever n > k.
        for n in 5..40 {
            let idx = spread_sample_indices(n, 4);
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "n={n}: {idx:?}");
            assert_eq!(*idx.last().unwrap(), n - 1);
        }
    }
}
