//! Read-only memory-mapped segment files — the **only** module in the
//! workspace that contains `unsafe` code.
//!
//! A [`MappedFile`] maps a finished segment file into the address space so
//! block fetches and scans decode straight out of the kernel page cache:
//! no `pread` into a fresh heap buffer, no copy at all for raw/fallback
//! blocks. The mapping is private and read-only.
//!
//! ## Safety argument (audited surface)
//!
//! All `unsafe` is confined to three small spots: the `mmap(2)` call, the
//! `munmap(2)` call in `Drop`, and the `slice::from_raw_parts` view. The
//! invariants that make them sound:
//!
//! * The mapping is `PROT_READ | MAP_PRIVATE` over a file the archive
//!   layer treats as immutable once `SegmentWriter::finish` has fsynced
//!   it — segments are written to a temp name and renamed into place, and
//!   are never modified afterwards, only unlinked. Per POSIX, an unlinked
//!   file's pages stay valid for as long as a mapping references them, so
//!   pinned readers survive compaction retiring their segment.
//! * `len` is captured from the same `File` metadata used to build the
//!   mapping and never changes, so the slice never outgrows the mapping.
//! * The pointer is non-null (checked against `MAP_FAILED`), the length
//!   is non-zero (zero-length files take the empty-slice path and never
//!   call `mmap`), and the mapping lives until `Drop`, so the borrow
//!   rules of the `&[u8]` view hold for the lifetime of `&self`.
//! * A file truncated *by an external process* while mapped can raise
//!   `SIGBUS` on access — the same failure class as hardware loss under
//!   `pread`. The archive never truncates live segments; operators who
//!   cannot rule out external truncation can select
//!   [`crate::ReadMode::Pread`].
//!
//! Everything else in the workspace is `#[forbid(unsafe_code)]` /
//! `#[deny(unsafe_code)]`; this module opts out via the narrowest
//! possible `allow`.
#![allow(unsafe_code)]

use std::fs::File;
use std::io;

/// A read-only, private memory mapping of a whole file.
///
/// Available on unix targets with the `mmap` cargo feature (on by
/// default); elsewhere [`MappedFile::map`] returns
/// [`io::ErrorKind::Unsupported`] and callers fall back to
/// [`crate::positioned::PositionedFile`].
#[derive(Debug)]
pub struct MappedFile {
    #[cfg(all(unix, feature = "mmap"))]
    inner: imp::Mapping,
    /// Mapped length in bytes (0 for an empty file, which has no mapping).
    len: usize,
}

// SAFETY: the mapping is read-only and `MappedFile` hands out only shared
// `&[u8]` views; concurrent readers on any thread observe the same
// immutable bytes, and unmapping requires `&mut self` (Drop).
#[cfg(all(unix, feature = "mmap"))]
unsafe impl Send for MappedFile {}
#[cfg(all(unix, feature = "mmap"))]
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Whether this build can actually map files (unix with the `mmap`
    /// feature). When false, [`MappedFile::map`] always errors and
    /// [`crate::ReadMode::Auto`] resolves to `pread`.
    pub const fn supported() -> bool {
        cfg!(all(unix, feature = "mmap"))
    }

    /// Map `file` read-only in its entirety. `len` must be the file's
    /// current size in bytes (callers have just stat'ed it).
    pub fn map(file: &File, len: u64) -> io::Result<MappedFile> {
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty file needs no
            // mapping at all.
            return Ok(MappedFile {
                #[cfg(all(unix, feature = "mmap"))]
                inner: imp::Mapping::empty(),
                len: 0,
            });
        }
        #[cfg(all(unix, feature = "mmap"))]
        {
            Ok(MappedFile {
                inner: imp::Mapping::new(file, len)?,
                len,
            })
        }
        #[cfg(not(all(unix, feature = "mmap")))]
        {
            let _ = file;
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "memory-mapped reads need a unix target with the `mmap` feature",
            ))
        }
    }

    /// The mapped bytes. Empty for a zero-length file.
    pub fn as_slice(&self) -> &[u8] {
        #[cfg(all(unix, feature = "mmap"))]
        {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: `inner.ptr` is a live PROT_READ mapping of exactly
            // `self.len` bytes (see module docs); it is unmapped only in
            // Drop, after every `&self` borrow has ended.
            unsafe { std::slice::from_raw_parts(self.inner.ptr as *const u8, self.len) }
        }
        #[cfg(not(all(unix, feature = "mmap")))]
        {
            &[]
        }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (zero-length file).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(all(unix, feature = "mmap"))]
mod imp {
    //! The raw `mmap`/`munmap` FFI. The build has no `libc` crate (the
    //! workspace vendors all dependencies), so the two syscall wrappers
    //! are declared here directly against the platform C library.

    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned mapping; unmapped on drop.
    #[derive(Debug)]
    pub(super) struct Mapping {
        pub(super) ptr: *mut c_void,
        len: usize,
    }

    impl Mapping {
        /// Placeholder for a zero-length file: null pointer, never passed
        /// to `munmap` (len 0 skips the Drop call).
        pub(super) fn empty() -> Mapping {
            Mapping {
                ptr: std::ptr::null_mut(),
                len: 0,
            }
        }

        pub(super) fn new(file: &File, len: usize) -> io::Result<Mapping> {
            // SAFETY: fd is a valid open file descriptor borrowed for the
            // duration of the call; addr=NULL lets the kernel choose the
            // placement; len > 0 (checked by the caller). The kernel
            // validates everything else and reports failure as MAP_FAILED.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            if self.len > 0 {
                // SAFETY: (ptr, len) is exactly what mmap returned and has
                // not been unmapped before; failure is unrecoverable in a
                // destructor and is deliberately ignored.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "pbc-archive-mmap-{}-{tag}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn maps_whole_file_contents() {
        if !MappedFile::supported() {
            return;
        }
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(&payload).unwrap();
        }
        let file = File::open(&path).unwrap();
        let map = MappedFile::map(&file, payload.len() as u64).unwrap();
        assert_eq!(map.as_slice(), payload.as_slice());
        assert_eq!(map.len(), payload.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let map = MappedFile::map(&file, 0).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn mapping_survives_unlink() {
        if !MappedFile::supported() {
            return;
        }
        let path = temp_path("unlink");
        std::fs::write(&path, b"still readable after unlink").unwrap();
        let file = File::open(&path).unwrap();
        let map = MappedFile::map(&file, 27).unwrap();
        std::fs::remove_file(&path).unwrap();
        drop(file);
        assert_eq!(map.as_slice(), b"still readable after unlink");
    }

    #[test]
    fn concurrent_readers_share_one_mapping() {
        if !MappedFile::supported() {
            return;
        }
        use std::sync::Arc;
        let path = temp_path("threads");
        let payload: Vec<u8> = (0..64 * 1024).map(|i| (i % 241) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let file = File::open(&path).unwrap();
        let map = Arc::new(MappedFile::map(&file, payload.len() as u64).unwrap());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let map = Arc::clone(&map);
                let payload = payload.clone();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let offset = ((t * 7919 + i * 4099) % (64 * 1024 - 128)) as usize;
                        assert_eq!(
                            &map.as_slice()[offset..offset + 128],
                            &payload[offset..offset + 128]
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }
}
