//! Positional file reads: `read_exact_at` behind a small platform shim.
//!
//! Cold-segment point lookups are the hot read path of the tiered store, and
//! many threads share one [`crate::SegmentReader`]. A `Mutex<File>` + seek
//! serializes them on a single cursor; on unix the kernel offers `pread`,
//! which needs no cursor and therefore no lock. [`PositionedFile`] uses it
//! where available and keeps the mutexed seek-and-read only as the portable
//! fallback.

use std::fs::File;
use std::io;
#[cfg(not(unix))]
use std::io::{Read, Seek, SeekFrom};
#[cfg(not(unix))]
use std::sync::Mutex;

/// A read-only file supporting lock-free positional reads on unix, with a
/// mutex-guarded seek fallback elsewhere. All methods take `&self`.
#[derive(Debug)]
pub struct PositionedFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl PositionedFile {
    /// Wrap an open file handle. The handle's cursor position is ignored on
    /// unix and clobbered by every read on the fallback path.
    pub fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            PositionedFile { file }
        }
        #[cfg(not(unix))]
        {
            PositionedFile {
                file: Mutex::new(file),
            }
        }
    }

    /// Fill `buf` from the byte range starting at `offset`, independent of
    /// (and, on unix, without touching) the file cursor.
    pub fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        #[cfg(unix)]
        {
            std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
        }
        #[cfg(not(unix))]
        {
            let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn reads_are_independent_of_each_other() {
        let path = std::env::temp_dir().join(format!(
            "pbc-archive-positioned-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(b"0123456789abcdef").unwrap();
        }
        let file = PositionedFile::new(File::open(&path).unwrap());
        let mut a = [0u8; 4];
        let mut b = [0u8; 4];
        file.read_exact_at(&mut a, 10).unwrap();
        file.read_exact_at(&mut b, 0).unwrap();
        assert_eq!(&a, b"abcd");
        assert_eq!(&b, b"0123");
        assert!(file.read_exact_at(&mut a, 14).is_err(), "past-EOF errors");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_readers_see_consistent_bytes() {
        use std::sync::Arc;
        let path = std::env::temp_dir().join(format!(
            "pbc-archive-positioned-threads-{}.bin",
            std::process::id()
        ));
        let payload: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let file = Arc::new(PositionedFile::new(File::open(&path).unwrap()));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let file = Arc::clone(&file);
                let payload = payload.clone();
                std::thread::spawn(move || {
                    let mut buf = [0u8; 128];
                    for i in 0..200u64 {
                        let offset = ((t * 7919 + i * 4099) % (64 * 1024 - 128)) as usize;
                        file.read_exact_at(&mut buf, offset as u64).unwrap();
                        assert_eq!(&buf[..], &payload[offset..offset + 128]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }
}
