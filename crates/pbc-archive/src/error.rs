//! Typed errors for the segment format.

use std::fmt;
use std::io;

use pbc_codecs::CodecError;
use pbc_core::PbcError;

/// Everything that can go wrong writing or reading a segment.
#[derive(Debug)]
pub enum ArchiveError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file does not start (or end) with the segment magic.
    BadMagic {
        /// Which magic was wrong ("header" or "trailer").
        location: &'static str,
        /// The bytes actually found.
        found: [u8; 8],
    },
    /// The segment was written by an incompatible format version.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u16,
        /// Highest version this build understands.
        supported: u16,
    },
    /// The file ends before a structure it promises is complete.
    Truncated {
        /// Which structure was cut short.
        context: &'static str,
    },
    /// A checksum did not match the stored bytes.
    CrcMismatch {
        /// What was being verified ("header", "block index", "block").
        what: &'static str,
        /// Block number for block checksums, 0 otherwise.
        index: usize,
        /// Checksum recorded in the file.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// A structure decoded to something impossible.
    Corrupt {
        /// Description of the inconsistency.
        context: String,
    },
    /// The block codec id is not one this build knows.
    UnknownCodec {
        /// The id found in the header.
        id: u8,
    },
    /// A record ordinal past the end of the segment.
    RecordOutOfRange {
        /// Requested ordinal.
        index: u64,
        /// Records in the segment.
        count: u64,
    },
    /// `get(key)` on a segment whose records were not appended in key order.
    UnsortedKeys,
    /// PBC dictionary or record decoding failed.
    Pbc(PbcError),
    /// A baseline codec failed to decode a block or value.
    Codec(CodecError),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "segment i/o failed: {e}"),
            ArchiveError::BadMagic { location, found } => {
                write!(f, "bad {location} magic: {found:02x?}")
            }
            ArchiveError::UnsupportedVersion { found, supported } => write!(
                f,
                "segment format version {found} not supported (max {supported})"
            ),
            ArchiveError::Truncated { context } => write!(f, "segment truncated in {context}"),
            ArchiveError::CrcMismatch {
                what,
                index,
                stored,
                computed,
            } => write!(
                f,
                "{what} {index} checksum mismatch: stored {stored:08x}, computed {computed:08x}"
            ),
            ArchiveError::Corrupt { context } => write!(f, "segment corrupt: {context}"),
            ArchiveError::UnknownCodec { id } => write!(f, "unknown block codec id {id}"),
            ArchiveError::RecordOutOfRange { index, count } => {
                write!(f, "record {index} out of range (segment holds {count})")
            }
            ArchiveError::UnsortedKeys => {
                write!(
                    f,
                    "key lookup requires records appended in sorted key order"
                )
            }
            ArchiveError::Pbc(e) => write!(f, "pbc decode failed: {e}"),
            ArchiveError::Codec(e) => write!(f, "block codec failed: {e}"),
        }
    }
}

impl std::error::Error for ArchiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveError::Io(e) => Some(e),
            ArchiveError::Pbc(e) => Some(e),
            ArchiveError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArchiveError {
    fn from(e: io::Error) -> Self {
        ArchiveError::Io(e)
    }
}

impl From<PbcError> for ArchiveError {
    fn from(e: PbcError) -> Self {
        ArchiveError::Pbc(e)
    }
}

impl From<CodecError> for ArchiveError {
    fn from(e: CodecError) -> Self {
        ArchiveError::Codec(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ArchiveError>;
