//! Reading segments back: open, verify, random access, scans.

use std::borrow::Cow;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{BlockCodec, Entry};
use crate::error::{ArchiveError, Result};
use crate::format::{
    crc32, decode_index, decode_trailer, BlockMeta, Header, FLAG_SORTED_KEYS, TRAILER_LEN,
};
use crate::mmap::MappedFile;
use crate::obs::ReaderObs;
use crate::positioned::PositionedFile;

/// How a [`SegmentReader`] fetches bytes from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadMode {
    /// Memory-map the segment when the platform/build supports it
    /// ([`MappedFile::supported`]), otherwise fall back to `pread`.
    #[default]
    Auto,
    /// Require the mmap backend; [`SegmentReader::open_with`] errors where
    /// it is unavailable (non-unix targets or the `mmap` feature off).
    Mmap,
    /// Always use the `pread` backend ([`PositionedFile`]), even where
    /// mmap is available.
    Pread,
}

/// Where block bytes come from: a positional-read file handle (every
/// fetch copies into a fresh buffer) or a page-cache mapping (fetches
/// borrow the mapped bytes — zero copies).
enum BlockSource {
    Pread(PositionedFile),
    Mapped(MappedFile),
}

impl BlockSource {
    /// Fetch `len` bytes at `offset`. Borrowed straight from the mapping
    /// on the mmap backend; copied into an owned buffer on pread.
    ///
    /// Callers validate ranges against the file length captured at open,
    /// so an out-of-bounds request means the file shrank underneath us —
    /// reported as [`ArchiveError::Truncated`] with the caller's context.
    fn bytes_at(&self, offset: u64, len: usize, context: &'static str) -> Result<Cow<'_, [u8]>> {
        match self {
            BlockSource::Pread(file) => {
                let mut buf = vec![0u8; len];
                file.read_exact_at(&mut buf, offset)?;
                Ok(Cow::Owned(buf))
            }
            BlockSource::Mapped(map) => usize::try_from(offset)
                .ok()
                .and_then(|start| start.checked_add(len).map(|end| (start, end)))
                .and_then(|(start, end)| map.as_slice().get(start..end))
                .map(Cow::Borrowed)
                .ok_or(ArchiveError::Truncated { context }),
        }
    }

    fn mode(&self) -> ReadMode {
        match self {
            BlockSource::Pread(_) => ReadMode::Pread,
            BlockSource::Mapped(_) => ReadMode::Mmap,
        }
    }
}

/// A reopened segment. All methods take `&self`; block reads go through
/// either a read-only mmap (unix default — fetches borrow the page-cache
/// mapping with zero copies) or [`PositionedFile`] (`pread`), so
/// concurrent readers sharing one `SegmentReader` never serialize on a
/// file cursor. Pick the backend with [`SegmentReader::open_with`].
///
/// The `Debug` form reports geometry only (no block payloads).
pub struct SegmentReader {
    path: PathBuf,
    source: BlockSource,
    header: Header,
    codec: BlockCodec,
    /// Shared instance backing the per-block raw-fallback path.
    raw_codec: BlockCodec,
    blocks: Vec<BlockMeta>,
    /// `starts[b]` = global ordinal of block `b`'s first record.
    starts: Vec<u64>,
    record_count: u64,
    /// On-disk file size in bytes, captured at open.
    file_len: u64,
    /// One bit per block, set once that block's payload CRC has been
    /// verified; later fetches of the same (immutable) block skip the
    /// checksum pass.
    verified: Vec<AtomicU64>,
    /// Decode instrumentation; no-op unless [`SegmentReader::set_obs`]
    /// attached real handles.
    obs: ReaderObs,
}

impl std::fmt::Debug for SegmentReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentReader")
            .field("path", &self.path)
            .field("codec", &self.codec.name())
            .field("backend", &self.source.mode())
            .field("blocks", &self.blocks.len())
            .field("records", &self.record_count)
            .finish()
    }
}

impl SegmentReader {
    /// Open and verify a segment with [`ReadMode::Auto`] backend
    /// selection: header magic/version/CRC, trailer magic, index CRC.
    /// Block payloads are verified lazily as they are read.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(path, ReadMode::Auto)
    }

    /// [`SegmentReader::open`] with an explicit backend choice.
    pub fn open_with(path: impl AsRef<Path>, mode: ReadMode) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        let source = match mode {
            ReadMode::Pread => BlockSource::Pread(PositionedFile::new(file)),
            ReadMode::Mmap => BlockSource::Mapped(MappedFile::map(&file, file_len)?),
            // Auto: mmap wherever it works, pread everywhere else (non-unix
            // targets, the `mmap` feature off, or a filesystem refusing the
            // mapping).
            ReadMode::Auto => match MappedFile::map(&file, file_len) {
                Ok(map) => BlockSource::Mapped(map),
                Err(_) => BlockSource::Pread(PositionedFile::new(file)),
            },
        };

        // Header: magic(8) + version(2) + codec(1) + flags(1) + varint
        // artifact length (≤10) + the artifacts themselves + CRC. One
        // bounded prefix read covers the fixed part and, in practice, the
        // whole header; only a header whose trained artifacts outgrow the
        // prefix costs a second fetch.
        const HEADER_PREFIX: u64 = 16 * 1024;
        let prefix_len = file_len.min(HEADER_PREFIX) as usize;
        if prefix_len < 13 {
            return Err(ArchiveError::Truncated { context: "header" });
        }
        let prefix = source.bytes_at(0, prefix_len, "header")?;
        let (artifact_len, artifacts_start) = pbc_codecs::varint::read_usize(&prefix, 12)
            .map_err(|_| ArchiveError::Truncated { context: "header" })?;
        let header_len = artifacts_start
            .checked_add(artifact_len)
            .and_then(|n| n.checked_add(4))
            .filter(|&n| (n as u64) <= file_len)
            .ok_or(ArchiveError::Truncated { context: "header" })?;
        let header_bytes: Cow<'_, [u8]> = if header_len <= prefix.len() {
            Cow::Borrowed(&prefix[..header_len])
        } else {
            source.bytes_at(0, header_len, "header")?
        };
        let (header, _) = Header::decode(&header_bytes)?;
        let codec = BlockCodec::from_parts(header.codec_id, &header.artifacts)?;
        drop(header_bytes);
        drop(prefix);

        // Trailer and index.
        if file_len < (header_len + TRAILER_LEN) as u64 {
            return Err(ArchiveError::Truncated { context: "trailer" });
        }
        let trailer_bytes =
            source.bytes_at(file_len - TRAILER_LEN as u64, TRAILER_LEN, "trailer")?;
        let trailer: &[u8; TRAILER_LEN] = trailer_bytes
            .as_ref()
            .try_into()
            .map_err(|_| ArchiveError::Truncated { context: "trailer" })?;
        let (index_offset, index_len, index_crc) = decode_trailer(trailer)?;
        drop(trailer_bytes);
        index_offset
            .checked_add(index_len as u64)
            .and_then(|end| end.checked_add(TRAILER_LEN as u64))
            .filter(|&total| total <= file_len)
            .ok_or(ArchiveError::Truncated {
                context: "block index",
            })?;
        let index_bytes = source.bytes_at(index_offset, index_len as usize, "block index")?;
        let computed = crc32(&index_bytes);
        if computed != index_crc {
            return Err(ArchiveError::CrcMismatch {
                what: "block index",
                index: 0,
                stored: index_crc,
                computed,
            });
        }
        let blocks = decode_index(&index_bytes, header.version)?;
        drop(index_bytes);

        // Validate block geometry against the file before trusting offsets.
        let mut starts = Vec::with_capacity(blocks.len());
        let mut record_count = 0u64;
        for (i, meta) in blocks.iter().enumerate() {
            let end = meta.file_offset.checked_add(meta.comp_len);
            if end.is_none_or(|e| e > index_offset) {
                return Err(ArchiveError::Corrupt {
                    context: format!("block {i} extends past the index region"),
                });
            }
            starts.push(record_count);
            record_count = record_count.checked_add(meta.record_count).ok_or_else(|| {
                ArchiveError::Corrupt {
                    context: "record count overflow".into(),
                }
            })?;
        }
        let verified = (0..blocks.len().div_ceil(64))
            .map(|_| AtomicU64::new(0))
            .collect();

        Ok(SegmentReader {
            path,
            source,
            header,
            codec,
            raw_codec: BlockCodec::Raw,
            blocks,
            starts,
            record_count,
            file_len,
            verified,
            obs: ReaderObs::noop(),
        })
    }

    /// Which backend this reader resolved to: [`ReadMode::Mmap`] or
    /// [`ReadMode::Pread`] (never [`ReadMode::Auto`]).
    pub fn read_mode(&self) -> ReadMode {
        self.source.mode()
    }

    /// Attach decode instrumentation (blocks-decoded counter + decode
    /// latency histogram). Call before the reader is shared; typically
    /// right after [`SegmentReader::open`].
    pub fn set_obs(&mut self, obs: ReaderObs) {
        self.obs = obs;
    }

    /// Where this segment lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total records across all blocks.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Total flagged records across all blocks (see
    /// [`crate::SegmentWriter::append_flagged`]) — always 0 for v1 files,
    /// which predate per-block flagged counts.
    pub fn flagged_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.flagged_count).sum()
    }

    /// Flagged records in block `block`.
    pub fn block_flagged_count(&self, block: usize) -> u64 {
        self.blocks.get(block).map_or(0, |b| b.flagged_count)
    }

    /// Smallest key across all blocks (`None` for an empty segment).
    /// Footer-only: no block is decoded.
    pub fn min_key(&self) -> Option<&[u8]> {
        self.blocks.iter().map(|b| b.min_key.as_slice()).min()
    }

    /// Largest key across all blocks (`None` for an empty segment).
    pub fn max_key(&self) -> Option<&[u8]> {
        self.blocks.iter().map(|b| b.max_key.as_slice()).max()
    }

    /// On-disk file size in bytes, captured when the segment was opened —
    /// so stat backfills never have to re-stat the file (a transient
    /// metadata error must not be silently recorded as a 0-byte segment).
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Total serialized (uncompressed) payload bytes across all blocks.
    pub fn raw_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.raw_len).sum()
    }

    /// Total compressed block bytes (excluding header/index).
    pub fn compressed_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.comp_len).sum()
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Name of the codec the segment was written with.
    pub fn codec_name(&self) -> &'static str {
        self.codec.name()
    }

    /// Whether the writer observed non-decreasing keys (enables [`Self::get`]).
    pub fn is_sorted(&self) -> bool {
        self.header.flags & FLAG_SORTED_KEYS != 0
    }

    /// Whether point lookups avoid whole-block decompression.
    pub fn is_per_record(&self) -> bool {
        self.codec.is_per_record()
    }

    /// Whether block `block`'s payload CRC has already been verified by a
    /// previous fetch through this reader.
    fn crc_already_verified(&self, block: usize) -> bool {
        self.verified[block / 64].load(Ordering::Relaxed) & (1u64 << (block % 64)) != 0
    }

    /// Fetch the compressed bytes of one block: borrowed from the mapping
    /// on the mmap backend (zero copy), copied into an owned buffer on
    /// pread. The payload CRC is verified on the **first** fetch of each
    /// block and skipped afterwards — sound because segment files are
    /// immutable once written (they are only ever unlinked, never
    /// modified), so a block that checked out once cannot change.
    pub fn block_bytes(&self, block: usize) -> Result<Cow<'_, [u8]>> {
        let meta = self
            .blocks
            .get(block)
            .ok_or_else(|| ArchiveError::Corrupt {
                context: format!("block {block} out of range ({} blocks)", self.blocks.len()),
            })?;
        let bytes = self
            .source
            .bytes_at(meta.file_offset, meta.comp_len as usize, "block")?;
        if let Cow::Owned(copied) = &bytes {
            self.obs.bytes_copied.add(copied.len() as u64);
        }
        if !self.crc_already_verified(block) {
            let computed = crc32(&bytes);
            if computed != meta.crc {
                return Err(ArchiveError::CrcMismatch {
                    what: "block",
                    index: block,
                    stored: meta.crc,
                    computed,
                });
            }
            self.verified[block / 64].fetch_or(1u64 << (block % 64), Ordering::Relaxed);
        }
        Ok(bytes)
    }

    /// The codec block `block` actually used: the segment codec, or the
    /// raw fallback stamped in its index entry.
    fn block_codec(&self, block: usize) -> Result<&BlockCodec> {
        let id = self.blocks[block].codec_id;
        if id == self.codec.id() {
            Ok(&self.codec)
        } else if id == crate::codec::codec_id::RAW {
            Ok(&self.raw_codec)
        } else {
            Err(ArchiveError::Corrupt {
                context: format!(
                    "block {block} claims codec id {id}, segment codec is {}",
                    self.codec.id()
                ),
            })
        }
    }

    /// Decompress a whole block into its entries.
    pub fn read_block(&self, block: usize) -> Result<Vec<Entry>> {
        let bytes = self.block_bytes(block)?;
        let timer = self.obs.decode_ns.start_timer();
        let entries = self
            .block_codec(block)?
            .decompress_block(&bytes, self.blocks[block].record_count as usize);
        timer.observe();
        self.obs.blocks_decoded.inc();
        entries
    }

    /// Which block holds global record `ordinal` (binary search).
    fn block_of(&self, ordinal: u64) -> Result<usize> {
        if ordinal >= self.record_count {
            return Err(ArchiveError::RecordOutOfRange {
                index: ordinal,
                count: self.record_count,
            });
        }
        Ok(self.starts.partition_point(|&start| start <= ordinal) - 1)
    }

    /// Fetch the `(key, value)` entry with global ordinal `i`. O(log blocks)
    /// to locate, then a single-block decode (single-record for per-record
    /// codecs).
    pub fn get_entry(&self, i: u64) -> Result<Entry> {
        let block = self.block_of(i)?;
        let within = (i - self.starts[block]) as usize;
        let bytes = self.block_bytes(block)?;
        self.block_codec(block)?
            .entry_at(&bytes, within, self.blocks[block].record_count as usize)
    }

    /// Fetch just the value bytes of record `i`.
    pub fn get_record(&self, i: u64) -> Result<Vec<u8>> {
        self.get_entry(i).map(|(_, value)| value)
    }

    /// The contiguous range of blocks whose `[min_key, max_key]` interval
    /// contains `key` — the blocks a point lookup must inspect. Requires a
    /// sorted segment. External block caches use this to fetch and cache
    /// exactly the blocks a `get` would touch.
    pub fn candidate_blocks_for_key(&self, key: &[u8]) -> Result<std::ops::Range<usize>> {
        self.candidate_blocks_for_range(key, Some(key))
    }

    /// The contiguous range of blocks whose `[min_key, max_key]` footer
    /// intervals intersect the closed key interval `[min, max]`
    /// (`max = None` means unbounded above) — one binary search per bound
    /// over the footer index, no block decoded. Requires a sorted segment.
    ///
    /// This is the single bounds helper behind both
    /// [`SegmentReader::candidate_blocks_for_key`] (a point lookup is the
    /// degenerate range `[key, key]`) and [`SegmentReader::scan_range`];
    /// external block caches use it to fetch exactly the blocks a bounded
    /// scan will touch.
    pub fn candidate_blocks_for_range(
        &self,
        min: &[u8],
        max: Option<&[u8]>,
    ) -> Result<std::ops::Range<usize>> {
        if !self.is_sorted() {
            return Err(ArchiveError::UnsortedKeys);
        }
        let lo = self
            .blocks
            .partition_point(|meta| meta.max_key.as_slice() < min);
        let hi = match max {
            Some(max) => self
                .blocks
                .partition_point(|meta| meta.min_key.as_slice() <= max),
            None => self.blocks.len(),
        };
        // An inverted interval (min > max) intersects nothing.
        Ok(lo..hi.max(lo))
    }

    /// Key lookup over a sorted segment: binary-search the block index by
    /// min/max key, then search inside the single candidate block. Returns
    /// the value of the **last** entry with the key (later appends win).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        // Candidate blocks form the contiguous range whose [min, max] key
        // interval contains the key; duplicates may straddle block borders,
        // so for last-wins semantics scan the range back to front.
        for block in self.candidate_blocks_for_key(key)?.rev() {
            let bytes = self.block_bytes(block)?;
            let hit = self.block_codec(block)?.find_by_key(
                &bytes,
                key,
                self.blocks[block].record_count as usize,
                true,
            )?;
            if hit.is_some() {
                return Ok(hit);
            }
        }
        Ok(None)
    }

    /// Iterate every entry in storage order, decoding blocks lazily.
    pub fn scan(&self) -> Scan<'_> {
        Scan {
            reader: self,
            block: 0,
            entries: Vec::new(),
            next: 0,
            failed: false,
        }
    }

    /// Stream the entries of a **sorted** segment whose keys fall in the
    /// closed interval `[start, end]` (`end = None` means unbounded
    /// above), in key order.
    ///
    /// The scan seeks via the footer index
    /// ([`SegmentReader::candidate_blocks_for_range`]): only blocks whose
    /// `[min_key, max_key]` interval intersects the requested range are
    /// ever decoded, one block at a time — a narrow range over a large
    /// segment touches one or two blocks, never the whole file. Within the
    /// first candidate block the lower bound is located by binary search;
    /// the scan ends as soon as a key passes `end`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pbc_archive::{SegmentConfig, SegmentReader, SegmentWriter};
    ///
    /// let path = std::env::temp_dir().join(format!("pbc-scan-doc-{}.seg", std::process::id()));
    /// let mut writer = SegmentWriter::create(&path, SegmentConfig::default()).unwrap();
    /// for i in 0..1_000u32 {
    ///     writer
    ///         .append(format!("k:{i:05}").as_bytes(), format!("value-{i}").as_bytes())
    ///         .unwrap();
    /// }
    /// writer.finish().unwrap();
    ///
    /// let reader = SegmentReader::open(&path).unwrap();
    /// // A bounded scan yields exactly the keys inside [start, end], in order.
    /// let rows: Vec<_> = reader
    ///     .scan_range(b"k:00100", Some(b"k:00104"))
    ///     .unwrap()
    ///     .map(|entry| entry.unwrap())
    ///     .collect();
    /// assert_eq!(rows.len(), 5);
    /// assert_eq!(rows[0].0, b"k:00100".to_vec());
    /// assert_eq!(rows[4].1, b"value-104".to_vec());
    /// // An unbounded tail: everything from the start key on.
    /// assert_eq!(reader.scan_range(b"k:00990", None).unwrap().count(), 10);
    /// std::fs::remove_file(&path).unwrap();
    /// ```
    pub fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<RangeScan<'_>> {
        let blocks = self.candidate_blocks_for_range(start, end)?;
        Ok(RangeScan {
            reader: self,
            block: blocks.start,
            end_block: blocks.end,
            start: start.to_vec(),
            end: end.map(|e| e.to_vec()),
            entries: Vec::new(),
            next: 0,
            failed: false,
        })
    }
}

/// Streaming iterator over a segment's entries; see [`SegmentReader::scan`].
pub struct Scan<'a> {
    reader: &'a SegmentReader,
    block: usize,
    entries: Vec<Entry>,
    next: usize,
    failed: bool,
}

impl Iterator for Scan<'_> {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if self.next < self.entries.len() {
                let entry = std::mem::take(&mut self.entries[self.next]);
                self.next += 1;
                return Some(Ok(entry));
            }
            if self.block >= self.reader.block_count() {
                return None;
            }
            match self.reader.read_block(self.block) {
                Ok(entries) => {
                    self.block += 1;
                    self.entries = entries;
                    self.next = 0;
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Bounded streaming iterator over a sorted segment's entries; see
/// [`SegmentReader::scan_range`]. Decodes only the candidate blocks the
/// footer index selected, one at a time, and stops at the upper bound.
pub struct RangeScan<'a> {
    reader: &'a SegmentReader,
    /// Next candidate block to decode.
    block: usize,
    /// One past the last candidate block.
    end_block: usize,
    /// Inclusive lower key bound (applied inside the first decoded block).
    start: Vec<u8>,
    /// Inclusive upper key bound; `None` = unbounded above.
    end: Option<Vec<u8>>,
    entries: Vec<Entry>,
    next: usize,
    failed: bool,
}

impl Iterator for RangeScan<'_> {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if self.next < self.entries.len() {
                let entry = std::mem::take(&mut self.entries[self.next]);
                self.next += 1;
                if let Some(end) = &self.end {
                    if entry.0.as_slice() > end.as_slice() {
                        // Keys are sorted: nothing further can qualify.
                        self.block = self.end_block;
                        self.next = self.entries.len();
                        return None;
                    }
                }
                return Some(Ok(entry));
            }
            if self.block >= self.end_block {
                return None;
            }
            match self.reader.read_block(self.block) {
                Ok(entries) => {
                    self.block += 1;
                    // Only the first candidate block can hold keys below
                    // the lower bound; for later blocks this skip is 0.
                    self.next =
                        entries.partition_point(|(k, _)| k.as_slice() < self.start.as_slice());
                    self.entries = entries;
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}
