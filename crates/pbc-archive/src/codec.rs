//! Per-block codecs: how a block of records becomes bytes and back.
//!
//! A segment commits to one [`BlockCodec`] at write time; its trained
//! artifacts (PBC pattern dictionary, FSST symbol table, Zstd dictionary)
//! are serialized once into the segment header, so reopening a segment
//! needs no retraining.
//!
//! Two block shapes exist:
//!
//! * **Whole-block** codecs (`Raw`, `Zstd`) serialize all entries into one
//!   payload and compress it as a unit — best ratio, but a point lookup
//!   decompresses the whole block.
//! * **Per-record** codecs (`Pbc`, `PbcF`, `Fsst`) compress each value
//!   independently inside the block, so a point lookup walks entry headers
//!   and decodes only the requested value (the paper's random-access
//!   property, Figure 5).

use std::sync::Arc;

use pbc_codecs::fsst::FsstCodec;
use pbc_codecs::traits::DictCodec;
use pbc_codecs::varint;
use pbc_codecs::zstdlike::ZstdLike;
use pbc_codecs::Dictionary;
use pbc_core::{PatternDictionary, PbcCompressor, PbcConfig};

use crate::error::{ArchiveError, Result};

/// A key/value entry stored in a block. Keyless records use an empty key.
pub type Entry = (Vec<u8>, Vec<u8>);

/// Codec ids as stamped into the segment header. Stable: new codecs append,
/// existing ids never change meaning.
pub mod codec_id {
    /// Entries stored verbatim (also the per-block fallback id).
    pub const RAW: u8 = 0;
    /// Plain PBC with a trained pattern dictionary.
    pub const PBC: u8 = 1;
    /// PBC with FSST-compressed residuals.
    pub const PBC_F: u8 = 2;
    /// Whole-block Zstd-like with a trained dictionary.
    pub const ZSTD: u8 = 3;
    /// Per-record FSST symbol-table compression.
    pub const FSST: u8 = 4;
}

/// Which codec a [`crate::SegmentWriter`] should use.
#[derive(Debug, Clone, Default)]
pub enum CodecSpec {
    /// Train every candidate on the first block and keep whichever
    /// trial-compresses it smallest.
    #[default]
    Auto,
    /// Store blocks uncompressed.
    Raw,
    /// Plain PBC, trained on the first block.
    Pbc(PbcConfig),
    /// PBC with FSST residuals, trained on the first block.
    PbcF(PbcConfig),
    /// Zstd-like with a dictionary trained on the first block.
    Zstd {
        /// Compression level passed to the codec.
        level: i32,
    },
    /// FSST symbol table trained on the first block.
    Fsst,
    /// Use an already-trained codec as-is (no first-block training). This
    /// is the paper's "train offline, ship the dictionary to instances"
    /// flow: many writers can share one trained codec.
    Pretrained(BlockCodec),
}

/// A trained, ready-to-use block codec.
#[derive(Debug, Clone)]
pub enum BlockCodec {
    /// Entries stored verbatim.
    Raw,
    /// Per-record PBC (plain or FSST residuals — `fsst` distinguishes them
    /// for the header codec id).
    Pbc {
        /// The trained compressor, shared between writer workers.
        compressor: Arc<PbcCompressor>,
        /// Whether residuals are FSST-compressed (`PBC_F`).
        fsst: bool,
    },
    /// Whole-block Zstd-like with a shared trained dictionary.
    Zstd {
        /// The compressor configured at the chosen level.
        codec: ZstdLike,
        /// The trained dictionary, embedded in the segment header.
        dictionary: Arc<Vec<u8>>,
    },
    /// Per-record FSST.
    Fsst {
        /// The trained symbol table.
        codec: FsstCodec,
    },
}

impl BlockCodec {
    /// The header codec id.
    pub fn id(&self) -> u8 {
        match self {
            BlockCodec::Raw => codec_id::RAW,
            BlockCodec::Pbc { fsst: false, .. } => codec_id::PBC,
            BlockCodec::Pbc { fsst: true, .. } => codec_id::PBC_F,
            BlockCodec::Zstd { .. } => codec_id::ZSTD,
            BlockCodec::Fsst { .. } => codec_id::FSST,
        }
    }

    /// Name used in reports and summaries.
    pub fn name(&self) -> &'static str {
        match self {
            BlockCodec::Raw => "Raw",
            BlockCodec::Pbc { fsst: false, .. } => "PBC",
            BlockCodec::Pbc { fsst: true, .. } => "PBC_F",
            BlockCodec::Zstd { .. } => "Zstd(dict)",
            BlockCodec::Fsst { .. } => "FSST",
        }
    }

    /// Whether point lookups can decode a single record without
    /// decompressing the rest of its block.
    pub fn is_per_record(&self) -> bool {
        matches!(
            self,
            BlockCodec::Raw | BlockCodec::Pbc { .. } | BlockCodec::Fsst { .. }
        )
    }

    /// Serialize the trained artifacts for the segment header.
    pub fn artifacts(&self) -> Vec<u8> {
        match self {
            BlockCodec::Raw => Vec::new(),
            BlockCodec::Pbc { compressor, fsst } => {
                let dict = compressor.dictionary().serialize();
                if !*fsst {
                    return dict;
                }
                let mut out = Vec::with_capacity(dict.len() + 64);
                varint::write_usize(&mut out, dict.len());
                out.extend_from_slice(&dict);
                out.extend_from_slice(&fsst_table(compressor));
                out
            }
            BlockCodec::Zstd { codec, dictionary } => {
                let mut out = Vec::with_capacity(dictionary.len() + 8);
                varint::write_i64(&mut out, codec.level() as i64);
                varint::write_usize(&mut out, dictionary.len());
                out.extend_from_slice(dictionary);
                out
            }
            BlockCodec::Fsst { codec } => codec.serialize_table(),
        }
    }

    /// Rebuild a codec from a header codec id and its artifacts.
    pub fn from_parts(id: u8, artifacts: &[u8]) -> Result<Self> {
        match id {
            codec_id::RAW => Ok(BlockCodec::Raw),
            codec_id::PBC => {
                let dictionary = PatternDictionary::deserialize(artifacts)?;
                Ok(BlockCodec::Pbc {
                    compressor: Arc::new(PbcCompressor::from_dictionary(
                        dictionary,
                        &PbcConfig::default(),
                    )),
                    fsst: false,
                })
            }
            codec_id::PBC_F => {
                let (dict_len, pos) = varint::read_usize(artifacts, 0)?;
                let end = pos
                    .checked_add(dict_len)
                    .filter(|&e| e <= artifacts.len())
                    .ok_or(ArchiveError::Truncated {
                        context: "PBC_F artifacts",
                    })?;
                let dictionary = PatternDictionary::deserialize(&artifacts[pos..end])?;
                let (fsst, used) = FsstCodec::deserialize_table(&artifacts[end..])?;
                if end + used != artifacts.len() {
                    return Err(ArchiveError::Corrupt {
                        context: "trailing bytes after PBC_F artifacts".into(),
                    });
                }
                Ok(BlockCodec::Pbc {
                    compressor: Arc::new(
                        PbcCompressor::from_dictionary(dictionary, &PbcConfig::default())
                            .with_fsst(fsst),
                    ),
                    fsst: true,
                })
            }
            codec_id::ZSTD => {
                let (level, pos) = varint::read_i64(artifacts, 0)?;
                let (dict_len, pos) = varint::read_usize(artifacts, pos)?;
                let end = pos
                    .checked_add(dict_len)
                    .filter(|&e| e <= artifacts.len())
                    .ok_or(ArchiveError::Truncated {
                        context: "Zstd artifacts",
                    })?;
                Ok(BlockCodec::Zstd {
                    codec: ZstdLike::new(level as i32),
                    dictionary: Arc::new(artifacts[pos..end].to_vec()),
                })
            }
            codec_id::FSST => {
                let (codec, used) = FsstCodec::deserialize_table(artifacts)?;
                if used != artifacts.len() {
                    return Err(ArchiveError::Corrupt {
                        context: "trailing bytes after FSST artifacts".into(),
                    });
                }
                Ok(BlockCodec::Fsst { codec })
            }
            other => Err(ArchiveError::UnknownCodec { id: other }),
        }
    }

    /// Compress one block of entries.
    pub fn compress_block(&self, entries: &[Entry]) -> Vec<u8> {
        match self {
            BlockCodec::Raw => serialize_entries(entries),
            BlockCodec::Zstd { codec, dictionary } => {
                codec.compress_with_dict(&serialize_entries(entries), dictionary)
            }
            BlockCodec::Pbc { compressor, .. } => {
                compress_per_record(entries, |value| compressor.compress(value))
            }
            BlockCodec::Fsst { codec } => compress_per_record(entries, |value| codec.encode(value)),
        }
    }

    /// Decompress a whole block back into entries.
    pub fn decompress_block(&self, block: &[u8], record_count: usize) -> Result<Vec<Entry>> {
        let entries = match self {
            BlockCodec::Raw => deserialize_entries(block)?,
            BlockCodec::Zstd { codec, dictionary } => {
                deserialize_entries(&codec.decompress_with_dict(block, dictionary)?)?
            }
            BlockCodec::Pbc { compressor, .. } => {
                decompress_per_record(block, |value| Ok(compressor.decompress(value)?))?
            }
            BlockCodec::Fsst { codec } => {
                decompress_per_record(block, |value| Ok(codec.decode(value)?))?
            }
        };
        if entries.len() != record_count {
            return Err(ArchiveError::Corrupt {
                context: format!(
                    "block decoded to {} records, index promises {record_count}",
                    entries.len()
                ),
            });
        }
        Ok(entries)
    }

    /// Decode a single entry by its position inside the block. For
    /// per-record codecs this walks entry headers and decodes only the
    /// requested value; whole-block codecs fall back to full decompression.
    pub fn entry_at(&self, block: &[u8], idx: usize, record_count: usize) -> Result<Entry> {
        if !self.is_per_record() {
            let mut entries = self.decompress_block(block, record_count)?;
            if idx >= entries.len() {
                return Err(ArchiveError::Corrupt {
                    context: format!("entry {idx} out of block of {}", entries.len()),
                });
            }
            return Ok(entries.swap_remove(idx));
        }
        let mut pos = 0usize;
        for i in 0..=idx {
            let (key, next) = read_chunk(block, pos, "block entry key")?;
            let (value, next) = read_chunk(block, next, "block entry value")?;
            pos = next;
            if i == idx {
                return Ok((key.to_vec(), self.decode_value(value)?));
            }
        }
        unreachable!("loop returns at i == idx")
    }

    /// Decode one per-record-compressed value. Only meaningful for codecs
    /// where [`BlockCodec::is_per_record`] is true.
    fn decode_value(&self, value: &[u8]) -> Result<Vec<u8>> {
        match self {
            BlockCodec::Raw => Ok(value.to_vec()),
            BlockCodec::Pbc { compressor, .. } => Ok(compressor.decompress(value)?),
            BlockCodec::Fsst { codec } => Ok(codec.decode(value)?),
            BlockCodec::Zstd { .. } => unreachable!("whole-block codecs have no per-record values"),
        }
    }

    /// Find the **last** entry with `key` in the block, preserving the
    /// per-record random-access property: for per-record codecs only entry
    /// headers are walked and only the matching value is decoded.
    /// `sorted` enables early exit once keys pass the target.
    pub fn find_by_key(
        &self,
        block: &[u8],
        key: &[u8],
        record_count: usize,
        sorted: bool,
    ) -> Result<Option<Vec<u8>>> {
        if !self.is_per_record() {
            let entries = self.decompress_block(block, record_count)?;
            return Ok(entries
                .iter()
                .rev()
                .find(|(k, _)| k.as_slice() == key)
                .map(|(_, v)| v.clone()));
        }
        let mut pos = 0usize;
        let mut hit: Option<&[u8]> = None;
        while pos < block.len() {
            let (k, next) = read_chunk(block, pos, "block entry key")?;
            let (value, next) = read_chunk(block, next, "block entry value")?;
            pos = next;
            if k == key {
                hit = Some(value); // keep walking: last entry wins
            } else if sorted && k > key {
                break;
            }
        }
        hit.map(|value| self.decode_value(value)).transpose()
    }
}

/// Serialize entries into the whole-block payload shape.
pub fn serialize_entries(entries: &[Entry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(serialized_len(entries));
    for (key, value) in entries {
        varint::write_usize(&mut out, key.len());
        out.extend_from_slice(key);
        varint::write_usize(&mut out, value.len());
        out.extend_from_slice(value);
    }
    out
}

/// Exact byte length [`serialize_entries`] will produce.
pub fn serialized_len(entries: &[Entry]) -> usize {
    entries
        .iter()
        .map(|(k, v)| {
            varint::encoded_len(k.len() as u64)
                + k.len()
                + varint::encoded_len(v.len() as u64)
                + v.len()
        })
        .sum()
}

fn deserialize_entries(payload: &[u8]) -> Result<Vec<Entry>> {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    while pos < payload.len() {
        let (key, next) = read_chunk(payload, pos, "block entry key")?;
        let (value, next) = read_chunk(payload, next, "block entry value")?;
        pos = next;
        entries.push((key.to_vec(), value.to_vec()));
    }
    Ok(entries)
}

fn compress_per_record(entries: &[Entry], compress: impl Fn(&[u8]) -> Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(serialized_len(entries) / 2 + 16);
    for (key, value) in entries {
        varint::write_usize(&mut out, key.len());
        out.extend_from_slice(key);
        let compressed = compress(value);
        varint::write_usize(&mut out, compressed.len());
        out.extend_from_slice(&compressed);
    }
    out
}

fn decompress_per_record(
    block: &[u8],
    decompress: impl Fn(&[u8]) -> Result<Vec<u8>>,
) -> Result<Vec<Entry>> {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    while pos < block.len() {
        let (key, next) = read_chunk(block, pos, "block entry key")?;
        let (value, next) = read_chunk(block, next, "block entry value")?;
        pos = next;
        entries.push((key.to_vec(), decompress(value)?));
    }
    Ok(entries)
}

fn read_chunk<'a>(input: &'a [u8], pos: usize, context: &'static str) -> Result<(&'a [u8], usize)> {
    let (len, pos) = varint::read_usize(input, pos).map_err(|_| ArchiveError::Corrupt {
        context: format!("bad varint in {context}"),
    })?;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= input.len())
        .ok_or(ArchiveError::Corrupt {
            context: format!("{context} overruns block"),
        })?;
    Ok((&input[pos..end], end))
}

fn fsst_table(compressor: &PbcCompressor) -> Vec<u8> {
    // The compressor does not expose its FSST table directly; recover it via
    // the residual mode. This helper exists only for artifact serialization.
    match compressor.residual_fsst() {
        Some(fsst) => fsst.serialize_table(),
        None => Vec::new(),
    }
}

/// Build the codec a [`CodecSpec`] asks for, training on the given sample
/// entries (normally the segment's first block).
pub fn build_codec(spec: &CodecSpec, samples: &[Entry]) -> BlockCodec {
    let values: Vec<&[u8]> = samples.iter().map(|(_, v)| v.as_slice()).collect();
    match spec {
        CodecSpec::Auto => select_codec(samples),
        CodecSpec::Raw => BlockCodec::Raw,
        CodecSpec::Pbc(config) => BlockCodec::Pbc {
            compressor: Arc::new(PbcCompressor::train(&values, config)),
            fsst: false,
        },
        CodecSpec::PbcF(config) => BlockCodec::Pbc {
            compressor: Arc::new(PbcCompressor::train_fsst(&values, config)),
            fsst: true,
        },
        CodecSpec::Zstd { level } => BlockCodec::Zstd {
            codec: ZstdLike::new(*level),
            dictionary: Arc::new(Dictionary::train_default(&values).as_bytes().to_vec()),
        },
        CodecSpec::Fsst => BlockCodec::Fsst {
            codec: <FsstCodec as pbc_codecs::TrainableCodec>::train(&values),
        },
        CodecSpec::Pretrained(codec) => codec.clone(),
    }
}

/// Trial-compress one sample block with every candidate codec and keep the
/// one producing the fewest bytes.
fn select_codec(samples: &[Entry]) -> BlockCodec {
    select_codec_over_blocks(&[samples])
}

/// Trial-select a codec over several sample blocks spread across the input.
///
/// Candidates train on the concatenation of all samples and are scored by
/// the total trial-compressed size of the sample blocks plus the artifact
/// bytes each codec would add to the header (ties break toward the earlier
/// candidate, so selection is deterministic). Sampling blocks spread across
/// the input — rather than the first block only — keeps drifting corpora
/// from committing to a codec that raw-fallbacks on the whole tail.
pub fn select_codec_over_blocks(sample_blocks: &[&[Entry]]) -> BlockCodec {
    let concatenated: Vec<Entry>;
    let training: &[Entry] = match sample_blocks {
        [] => &[],
        [single] => single,
        many => {
            concatenated = many.iter().flat_map(|b| b.iter().cloned()).collect();
            &concatenated
        }
    };
    if training.is_empty() {
        return BlockCodec::Raw;
    }
    let candidates = [
        CodecSpec::Pbc(PbcConfig::default()),
        CodecSpec::PbcF(PbcConfig::default()),
        CodecSpec::Zstd { level: 3 },
        CodecSpec::Fsst,
        CodecSpec::Raw,
    ];
    let mut best: Option<(usize, BlockCodec)> = None;
    for spec in &candidates {
        let codec = build_codec(spec, training);
        let size = sample_blocks
            .iter()
            .map(|block| codec.compress_block(block).len())
            .sum::<usize>()
            + codec.artifacts().len();
        if best.as_ref().is_none_or(|(b, _)| size < *b) {
            best = Some((size, codec));
        }
    }
    // pbc-allow(panic): the scoring loop above always pushes at least one candidate
    best.expect("candidate list is non-empty").1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries(n: usize) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                (
                    format!("user:{i:08}").into_bytes(),
                    format!(
                        "sess|uid={}|dev=android-13|ip=10.0.{}.{}|exp={}",
                        10_000_000 + (i * 9_700_417) % 89_999_999,
                        i % 256,
                        (i * 7) % 256,
                        1_686_000_000 + (i * 86_413) % 9_999_999
                    )
                    .into_bytes(),
                )
            })
            .collect()
    }

    fn all_trained_codecs(entries: &[Entry]) -> Vec<BlockCodec> {
        [
            CodecSpec::Raw,
            CodecSpec::Pbc(PbcConfig::small()),
            CodecSpec::PbcF(PbcConfig::small()),
            CodecSpec::Zstd { level: 3 },
            CodecSpec::Fsst,
        ]
        .iter()
        .map(|spec| build_codec(spec, entries))
        .collect()
    }

    #[test]
    fn every_codec_roundtrips_a_block() {
        let entries = sample_entries(120);
        for codec in all_trained_codecs(&entries) {
            let block = codec.compress_block(&entries);
            let back = codec.decompress_block(&block, entries.len()).unwrap();
            assert_eq!(back, entries, "{}", codec.name());
        }
    }

    #[test]
    fn every_codec_survives_header_artifact_roundtrip() {
        let entries = sample_entries(150);
        for codec in all_trained_codecs(&entries) {
            let rebuilt = BlockCodec::from_parts(codec.id(), &codec.artifacts()).unwrap();
            assert_eq!(rebuilt.id(), codec.id());
            let block = codec.compress_block(&entries);
            // The rebuilt codec must produce byte-identical blocks (writers
            // may hand segments to other processes for compaction).
            assert_eq!(rebuilt.compress_block(&entries), block, "{}", codec.name());
            assert_eq!(
                rebuilt.decompress_block(&block, entries.len()).unwrap(),
                entries,
                "{}",
                codec.name()
            );
        }
    }

    #[test]
    fn find_by_key_matches_full_decompression_and_keeps_last_duplicate() {
        let mut entries = sample_entries(48);
        // Duplicate key with two values: the later one must win.
        entries.push((b"user:00000007".to_vec(), b"overwritten-value".to_vec()));
        for codec in all_trained_codecs(&entries) {
            let block = codec.compress_block(&entries);
            let hit = codec
                .find_by_key(&block, b"user:00000007", entries.len(), false)
                .unwrap();
            assert_eq!(
                hit.as_deref(),
                Some(b"overwritten-value".as_slice()),
                "{}",
                codec.name()
            );
            assert_eq!(
                codec
                    .find_by_key(&block, b"user:00000012", entries.len(), false)
                    .unwrap(),
                Some(entries[12].1.clone()),
                "{}",
                codec.name()
            );
            assert_eq!(
                codec
                    .find_by_key(&block, b"user:zzz", entries.len(), false)
                    .unwrap(),
                None,
                "{}",
                codec.name()
            );
        }
    }

    #[test]
    fn entry_at_matches_full_decompression() {
        let entries = sample_entries(64);
        for codec in all_trained_codecs(&entries) {
            let block = codec.compress_block(&entries);
            for idx in [0usize, 1, 31, 63] {
                assert_eq!(
                    codec.entry_at(&block, idx, entries.len()).unwrap(),
                    entries[idx],
                    "{}",
                    codec.name()
                );
            }
        }
    }

    #[test]
    fn auto_selection_beats_raw_on_templated_data() {
        let entries = sample_entries(256);
        let codec = build_codec(&CodecSpec::Auto, &entries);
        assert_ne!(codec.id(), codec_id::RAW);
        let compressed = codec.compress_block(&entries).len();
        assert!(compressed < serialized_len(&entries) / 2);
    }

    #[test]
    fn unknown_codec_id_is_a_typed_error() {
        assert!(matches!(
            BlockCodec::from_parts(250, &[]),
            Err(ArchiveError::UnknownCodec { id: 250 })
        ));
    }
}
