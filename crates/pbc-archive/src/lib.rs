//! # pbc-archive — persistent, random-access segment store
//!
//! The paper's production case study (Section 7.5) and its random-access
//! experiment (Figure 5) rely on per-record decompression inside a real
//! storage engine. This crate supplies the durable half of that story: a
//! self-describing on-disk **segment** format where records are grouped
//! into fixed-target-size blocks, each block independently compressed with
//! a per-segment codec choice (PBC / PBC_F / Zstd-like / FSST / raw —
//! trial-selected on the first block or forced via [`CodecSpec`]), with the
//! trained PBC pattern dictionary, FSST symbol table, and Zstd dictionary
//! embedded once in the segment header.
//!
//! A footer holds a block index (record counts, raw/compressed offsets,
//! per-block min/max key, CRCs) enabling `O(log n)` record lookup and — for
//! the per-record codecs — true per-record random access without
//! decompressing the rest of the block. [`SegmentWriter`] fans block
//! compression out across a `std::thread` worker pool (sequence-numbered
//! results reassembled in order), so ingest scales with cores while the
//! produced file stays byte-identical to the single-threaded one.
//!
//! See `format.rs` for the byte-level layout and versioning rules.
//!
//! ## Example
//!
//! ```
//! use pbc_archive::{CodecSpec, SegmentConfig, SegmentReader, SegmentWriter};
//!
//! let path = std::env::temp_dir().join(format!("pbc-archive-doc-{}.seg", std::process::id()));
//! let mut writer = SegmentWriter::create(&path, SegmentConfig::default()).unwrap();
//! for i in 0..500u32 {
//!     let record = format!("evt|id={i:08}|status=done");
//!     writer.append_record(record.as_bytes()).unwrap();
//! }
//! let summary = writer.finish().unwrap();
//! assert_eq!(summary.record_count, 500);
//!
//! let reader = SegmentReader::open(&path).unwrap();
//! assert_eq!(reader.get_record(123).unwrap(), b"evt|id=00000123|status=done");
//! std::fs::remove_file(&path).unwrap();
//! ```

#![warn(missing_docs)]
// `unsafe` is allowed in exactly one place: the audited `mmap` module
// (which opts back in with a module-level `allow`). `deny` rather than
// `forbid` because `forbid` cannot be overridden even by that one module.
#![deny(unsafe_code)]

pub mod codec;
pub mod error;
pub mod format;
pub mod mmap;
pub mod obs;
pub mod positioned;
pub mod reader;
pub mod writer;

pub use codec::{build_codec, select_codec_over_blocks, BlockCodec, CodecSpec, Entry};
pub use error::{ArchiveError, Result};
pub use mmap::MappedFile;
pub use obs::{ReaderObs, WriterObs};
pub use reader::{RangeScan, ReadMode, Scan, SegmentReader};
pub use writer::{
    entry_size_estimate, spread_sample_indices, SegmentConfig, SegmentSummary, SegmentWriter,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp path per test file, cleaned up by the returned guard.
    pub(crate) fn temp_segment(tag: &str) -> (PathBuf, TempGuard) {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "pbc-archive-test-{}-{}-{}.seg",
            std::process::id(),
            tag,
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        (path.clone(), TempGuard(path))
    }

    pub(crate) struct TempGuard(PathBuf);

    impl Drop for TempGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn keyed_records(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("acct:{i:010}").into_bytes(),
                    format!(
                        "{{\"order_id\":\"ORD2023{:010}\",\"user_id\":{},\"status\":\"PAID\",\"cents\":{}}}",
                        (i as u64 * 1_234_567_891) % 10_000_000_000,
                        10_000_000 + (i * 9_700_417) % 89_999_999,
                        100 + (i * 7_103) % 5_000_000
                    )
                    .into_bytes(),
                )
            })
            .collect()
    }

    fn write_segment(
        path: &std::path::Path,
        records: &[(Vec<u8>, Vec<u8>)],
        config: SegmentConfig,
    ) -> SegmentSummary {
        let mut writer = SegmentWriter::create(path, config).unwrap();
        for (key, value) in records {
            writer.append(key, value).unwrap();
        }
        writer.finish().unwrap()
    }

    #[test]
    fn write_reopen_random_access_roundtrip() {
        let (path, _guard) = temp_segment("roundtrip");
        let records = keyed_records(2_000);
        let summary = write_segment(&path, &records, SegmentConfig::default());
        assert_eq!(summary.record_count, 2_000);
        assert!(summary.block_count > 1, "should span multiple blocks");
        assert!(summary.ratio() < 0.8, "templated data should compress");

        let reader = SegmentReader::open(&path).unwrap();
        assert_eq!(reader.record_count(), 2_000);
        assert!(reader.is_sorted());
        for i in [0u64, 1, 999, 1_234, 1_999] {
            let (key, value) = reader.get_entry(i).unwrap();
            assert_eq!((key, value), records[i as usize]);
        }
        assert_eq!(
            reader.get(b"acct:0000001500").unwrap().as_deref(),
            Some(records[1_500].1.as_slice())
        );
        assert_eq!(reader.get(b"acct:zzz").unwrap(), None);
        assert!(matches!(
            reader.get_record(2_000),
            Err(ArchiveError::RecordOutOfRange {
                index: 2_000,
                count: 2_000
            })
        ));
    }

    #[test]
    fn flagged_counts_survive_the_footer_across_worker_counts() {
        let records = keyed_records(2_400);
        for workers in [1usize, 4] {
            let (path, _guard) = temp_segment("flagged");
            let mut writer =
                SegmentWriter::create(&path, SegmentConfig::default().with_workers(workers))
                    .unwrap();
            let mut flagged = 0u64;
            for (i, (key, value)) in records.iter().enumerate() {
                if i % 7 == 0 {
                    writer.append_flagged(key, value).unwrap();
                    flagged += 1;
                } else {
                    writer.append(key, value).unwrap();
                }
            }
            let summary = writer.finish().unwrap();
            assert_eq!(summary.flagged_count, flagged);

            let reader = SegmentReader::open(&path).unwrap();
            assert_eq!(reader.flagged_count(), flagged, "workers={workers}");
            let per_block: u64 = (0..reader.block_count())
                .map(|b| reader.block_flagged_count(b))
                .sum();
            assert_eq!(per_block, flagged);
            // Flagging changes nothing about the stored records.
            assert_eq!(reader.get_entry(0).unwrap(), records[0]);
            assert_eq!(reader.min_key().unwrap(), records[0].0.as_slice());
            assert_eq!(
                reader.max_key().unwrap(),
                records.last().unwrap().0.as_slice()
            );
        }
    }

    #[test]
    fn scan_streams_every_entry_in_order() {
        let (path, _guard) = temp_segment("scan");
        let records = keyed_records(700);
        write_segment(&path, &records, SegmentConfig::default());
        let reader = SegmentReader::open(&path).unwrap();
        let scanned: Vec<Entry> = reader.scan().map(|e| e.unwrap()).collect();
        assert_eq!(scanned, records);
    }

    #[test]
    fn scan_range_matches_the_filtered_full_scan() {
        let (path, _guard) = temp_segment("scan-range");
        let records = keyed_records(2_500);
        let summary = write_segment(
            &path,
            &records,
            SegmentConfig {
                target_block_bytes: 4 * 1024, // many blocks: seeks are real
                ..SegmentConfig::default()
            },
        );
        assert!(summary.block_count > 8, "range seeks need several blocks");
        let reader = SegmentReader::open(&path).unwrap();
        for (start, end) in [
            (
                b"acct:0000000100".to_vec(),
                Some(b"acct:0000000200".to_vec()),
            ),
            (
                b"acct:0000001999".to_vec(),
                Some(b"acct:0000002003".to_vec()),
            ),
            (b"acct:0000002400".to_vec(), None), // unbounded tail
            (b"acct:zzz".to_vec(), None),        // past every key
            (
                b"acct:0000000500".to_vec(),
                Some(b"acct:0000000400".to_vec()),
            ), // inverted
        ] {
            let got: Vec<Entry> = reader
                .scan_range(&start, end.as_deref())
                .unwrap()
                .map(|e| e.unwrap())
                .collect();
            let want: Vec<Entry> = records
                .iter()
                .filter(|(k, _)| *k >= start && end.as_ref().is_none_or(|e| k <= e))
                .cloned()
                .collect();
            assert_eq!(got, want, "range {start:?}..={end:?}");
        }
        // The shared bounds helper agrees with the point-lookup helper.
        let key = b"acct:0000001500";
        assert_eq!(
            reader.candidate_blocks_for_key(key).unwrap(),
            reader.candidate_blocks_for_range(key, Some(key)).unwrap()
        );
    }

    #[test]
    fn every_forced_codec_roundtrips_on_disk() {
        use pbc_core::PbcConfig;
        let records = keyed_records(600);
        for spec in [
            CodecSpec::Raw,
            CodecSpec::Pbc(PbcConfig::small()),
            CodecSpec::PbcF(PbcConfig::small()),
            CodecSpec::Zstd { level: 3 },
            CodecSpec::Fsst,
        ] {
            let (path, _guard) = temp_segment("forced");
            write_segment(&path, &records, SegmentConfig::with_codec(spec.clone()));
            let reader = SegmentReader::open(&path).unwrap();
            for i in (0..records.len()).step_by(97) {
                assert_eq!(
                    reader.get_record(i as u64).unwrap(),
                    records[i].1,
                    "codec {spec:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_writer_produces_byte_identical_segments() {
        let records = keyed_records(3_000);
        let (path_single, _g1) = temp_segment("single");
        let (path_parallel, _g2) = temp_segment("parallel");
        write_segment(&path_single, &records, SegmentConfig::default());
        write_segment(
            &path_parallel,
            &records,
            SegmentConfig::default().with_workers(4),
        );
        let single = std::fs::read(&path_single).unwrap();
        let parallel = std::fs::read(&path_parallel).unwrap();
        assert_eq!(single, parallel, "worker count must not change the file");
    }

    #[test]
    fn unsorted_appends_clear_the_sorted_flag_even_after_header_write() {
        let (path, _guard) = temp_segment("unsorted");
        let mut writer = SegmentWriter::create(
            &path,
            SegmentConfig {
                target_block_bytes: 512,
                ..SegmentConfig::default()
            },
        )
        .unwrap();
        // Plenty of sorted records first, so the header (with the sorted
        // flag) is already on disk...
        for i in 0..200u32 {
            writer
                .append(format!("k{i:06}").as_bytes(), b"value")
                .unwrap();
        }
        // ...then one key out of order.
        writer.append(b"a-first", b"late").unwrap();
        writer.finish().unwrap();
        let reader = SegmentReader::open(&path).unwrap();
        assert!(!reader.is_sorted());
        assert!(matches!(
            reader.get(b"k000001"),
            Err(ArchiveError::UnsortedKeys)
        ));
        // Ordinal access still works.
        assert_eq!(reader.get_record(200).unwrap(), b"late");
    }

    #[test]
    fn crafted_trailer_offsets_error_instead_of_overflowing() {
        let (path, _guard) = temp_segment("crafted-trailer");
        let records = keyed_records(50);
        write_segment(&path, &records, SegmentConfig::default());
        let mut bytes = std::fs::read(&path).unwrap();
        // index_offset near u64::MAX with a small index_len: the additions
        // in open() must stay checked, not panic in debug builds.
        let trailer_start = bytes.len() - format::TRAILER_LEN;
        let crafted = format::encode_trailer(u64::MAX - 20, 4, 0);
        bytes[trailer_start..].copy_from_slice(&crafted);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(ArchiveError::Truncated {
                context: "block index"
            })
        ));
    }

    #[test]
    fn auto_selection_samples_past_an_unrepresentative_first_block() {
        // First blocks: pseudo-random noise. Tail: highly templated records.
        // First-block-only selection would commit to what the noise
        // suggests (Raw) and store the whole templated tail uncompressed;
        // window sampling must spot the tail and pick a real codec.
        let (path, _guard) = temp_segment("drift");
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut records: Vec<(Vec<u8>, Vec<u8>)> = (0..60usize)
            .map(|i| {
                let value: Vec<u8> = (0..80)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6_364_136_223_846_793_005)
                            .wrapping_add(1);
                        (state >> 33) as u8
                    })
                    .collect();
                (format!("k:{i:06}").into_bytes(), value)
            })
            .collect();
        for i in 60..2_000usize {
            records.push((
                format!("k:{i:06}").into_bytes(),
                format!(
                    "evt|uid={}|dev=ios-17|region=eu-{}|ts={}",
                    10_000_000 + (i * 9_700_417) % 89_999_999,
                    i % 8,
                    1_686_000_000 + i * 7
                )
                .into_bytes(),
            ));
        }
        let summary = write_segment(
            &path,
            &records,
            SegmentConfig {
                target_block_bytes: 4 * 1024,
                ..SegmentConfig::default()
            },
        );
        assert!(summary.block_count > 16, "must outgrow the sampling window");
        assert_ne!(summary.codec, "Raw", "sampling must see past the noise");
        assert!(
            summary.ratio() < 0.7,
            "templated tail should compress, got {}",
            summary.ratio()
        );
        // And the mixed segment still roundtrips exactly.
        let reader = SegmentReader::open(&path).unwrap();
        for i in (0..records.len()).step_by(111) {
            assert_eq!(reader.get_entry(i as u64).unwrap(), records[i]);
        }
    }

    #[test]
    fn empty_segment_roundtrips() {
        let (path, _guard) = temp_segment("empty");
        let writer = SegmentWriter::create(&path, SegmentConfig::default()).unwrap();
        let summary = writer.finish().unwrap();
        assert_eq!(summary.record_count, 0);
        assert_eq!(summary.codec, "Raw");
        let reader = SegmentReader::open(&path).unwrap();
        assert_eq!(reader.record_count(), 0);
        assert_eq!(reader.scan().count(), 0);
    }

    #[test]
    fn keyless_records_roundtrip_by_ordinal() {
        let (path, _guard) = temp_segment("keyless");
        let mut writer = SegmentWriter::create(&path, SegmentConfig::default()).unwrap();
        let records: Vec<Vec<u8>> = (0..1_000)
            .map(|i| format!("GET /api/v1/users/{}/profile HTTP/1.1", 10_000 + i * 17).into_bytes())
            .collect();
        for record in &records {
            writer.append_record(record).unwrap();
        }
        writer.finish().unwrap();
        let reader = SegmentReader::open(&path).unwrap();
        for i in (0..records.len()).step_by(53) {
            assert_eq!(reader.get_record(i as u64).unwrap(), records[i]);
        }
    }
}
