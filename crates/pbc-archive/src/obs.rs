//! Optional observability hooks for segment readers and writers.
//!
//! Both structs are bundles of [`pbc_obs`] handles. The `Default`
//! (= [`ReaderObs::noop`] / [`WriterObs::noop`]) bundle records nothing
//! and costs nothing — not even a clock read — so the archive layer
//! carries the hooks unconditionally and hosts like `pbc-tier` decide
//! whether to attach real registry handles.

use pbc_obs::{Counter, Histogram};

/// Decode-side hooks for a [`crate::SegmentReader`].
#[derive(Clone, Debug, Default)]
pub struct ReaderObs {
    /// Incremented once per whole-block decompression.
    pub blocks_decoded: Counter,
    /// Nanoseconds per whole-block decompression (codec work only; the
    /// `pread` + CRC check is not included).
    pub decode_ns: Histogram,
    /// Bytes copied from disk into fresh heap buffers by block fetches —
    /// the cost the mmap backend avoids. Stays 0 on a mapped reader; on
    /// the `pread` backend it grows by one compressed block length per
    /// fetch.
    pub bytes_copied: Counter,
}

impl ReaderObs {
    /// Hooks that record nothing.
    pub fn noop() -> Self {
        ReaderObs::default()
    }
}

/// Encode-side hooks for a [`crate::SegmentWriter`].
#[derive(Clone, Debug, Default)]
pub struct WriterObs {
    /// Incremented once per block handed to a codec (including raw
    /// fallbacks).
    pub blocks_encoded: Counter,
    /// Nanoseconds per block compression (codec work only, measured on
    /// whichever thread ran it — inline or pool worker).
    pub encode_ns: Histogram,
}

impl WriterObs {
    /// Hooks that record nothing.
    pub fn noop() -> Self {
        WriterObs::default()
    }
}
