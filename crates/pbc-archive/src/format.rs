//! The on-disk segment layout: header, block index, trailer, checksums.
//!
//! ```text
//! +----------------------------------------------------------------------+
//! | header   | magic "PBCARSEG" (8) | version u16 | codec id u8 | flags  |
//! |          | u8 | artifacts (varint len + codec training payload)      |
//! |          | header crc32 (4)                                          |
//! +----------------------------------------------------------------------+
//! | blocks   | block 0 bytes | block 1 bytes | ...                       |
//! |          | (geometry lives in the index, not in the stream)          |
//! +----------------------------------------------------------------------+
//! | index    | per block: codec id u8 (segment codec or raw fallback),   |
//! |          | varint record_count, raw_len, file_offset, comp_len,      |
//! |          | crc32, min_key, max_key, flagged_count (v2+)              |
//! +----------------------------------------------------------------------+
//! | trailer  | index_offset u64 | index_len u32 | index crc32 u32 |      |
//! | (24 B)   | magic "PBCAREND" (8)                                      |
//! +----------------------------------------------------------------------+
//! ```
//!
//! Versioning rules: readers accept any file whose `version <= VERSION`;
//! incompatible layout changes bump `VERSION`; additive changes (new codec
//! ids, new `flags` bits) do not. All integers are little-endian or LEB128
//! varints; keys and blocks are opaque bytes.
//!
//! Version history: v1 is the original layout; v2 appends a varint
//! `flagged_count` to each index entry — a caller-defined per-block record
//! counter (the tiered store counts tombstones with it), so segment-level
//! dead-entry statistics are readable from the footer without decoding any
//! block. v1 files decode with `flagged_count = 0`.

use pbc_codecs::varint;

use crate::error::{ArchiveError, Result};

/// First 8 bytes of every segment file.
pub const HEADER_MAGIC: [u8; 8] = *b"PBCARSEG";

/// Last 8 bytes of every segment file.
pub const TRAILER_MAGIC: [u8; 8] = *b"PBCAREND";

/// Current format version. Readers accept any `version <= VERSION`.
pub const VERSION: u16 = 2;

/// Oldest version whose index entries carry a per-block `flagged_count`.
pub const VERSION_FLAGGED_COUNTS: u16 = 2;

/// Byte length of the fixed-size trailer.
pub const TRAILER_LEN: usize = 24;

/// Header flag: records were appended in non-decreasing key order, so
/// key lookups may binary-search the block index.
pub const FLAG_SORTED_KEYS: u8 = 0b0000_0001;

/// CRC-32 (IEEE, reflected) over `data` — the same polynomial as zip/png.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xedb8_8320;
    let mut crc = !0u32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// Decoded segment header.
#[derive(Debug, Clone)]
pub struct Header {
    /// Format version stamped in the file.
    pub version: u16,
    /// Block codec id (see [`crate::codec::BlockCodec`]).
    pub codec_id: u8,
    /// Header flag bits ([`FLAG_SORTED_KEYS`]).
    pub flags: u8,
    /// Codec-specific training payload (dictionaries, symbol tables).
    pub artifacts: Vec<u8>,
}

impl Header {
    /// Serialize, including the trailing header checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.artifacts.len());
        out.extend_from_slice(&HEADER_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.push(self.codec_id);
        out.push(self.flags);
        varint::write_usize(&mut out, self.artifacts.len());
        out.extend_from_slice(&self.artifacts);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse a header from the start of `input`; returns the header and the
    /// number of bytes it occupied.
    pub fn decode(input: &[u8]) -> Result<(Header, usize)> {
        if input.len() < HEADER_MAGIC.len() + 4 {
            return Err(ArchiveError::Truncated { context: "header" });
        }
        if input[..8] != HEADER_MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&input[..8]);
            return Err(ArchiveError::BadMagic {
                location: "header",
                found,
            });
        }
        let version = u16::from_le_bytes([input[8], input[9]]);
        if version > VERSION {
            return Err(ArchiveError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let codec_id = input[10];
        let flags = input[11];
        let (artifact_len, pos) = varint::read_usize(input, 12)
            .map_err(|_| ArchiveError::Truncated { context: "header" })?;
        let end = pos
            .checked_add(artifact_len)
            .filter(|&e| {
                e.checked_add(4)
                    .is_some_and(|crc_end| crc_end <= input.len())
            })
            .ok_or(ArchiveError::Truncated { context: "header" })?;
        let artifacts = input[pos..end].to_vec();
        let stored =
            u32::from_le_bytes([input[end], input[end + 1], input[end + 2], input[end + 3]]);
        let computed = crc32(&input[..end]);
        if stored != computed {
            return Err(ArchiveError::CrcMismatch {
                what: "header",
                index: 0,
                stored,
                computed,
            });
        }
        Ok((
            Header {
                version,
                codec_id,
                flags,
                artifacts,
            },
            end + 4,
        ))
    }
}

/// One block's entry in the footer index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Codec this block was actually compressed with: the segment codec, or
    /// `codec_id::RAW` when compression would have expanded the block (the
    /// per-block raw fallback that bounds worst-case ratio under data
    /// drift).
    pub codec_id: u8,
    /// Records stored in the block.
    pub record_count: u64,
    /// Serialized (uncompressed) payload length in bytes.
    pub raw_len: u64,
    /// Offset of the compressed block from the start of the file.
    pub file_offset: u64,
    /// Compressed block length in bytes.
    pub comp_len: u64,
    /// CRC-32 of the compressed block bytes.
    pub crc: u32,
    /// Smallest record key in the block (empty for keyless records).
    pub min_key: Vec<u8>,
    /// Largest record key in the block.
    pub max_key: Vec<u8>,
    /// Caller-defined per-block record counter (v2+): the segment writer
    /// increments it for records appended via
    /// [`crate::SegmentWriter::append_flagged`]. The tiered store flags
    /// tombstones, making per-segment dead-entry counts readable straight
    /// from the footer. Always `0` when decoding v1 files.
    pub flagged_count: u64,
}

impl BlockMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.codec_id);
        varint::write_u64(out, self.record_count);
        varint::write_u64(out, self.raw_len);
        varint::write_u64(out, self.file_offset);
        varint::write_u64(out, self.comp_len);
        varint::write_u64(out, self.crc as u64);
        varint::write_usize(out, self.min_key.len());
        out.extend_from_slice(&self.min_key);
        varint::write_usize(out, self.max_key.len());
        out.extend_from_slice(&self.max_key);
        varint::write_u64(out, self.flagged_count);
    }

    fn decode(input: &[u8], pos: usize, version: u16) -> Result<(BlockMeta, usize)> {
        let truncated = |_| ArchiveError::Truncated {
            context: "block index",
        };
        let codec_id = *input.get(pos).ok_or(ArchiveError::Truncated {
            context: "block index",
        })?;
        let pos = pos + 1;
        let (record_count, pos) = varint::read_u64(input, pos).map_err(truncated)?;
        let (raw_len, pos) = varint::read_u64(input, pos).map_err(truncated)?;
        let (file_offset, pos) = varint::read_u64(input, pos).map_err(truncated)?;
        let (comp_len, pos) = varint::read_u64(input, pos).map_err(truncated)?;
        let (crc, pos) = varint::read_u64(input, pos).map_err(truncated)?;
        let (min_key, pos) = read_bytes(input, pos)?;
        let (max_key, pos) = read_bytes(input, pos)?;
        let (flagged_count, pos) = if version >= VERSION_FLAGGED_COUNTS {
            varint::read_u64(input, pos).map_err(truncated)?
        } else {
            (0, pos)
        };
        if crc > u32::MAX as u64 {
            return Err(ArchiveError::Corrupt {
                context: format!("block crc field {crc:#x} exceeds 32 bits"),
            });
        }
        if flagged_count > record_count {
            return Err(ArchiveError::Corrupt {
                context: format!(
                    "block claims {flagged_count} flagged records out of {record_count}"
                ),
            });
        }
        Ok((
            BlockMeta {
                codec_id,
                record_count,
                raw_len,
                file_offset,
                comp_len,
                crc: crc as u32,
                min_key,
                max_key,
                flagged_count,
            },
            pos,
        ))
    }
}

fn read_bytes(input: &[u8], pos: usize) -> Result<(Vec<u8>, usize)> {
    let (len, pos) = varint::read_usize(input, pos).map_err(|_| ArchiveError::Truncated {
        context: "block index",
    })?;
    let end =
        pos.checked_add(len)
            .filter(|&e| e <= input.len())
            .ok_or(ArchiveError::Truncated {
                context: "block index",
            })?;
    Ok((input[pos..end].to_vec(), end))
}

/// Serialize the block index (without the trailer). Always writes the
/// current-version layout ([`VERSION`]).
pub fn encode_index(blocks: &[BlockMeta]) -> Vec<u8> {
    let mut out = Vec::new();
    varint::write_usize(&mut out, blocks.len());
    for meta in blocks {
        meta.encode(&mut out);
    }
    out
}

/// Parse the block index from its serialized bytes, interpreting entries
/// under the layout of `version` (the file's header version).
pub fn decode_index(input: &[u8], version: u16) -> Result<Vec<BlockMeta>> {
    let (count, mut pos) = varint::read_usize(input, 0).map_err(|_| ArchiveError::Truncated {
        context: "block index",
    })?;
    // Each entry occupies at least 7 bytes; reject impossible counts before
    // allocating.
    if count > input.len() {
        return Err(ArchiveError::Corrupt {
            context: format!("block index claims {count} blocks in {} bytes", input.len()),
        });
    }
    let mut blocks = Vec::with_capacity(count);
    for _ in 0..count {
        let (meta, next) = BlockMeta::decode(input, pos, version)?;
        pos = next;
        blocks.push(meta);
    }
    if pos != input.len() {
        return Err(ArchiveError::Corrupt {
            context: format!("{} trailing bytes after block index", input.len() - pos),
        });
    }
    Ok(blocks)
}

/// Serialize the fixed-size trailer.
pub fn encode_trailer(index_offset: u64, index_len: u32, index_crc: u32) -> [u8; TRAILER_LEN] {
    let mut out = [0u8; TRAILER_LEN];
    out[0..8].copy_from_slice(&index_offset.to_le_bytes());
    out[8..12].copy_from_slice(&index_len.to_le_bytes());
    out[12..16].copy_from_slice(&index_crc.to_le_bytes());
    out[16..24].copy_from_slice(&TRAILER_MAGIC);
    out
}

/// Parse the trailer; returns `(index_offset, index_len, index_crc)`.
pub fn decode_trailer(trailer: &[u8; TRAILER_LEN]) -> Result<(u64, u32, u32)> {
    if trailer[16..24] != TRAILER_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&trailer[16..24]);
        return Err(ArchiveError::BadMagic {
            location: "trailer",
            found,
        });
    }
    // pbc-allow(panic): subslice of the checked 16-byte trailer; try_into is infallible
    let index_offset = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
    // pbc-allow(panic): subslice of the checked 16-byte trailer; try_into is infallible
    let index_len = u32::from_le_bytes(trailer[8..12].try_into().unwrap());
    // pbc-allow(panic): subslice of the checked 16-byte trailer; try_into is infallible
    let index_crc = u32::from_le_bytes(trailer[12..16].try_into().unwrap());
    Ok((index_offset, index_len, index_crc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_roundtrips() {
        let header = Header {
            version: VERSION,
            codec_id: 3,
            flags: FLAG_SORTED_KEYS,
            artifacts: vec![1, 2, 3, 250],
        };
        let bytes = header.encode();
        let (decoded, used) = Header::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded.codec_id, 3);
        assert_eq!(decoded.flags, FLAG_SORTED_KEYS);
        assert_eq!(decoded.artifacts, vec![1, 2, 3, 250]);
    }

    #[test]
    fn header_rejects_overflowing_artifact_length_without_panicking() {
        // A crafted artifact-length varint near usize::MAX must produce a
        // typed error, not an arithmetic-overflow panic or wild slice.
        let mut crafted = Vec::new();
        crafted.extend_from_slice(&HEADER_MAGIC);
        crafted.extend_from_slice(&VERSION.to_le_bytes());
        crafted.push(0); // codec id
        crafted.push(0); // flags
        varint::write_u64(&mut crafted, u64::MAX - 22);
        crafted.extend_from_slice(&[0u8; 8]); // pretend-artifacts + crc space
        assert!(matches!(
            Header::decode(&crafted),
            Err(ArchiveError::Truncated { context: "header" })
        ));
    }

    #[test]
    fn header_rejects_bad_magic_version_and_crc() {
        let header = Header {
            version: VERSION,
            codec_id: 0,
            flags: 0,
            artifacts: Vec::new(),
        };
        let good = header.encode();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Header::decode(&bad_magic),
            Err(ArchiveError::BadMagic {
                location: "header",
                ..
            })
        ));

        let mut bad_version = good.clone();
        bad_version[8] = 99;
        // Version check happens before CRC so old readers give the clearer
        // error on new files.
        assert!(matches!(
            Header::decode(&bad_version),
            Err(ArchiveError::UnsupportedVersion { found: 99, .. })
        ));

        let mut bad_crc = good.clone();
        bad_crc[10] ^= 0x40;
        assert!(matches!(
            Header::decode(&bad_crc),
            Err(ArchiveError::CrcMismatch { what: "header", .. })
        ));

        assert!(matches!(
            Header::decode(&good[..6]),
            Err(ArchiveError::Truncated { context: "header" })
        ));
    }

    #[test]
    fn index_roundtrips() {
        let blocks = vec![
            BlockMeta {
                codec_id: 3,
                record_count: 128,
                raw_len: 65_536,
                file_offset: 32,
                comp_len: 9_000,
                crc: 0xdead_beef,
                min_key: b"user:0001".to_vec(),
                max_key: b"user:0999".to_vec(),
                flagged_count: 17,
            },
            BlockMeta {
                codec_id: 0,
                record_count: 64,
                raw_len: 30_000,
                file_offset: 9_032,
                comp_len: 4_400,
                crc: 7,
                min_key: Vec::new(),
                max_key: Vec::new(),
                flagged_count: 0,
            },
        ];
        let bytes = encode_index(&blocks);
        assert_eq!(decode_index(&bytes, VERSION).unwrap(), blocks);
    }

    #[test]
    fn v1_index_decodes_with_zero_flagged_counts() {
        // A v1 entry is the v2 layout minus the trailing flagged varint.
        let v2 = BlockMeta {
            codec_id: 3,
            record_count: 12,
            raw_len: 600,
            file_offset: 32,
            comp_len: 200,
            crc: 9,
            min_key: b"a".to_vec(),
            max_key: b"z".to_vec(),
            flagged_count: 0,
        };
        let mut v1_bytes = Vec::new();
        varint::write_usize(&mut v1_bytes, 1);
        v2.encode(&mut v1_bytes);
        v1_bytes.pop(); // strip the flagged_count varint (value 0 = 1 byte)
        let decoded = decode_index(&v1_bytes, 1).unwrap();
        assert_eq!(decoded, vec![v2]);
    }

    #[test]
    fn index_rejects_flagged_count_above_record_count() {
        let mut bytes = Vec::new();
        varint::write_usize(&mut bytes, 1);
        BlockMeta {
            codec_id: 1,
            record_count: 2,
            raw_len: 10,
            file_offset: 32,
            comp_len: 10,
            crc: 1,
            min_key: vec![b'k'],
            max_key: vec![b'k'],
            flagged_count: 3,
        }
        .encode(&mut bytes);
        assert!(matches!(
            decode_index(&bytes, VERSION),
            Err(ArchiveError::Corrupt { .. })
        ));
    }

    #[test]
    fn index_rejects_truncation_and_trailing_garbage() {
        let blocks = vec![BlockMeta {
            codec_id: 1,
            record_count: 1,
            raw_len: 10,
            file_offset: 32,
            comp_len: 10,
            crc: 1,
            min_key: vec![b'k'],
            max_key: vec![b'k'],
            flagged_count: 1,
        }];
        let bytes = encode_index(&blocks);
        assert!(decode_index(&bytes[..bytes.len() - 2], VERSION).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            decode_index(&padded, VERSION),
            Err(ArchiveError::Corrupt { .. })
        ));
    }

    #[test]
    fn trailer_roundtrips_and_rejects_bad_magic() {
        let trailer = encode_trailer(1_000, 52, 0xfeed_f00d);
        assert_eq!(decode_trailer(&trailer).unwrap(), (1_000, 52, 0xfeed_f00d));
        let mut bad = trailer;
        bad[20] = b'?';
        assert!(matches!(
            decode_trailer(&bad),
            Err(ArchiveError::BadMagic {
                location: "trailer",
                ..
            })
        ));
    }
}
