//! Generators for the capacity-boundary datasets: `urls` and `uuid`.
//!
//! The paper includes these two FSST datasets to probe the limits of
//! pattern-based compression: URLs still carry shared structure
//! (scheme/host/path skeletons), while UUIDs are essentially random hex and
//! share almost nothing — PBC's worst case (Table 4's smallest win).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::kv::{hex, pick, word};

/// `urls` (paper avg. 63.1 bytes): web URLs with a handful of host skeletons.
pub fn urls(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7765_0001);
    let hosts = [
        "https://www.wikipedia.org/wiki",
        "https://news.example.com/articles",
        "https://shop.example.net/p",
        "http://cdn.static-host.com/assets",
    ];
    (0..count)
        .map(|_| {
            let host = pick(&mut rng, &hosts);
            match rng.gen_range(0..3u8) {
                0 => format!("{}/{}_{}", host, word(&mut rng, 8), word(&mut rng, 6)),
                1 => format!(
                    "{}/{}/{}?id={}&ref={}",
                    host,
                    word(&mut rng, 6),
                    word(&mut rng, 9),
                    rng.gen_range(1000..999_999u32),
                    word(&mut rng, 4)
                ),
                _ => format!(
                    "{}/{}/{}.html",
                    host,
                    rng.gen_range(2010..2024u32),
                    word(&mut rng, 10)
                ),
            }
            .into_bytes()
        })
        .collect()
}

/// `uuid` (paper avg. 35.6 bytes): random version-4 UUID strings.
pub fn uuid(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7765_0002);
    (0..count)
        .map(|_| {
            format!(
                "{}-{}-4{}-{}{}-{}",
                hex(&mut rng, 8),
                hex(&mut rng, 4),
                hex(&mut rng, 3),
                pick(&mut rng, &["8", "9", "a", "b"]),
                hex(&mut rng, 3),
                hex(&mut rng, 12)
            )
            .into_bytes()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uuids_have_canonical_shape() {
        for rec in uuid(100, 1) {
            let s = String::from_utf8(rec).unwrap();
            assert_eq!(s.len(), 36);
            let parts: Vec<&str> = s.split('-').collect();
            assert_eq!(parts.len(), 5);
            assert_eq!(parts[2].chars().next(), Some('4'), "version nibble");
            assert!(s.chars().all(|c| c.is_ascii_hexdigit() || c == '-'));
        }
    }

    #[test]
    fn urls_have_expected_shape_and_length() {
        let records = urls(300, 2);
        let avg: f64 = records.iter().map(|r| r.len()).sum::<usize>() as f64 / records.len() as f64;
        assert!((avg - 63.1).abs() < 20.0, "avg {avg}");
        for rec in &records {
            let s = String::from_utf8(rec.clone()).unwrap();
            assert!(s.starts_with("http"), "{s}");
        }
    }

    #[test]
    fn uuids_are_nearly_incompressible_across_records() {
        // Distinct UUIDs share only the dashes and version nibble.
        let records = uuid(50, 3);
        let unique: std::collections::HashSet<&Vec<u8>> = records.iter().collect();
        assert_eq!(unique.len(), records.len());
    }
}
