//! Generators for the JSON datasets (`github`, `cities`, `unece`).
//!
//! * `github` — GitHub event documents (nested actor/repo/payload), long
//!   records (~860 bytes) with heavy key-level redundancy.
//! * `cities` — city information records (~230 bytes).
//! * `unece` — large country/trade-facilitation records (~4.5 KB) with many
//!   repeated keys and sub-arrays; the dataset where schema-driven codecs
//!   shine in the paper.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::kv::{digits, hex, pick, word};

/// `github` (paper avg. 863.8 bytes): GitHub push/watch events.
pub fn github(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6a73_0001);
    let types = [
        "PushEvent",
        "WatchEvent",
        "IssueCommentEvent",
        "PullRequestEvent",
    ];
    (0..count)
        .map(|i| {
            let user = format!("{}-{}", word(&mut rng, 6), rng.gen_range(1..999u32));
            let repo = format!("{}/{}", word(&mut rng, 7), word(&mut rng, 9));
            let sha_before = hex(&mut rng, 40);
            let sha_head = hex(&mut rng, 40);
            format!(
                "{{\"id\":\"{}\",\"type\":\"{}\",\"actor\":{{\"id\":{},\"login\":\"{}\",\"gravatar_id\":\"\",\"url\":\"https://api.github.com/users/{}\",\"avatar_url\":\"https://avatars.githubusercontent.com/u/{}?\"}},\"repo\":{{\"id\":{},\"name\":\"{}\",\"url\":\"https://api.github.com/repos/{}\"}},\"payload\":{{\"push_id\":{},\"size\":{},\"distinct_size\":{},\"ref\":\"refs/heads/{}\",\"head\":\"{}\",\"before\":\"{}\",\"commits\":[{{\"sha\":\"{}\",\"author\":{{\"email\":\"{}@{}.com\",\"name\":\"{}\"}},\"message\":\"{} {} {} in {}\",\"distinct\":true,\"url\":\"https://api.github.com/repos/{}/commits/{}\"}}]}},\"public\":true,\"created_at\":\"2023-06-13T10:{:02}:{:02}Z\"}}",
                2_489_000_000u64 + i as u64,
                pick(&mut rng, &types),
                rng.gen_range(100_000..9_999_999u64),
                user,
                user,
                rng.gen_range(100_000..9_999_999u64),
                rng.gen_range(1_000_000..99_999_999u64),
                repo,
                repo,
                rng.gen_range(100_000_000..999_999_999u64),
                rng.gen_range(1..5u8),
                rng.gen_range(1..5u8),
                pick(&mut rng, &["main", "master", "develop"]),
                sha_head,
                sha_before,
                sha_head,
                word(&mut rng, 6),
                word(&mut rng, 5),
                word(&mut rng, 7),
                pick(&mut rng, &["fix", "add", "update", "remove"]),
                word(&mut rng, 8),
                word(&mut rng, 6),
                repo,
                repo,
                sha_head,
                rng.gen_range(0..60u8),
                rng.gen_range(0..60u8),
            )
            .into_bytes()
        })
        .collect()
}

/// `cities` (paper avg. 232.2 bytes): world-city records.
pub fn cities(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6a73_0002);
    let countries = [
        ("Germany", "DE", "Europe/Berlin"),
        ("Japan", "JP", "Asia/Tokyo"),
        ("Brazil", "BR", "America/Sao_Paulo"),
        ("Australia", "AU", "Australia/Sydney"),
        ("Canada", "CA", "America/Toronto"),
    ];
    (0..count)
        .map(|_| {
            let (country, code, tz) = countries[rng.gen_range(0..countries.len())];
            let name = {
                let mut n = word(&mut rng, 7);
                n.get_mut(0..1).map(|_| ()).unwrap_or(());
                let mut c = n.remove(0).to_ascii_uppercase().to_string();
                c.push_str(&n);
                c
            };
            format!(
                "{{\"name\":\"{}\",\"country\":\"{}\",\"country_code\":\"{}\",\"admin1\":\"{}\",\"lat\":{}.{:05},\"lng\":-{}.{:05},\"population\":{},\"elevation_m\":{},\"timezone\":\"{}\",\"feature_code\":\"PPL\",\"ids\":{{\"geoname\":{},\"wikidata\":\"Q{}\"}}}}",
                name,
                country,
                code,
                word(&mut rng, 8),
                rng.gen_range(0..80u8),
                rng.gen_range(0..99_999u32),
                rng.gen_range(0..170u8),
                rng.gen_range(0..99_999u32),
                rng.gen_range(1000..20_000_000u64),
                rng.gen_range(0..3000u32),
                tz,
                rng.gen_range(100_000..9_999_999u64),
                rng.gen_range(1000..999_999u64),
            )
            .into_bytes()
        })
        .collect()
}

/// `unece` (paper avg. 4494.8 bytes): large country trade-facilitation
/// records with repeated sub-structures.
pub fn unece(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6a73_0003);
    let regions = ["Europe", "Asia-Pacific", "Africa", "Americas"];
    (0..count)
        .map(|_| {
            let country = {
                let mut n = word(&mut rng, 8);
                let c = n.remove(0).to_ascii_uppercase();
                format!("{c}{n}")
            };
            let code = word(&mut rng, 3).to_uppercase();
            // ~18 indicator sub-objects of ~220 bytes each plus a header.
            let indicators: Vec<String> = (0..18)
                .map(|k| {
                    format!(
                        "{{\"indicator_id\":\"TF{:03}\",\"section\":\"{}\",\"title\":\"{} {} {} for {}\",\"implemented\":{},\"score\":{}.{},\"year\":{},\"source\":\"https://unece.org/trade/{}/{}\",\"notes\":\"{} {} {} {} {}\"}}",
                        k + 1,
                        pick(&mut rng, &["transparency", "formalities", "institutional", "paperless", "transit"]),
                        word(&mut rng, 9),
                        word(&mut rng, 6),
                        word(&mut rng, 8),
                        word(&mut rng, 7),
                        if rng.gen_bool(0.7) { "true" } else { "false" },
                        rng.gen_range(0..100u8),
                        rng.gen_range(0..10u8),
                        2015 + rng.gen_range(0..9u16),
                        word(&mut rng, 6),
                        digits(&mut rng, 4),
                        word(&mut rng, 8),
                        word(&mut rng, 5),
                        word(&mut rng, 9),
                        word(&mut rng, 7),
                        word(&mut rng, 6),
                    )
                })
                .collect();
            format!(
                "{{\"country\":\"{}\",\"iso3\":\"{}\",\"region\":\"{}\",\"income_group\":\"{}\",\"population\":{},\"gdp_usd_m\":{},\"last_updated\":\"2023-{:02}-{:02}\",\"contact\":{{\"agency\":\"Ministry of {} and {}\",\"email\":\"tfa@{}.gov\",\"phone\":\"+{}\"}},\"indicators\":[{}]}}",
                country,
                code,
                pick(&mut rng, &regions),
                pick(&mut rng, &["High income", "Upper middle income", "Lower middle income"]),
                rng.gen_range(100_000..1_400_000_000u64),
                rng.gen_range(1_000..25_000_000u64),
                rng.gen_range(1..13u8),
                rng.gen_range(1..29u8),
                word(&mut rng, 8),
                word(&mut rng, 7),
                country.to_lowercase(),
                digits(&mut rng, 11),
                indicators.join(","),
            )
            .into_bytes()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg_len(records: &[Vec<u8>]) -> f64 {
        records.iter().map(|r| r.len()).sum::<usize>() as f64 / records.len() as f64
    }

    #[test]
    fn json_records_parse_with_the_json_substrate_grammar() {
        // Cheap structural sanity without depending on pbc-json: balanced
        // braces/brackets and quotes.
        for gen in [github, cities, unece] {
            for rec in gen(20, 3) {
                let s = String::from_utf8(rec).unwrap();
                assert_eq!(s.matches('{').count(), s.matches('}').count(), "{s}");
                assert_eq!(s.matches('[').count(), s.matches(']').count());
                assert_eq!(s.matches('"').count() % 2, 0);
                assert!(s.starts_with('{') && s.ends_with('}'));
            }
        }
    }

    #[test]
    fn average_lengths_track_table2() {
        assert!(
            (avg_len(&github(100, 1)) - 863.8).abs() < 220.0,
            "github {}",
            avg_len(&github(100, 1))
        );
        assert!(
            (avg_len(&cities(200, 1)) - 232.2).abs() < 60.0,
            "cities {}",
            avg_len(&cities(200, 1))
        );
        assert!(
            (avg_len(&unece(40, 1)) - 4494.8).abs() < 1200.0,
            "unece {}",
            avg_len(&unece(40, 1))
        );
    }

    #[test]
    fn records_share_keys_but_not_values() {
        let a = String::from_utf8(github(2, 5)[0].clone()).unwrap();
        let b = String::from_utf8(github(2, 5)[1].clone()).unwrap();
        assert!(a.contains("\"payload\"") && b.contains("\"payload\""));
        assert_ne!(a, b);
    }
}
