//! Generators for the log datasets (Android, Apache, BGL, HDFS, Hadoop and
//! the industrial cloud log "AliLogs").
//!
//! Each generator emits lines from a small set of per-system templates with
//! realistic variable distributions (timestamps, thread/process ids, block
//! and container identifiers, durations), matching the Table 2 average line
//! lengths.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::kv::{digits, hex, pick, word};

/// A `HH:MM:SS` wall-clock string advancing roughly monotonically.
fn clock(rng: &mut SmallRng, i: usize) -> String {
    let base = 36_000 + i * 2 + rng.gen_range(0..2);
    format!(
        "{:02}:{:02}:{:02}",
        (base / 3600) % 24,
        (base / 60) % 60,
        base % 60
    )
}

/// `Android` (paper avg. 129.7 bytes): logcat-style lines.
pub fn android(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1060_0001);
    let tags = [
        ("ActivityManager", "START u0 {act=android.intent.action.MAIN cmp=com.tencent.mm/.ui.LauncherUI} from uid"),
        ("PowerManagerService", "acquire lock=android.os.BinderProxy@a1b2c3, flags=0x1, tag=*job*/com.android.systemui uid"),
        ("WindowManager", "Relayout Window{f00ba4 u0 com.miui.home/com.miui.home.launcher.Launcher}: viewVisibility=0 uid"),
        ("ConnectivityService", "notifyType CAP_CHANGED for NetworkAgentInfo [WIFI () - 100] score"),
    ];
    (0..count)
        .map(|i| {
            let (tag, body) = tags[rng.gen_range(0..tags.len())];
            format!(
                "06-13 {}.{} {:5} {:5} I {}: {} {}",
                clock(&mut rng, i),
                digits(&mut rng, 3),
                rng.gen_range(1000..32_000u32),
                rng.gen_range(1000..32_000u32),
                tag,
                body,
                rng.gen_range(1000..20_000u32),
            )
            .into_bytes()
        })
        .collect()
}

/// `Apache` (paper avg. 63.9 bytes): error-log notices.
pub fn apache(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1060_0002);
    let bodies = [
        "jk2_init() Found child {} in slot {}",
        "workerEnv.init() ok workers2.properties {}",
        "mod_jk child workerEnv in error state {}",
    ];
    (0..count)
        .map(|i| {
            let body = bodies[rng.gen_range(0..bodies.len())]
                .replacen("{}", &rng.gen_range(1000..9999u32).to_string(), 1)
                .replacen("{}", &rng.gen_range(1..12u32).to_string(), 1);
            format!("[Jun 13 {} 2023] [notice] {}", clock(&mut rng, i), body).into_bytes()
        })
        .collect()
}

/// `BGL` (paper avg. 164.1 bytes): Blue Gene/L RAS kernel events.
pub fn bgl(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1060_0003);
    let events = [
        "instruction cache parity error corrected",
        "data TLB error interrupt",
        "generating core.{} because of fatal signal",
        "ciod: Error reading message prefix after LOGIN_MESSAGE on CioStream socket to 10.0.{}.{}",
    ];
    (0..count)
        .map(|_| {
            let rack = rng.gen_range(0..64u32);
            let node = rng.gen_range(0..32u32);
            let loc = format!(
                "R{:02}-M1-N{}-C:J{:02}-U{:02}",
                rack,
                node % 16,
                rng.gen_range(2..18u32),
                rng.gen_range(1..64u32)
            );
            let ts = 1_117_800_000 + rng.gen_range(0..3_000_000u64);
            let event = events[rng.gen_range(0..events.len())]
                .replacen("{}", &rng.gen_range(100..9000u32).to_string(), 1)
                .replacen("{}", &rng.gen_range(0..255u32).to_string(), 1);
            format!(
                "- {} 2005.06.{:02} {} 2005-06-{:02}-{}.{} {} RAS KERNEL INFO {}",
                ts,
                rng.gen_range(1..28u32),
                loc,
                rng.gen_range(1..28u32),
                clock(&mut rng, 0).replace(':', "."),
                digits(&mut rng, 6),
                loc,
                event,
            )
            .into_bytes()
        })
        .collect()
}

/// `HDFS` (paper avg. 141.2 bytes): DataNode/namesystem block events.
pub fn hdfs(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1060_0004);
    (0..count)
        .map(|i| {
            let blk: i64 = -1_600_000_000_000_000_000i64 - rng.gen_range(0..9_000_000_000_000_000i64);
            let ip = format!("10.250.{}.{}", rng.gen_range(0..32u8), rng.gen_range(0..255u8));
            match i % 3 {
                0 => format!(
                    "081109 {} {} INFO dfs.DataNode$DataXceiver: Receiving block blk_{} src: /{}:{} dest: /{}:50010",
                    digits(&mut rng, 6),
                    rng.gen_range(100..999u32),
                    blk,
                    ip,
                    rng.gen_range(33_000..60_000u32),
                    ip,
                ),
                1 => format!(
                    "081109 {} {} INFO dfs.FSNamesystem: BLOCK* NameSystem.addStoredBlock: blockMap updated: {}:50010 is added to blk_{} size {}",
                    digits(&mut rng, 6),
                    rng.gen_range(10..99u32),
                    ip,
                    blk,
                    rng.gen_range(1_000..67_108_864u32),
                ),
                _ => format!(
                    "081109 {} {} INFO dfs.DataNode$PacketResponder: PacketResponder {} for block blk_{} terminating",
                    digits(&mut rng, 6),
                    rng.gen_range(100..999u32),
                    rng.gen_range(0..3u8),
                    blk,
                ),
            }
            .into_bytes()
        })
        .collect()
}

/// `Hadoop` (paper avg. 266.9 bytes): MapReduce application-master lines.
pub fn hadoop(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1060_0005);
    let classes = [
        "org.apache.hadoop.mapreduce.v2.app.job.impl.TaskAttemptImpl",
        "org.apache.hadoop.yarn.client.api.impl.ContainerManagementProtocolProxy",
        "org.apache.hadoop.mapred.MapTask",
    ];
    (0..count)
        .map(|i| {
            let job = format!("job_{}_{:04}", 1_445_000_000 + rng.gen_range(0..99_999u64), rng.gen_range(1..300u32));
            let attempt = format!(
                "attempt_{}_{:04}_m_{:06}_{}",
                1_445_000_000 + rng.gen_range(0..99_999u64),
                rng.gen_range(1..300u32),
                rng.gen_range(0..4000u32),
                rng.gen_range(0..3u8)
            );
            format!(
                "2023-06-13 {},{} INFO [AsyncDispatcher event handler] {}: {} TaskAttempt Transitioned from RUNNING to SUCCEEDED on container_{}_{:04}_01_{:06} host node-{}.cluster.local:{} progress {}.{}",
                clock(&mut rng, i),
                digits(&mut rng, 3),
                pick(&mut rng, &classes),
                attempt,
                1_445_000_000 + rng.gen_range(0..99_999u64),
                rng.gen_range(1..300u32),
                rng.gen_range(0..4000u32),
                rng.gen_range(1..64u32),
                rng.gen_range(8000..9000u32),
                rng.gen_range(0..100u32),
                digits(&mut rng, 2),
            )
            .replace("{job}", &job)
            .into_bytes()
        })
        .collect()
}

/// `AliLogs` (paper avg. 299.2 bytes): wide structured industrial cloud log
/// with many `key=value` pairs.
pub fn alilogs(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1060_0006);
    let services = [
        "trade-core",
        "risk-engine",
        "inventory-sync",
        "settle-batch",
    ];
    let results = ["SUCCESS", "SUCCESS", "SUCCESS", "TIMEOUT", "RETRY"];
    (0..count)
        .map(|i| {
            format!(
                "2023-06-13T{}.{:03}+08:00|level=INFO|service={}|trace_id={}|span_id={}|rpc=com.alibaba.{}.api.{}Service.process|caller=app-{:03}.ea119|result={}|rt_ms={}|req_size={}|resp_size={}|retry={}|pool=default-{}|tenant=MYBK{}",
                clock(&mut rng, i),
                rng.gen_range(0..1000u32),
                pick(&mut rng, &services),
                hex(&mut rng, 32),
                hex(&mut rng, 16),
                word(&mut rng, 7),
                word(&mut rng, 9),
                rng.gen_range(0..512u32),
                pick(&mut rng, &results),
                rng.gen_range(1..2500u32),
                rng.gen_range(100..20_000u32),
                rng.gen_range(100..50_000u32),
                rng.gen_range(0..3u8),
                rng.gen_range(1..16u8),
                digits(&mut rng, 8),
            )
            .into_bytes()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg_len(records: &[Vec<u8>]) -> f64 {
        records.iter().map(|r| r.len()).sum::<usize>() as f64 / records.len() as f64
    }

    #[test]
    fn line_lengths_track_table2() {
        assert!(
            (avg_len(&android(300, 1)) - 129.7).abs() < 35.0,
            "android {}",
            avg_len(&android(300, 1))
        );
        assert!(
            (avg_len(&apache(300, 1)) - 63.9).abs() < 18.0,
            "apache {}",
            avg_len(&apache(300, 1))
        );
        assert!(
            (avg_len(&bgl(300, 1)) - 164.1).abs() < 45.0,
            "bgl {}",
            avg_len(&bgl(300, 1))
        );
        assert!(
            (avg_len(&hdfs(300, 1)) - 141.2).abs() < 35.0,
            "hdfs {}",
            avg_len(&hdfs(300, 1))
        );
        assert!(
            (avg_len(&hadoop(300, 1)) - 266.9).abs() < 65.0,
            "hadoop {}",
            avg_len(&hadoop(300, 1))
        );
        assert!(
            (avg_len(&alilogs(300, 1)) - 299.2).abs() < 75.0,
            "alilogs {}",
            avg_len(&alilogs(300, 1))
        );
    }

    #[test]
    fn lines_are_single_line_ascii_text() {
        for gen in [android, apache, bgl, hdfs, hadoop, alilogs] {
            for line in gen(50, 5) {
                assert!(!line.contains(&b'\n'));
                assert!(
                    line.iter().all(|&b| (0x20..0x7f).contains(&b)),
                    "non-printable byte"
                );
            }
        }
    }

    #[test]
    fn hdfs_lines_parse_with_the_drain_miner_shape() {
        // Sanity: the three HDFS formats are distinguishable by token count
        // or leading constants (what the log substrate relies on).
        let lines = hdfs(30, 2);
        let first_words: std::collections::HashSet<String> = lines
            .iter()
            .map(|l| {
                String::from_utf8_lossy(l)
                    .split(' ')
                    .nth(3)
                    .unwrap_or("")
                    .to_string()
            })
            .collect();
        assert!(first_words.contains("INFO"));
    }
}
