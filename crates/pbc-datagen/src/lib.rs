//! # pbc-datagen — synthetic stand-ins for the paper's datasets
//!
//! The PBC paper evaluates on five proprietary TierBase key-value datasets
//! (`KV1`–`KV5`), six log corpora (Android, Apache, BGL, HDFS, Hadoop and an
//! industrial cloud log, "AliLogs"), three JSON corpora (`github`, `cities`,
//! `unece`) and two boundary-case datasets (`urls`, `uuid`) — see Table 2.
//! None of the production datasets are public, and this reproduction does
//! not ship the public corpora either; instead this crate generates
//! synthetic corpora that preserve the properties PBC (and the baselines)
//! are sensitive to:
//!
//! * records of one dataset are produced from a small number of fixed
//!   templates (the "machine-generated" property: shared common
//!   subsequences with varying fields);
//! * field value distributions (digit counts, identifier shapes, enum-like
//!   strings, free text) mimic each dataset family;
//! * average record lengths match Table 2;
//! * `uuid` (and to a lesser degree `urls`) intentionally has almost no
//!   cross-record redundancy, reproducing the paper's "capacity boundary"
//!   observation.
//!
//! All generators are seeded and deterministic, so experiment runs are
//! reproducible.

#![forbid(unsafe_code)]

pub mod json;
pub mod kv;
pub mod logs;
pub mod registry;
pub mod web;

pub use registry::{Dataset, DatasetKind};

/// Convenience: generate a dataset by name with its default record count.
///
/// Returns `None` for unknown names. Names are the lowercase forms used in
/// the paper's tables (`"kv1"`, `"android"`, `"unece"`, ...).
pub fn generate_by_name(name: &str, count: usize, seed: u64) -> Option<Vec<Vec<u8>>> {
    Dataset::from_name(name).map(|d| d.generate(count, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_by_name_resolves_paper_names() {
        assert!(generate_by_name("kv1", 10, 1).is_some());
        assert!(generate_by_name("unece", 5, 1).is_some());
        assert!(generate_by_name("no-such-dataset", 5, 1).is_none());
    }

    #[test]
    fn all_datasets_produce_requested_counts() {
        for dataset in Dataset::all() {
            let records = dataset.generate(50, 7);
            assert_eq!(records.len(), 50, "{}", dataset.name());
            assert!(records.iter().all(|r| !r.is_empty()), "{}", dataset.name());
        }
    }

    #[test]
    fn average_lengths_are_close_to_table2() {
        for dataset in Dataset::all() {
            let records = dataset.generate(400, 11);
            let avg: f64 =
                records.iter().map(|r| r.len()).sum::<usize>() as f64 / records.len() as f64;
            let target = dataset.paper_avg_len();
            let rel = (avg - target).abs() / target;
            assert!(
                rel < 0.35,
                "{}: avg {:.1} vs paper {:.1} (rel {:.2})",
                dataset.name(),
                avg,
                target,
                rel
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for dataset in [Dataset::Kv2, Dataset::Hdfs, Dataset::Github, Dataset::Uuid] {
            let a = dataset.generate(30, 99);
            let b = dataset.generate(30, 99);
            assert_eq!(a, b, "{}", dataset.name());
            let c = dataset.generate(30, 100);
            assert_ne!(a, c, "{}", dataset.name());
        }
    }
}
