//! The dataset registry: every Table 2 dataset behind one enum.

use crate::{json, kv, logs, web};

/// Dataset family, used by the harness to decide which specialised
/// baselines apply (LogReducer only on logs, Ion/BinPack only on JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Production key-value records (KV1–KV5).
    KeyValue,
    /// System / application logs.
    Log,
    /// JSON documents.
    Json,
    /// Capacity-boundary datasets (urls, uuid).
    Boundary,
}

/// One of the paper's 16 evaluation datasets (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Dataset {
    Kv1,
    Kv2,
    Kv3,
    Kv4,
    Kv5,
    Android,
    Apache,
    Bgl,
    Hdfs,
    Hadoop,
    AliLogs,
    Github,
    Cities,
    Unece,
    Urls,
    Uuid,
}

impl Dataset {
    /// All datasets in the order of Table 2.
    pub fn all() -> [Dataset; 16] {
        use Dataset::*;
        [
            Kv1, Kv2, Kv3, Kv4, Kv5, Android, Apache, Bgl, Hdfs, Hadoop, AliLogs, Github, Cities,
            Unece, Urls, Uuid,
        ]
    }

    /// Lowercase name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Kv1 => "kv1",
            Dataset::Kv2 => "kv2",
            Dataset::Kv3 => "kv3",
            Dataset::Kv4 => "kv4",
            Dataset::Kv5 => "kv5",
            Dataset::Android => "android",
            Dataset::Apache => "apache",
            Dataset::Bgl => "bgl",
            Dataset::Hdfs => "hdfs",
            Dataset::Hadoop => "hadoop",
            Dataset::AliLogs => "alilogs",
            Dataset::Github => "github",
            Dataset::Cities => "cities",
            Dataset::Unece => "unece",
            Dataset::Urls => "urls",
            Dataset::Uuid => "uuid",
        }
    }

    /// Look a dataset up by its [`Dataset::name`] (case-insensitive).
    pub fn from_name(name: &str) -> Option<Dataset> {
        let lower = name.to_ascii_lowercase();
        Dataset::all().into_iter().find(|d| d.name() == lower)
    }

    /// Dataset family.
    pub fn kind(&self) -> DatasetKind {
        match self {
            Dataset::Kv1 | Dataset::Kv2 | Dataset::Kv3 | Dataset::Kv4 | Dataset::Kv5 => {
                DatasetKind::KeyValue
            }
            Dataset::Android
            | Dataset::Apache
            | Dataset::Bgl
            | Dataset::Hdfs
            | Dataset::Hadoop
            | Dataset::AliLogs => DatasetKind::Log,
            Dataset::Github | Dataset::Cities | Dataset::Unece => DatasetKind::Json,
            Dataset::Urls | Dataset::Uuid => DatasetKind::Boundary,
        }
    }

    /// Average record length reported in the paper's Table 2 (bytes).
    pub fn paper_avg_len(&self) -> f64 {
        match self {
            Dataset::Kv1 => 71.5,
            Dataset::Kv2 => 158.6,
            Dataset::Kv3 => 90.6,
            Dataset::Kv4 => 44.1,
            Dataset::Kv5 => 53.1,
            Dataset::Android => 129.7,
            Dataset::Apache => 63.9,
            Dataset::Bgl => 164.1,
            Dataset::Hdfs => 141.2,
            Dataset::Hadoop => 266.9,
            Dataset::AliLogs => 299.2,
            Dataset::Github => 863.8,
            Dataset::Cities => 232.2,
            Dataset::Unece => 4494.8,
            Dataset::Urls => 63.1,
            Dataset::Uuid => 35.6,
        }
    }

    /// Record count reported in the paper's Table 2 (for documentation; the
    /// harness uses [`Dataset::default_count`]).
    pub fn paper_record_count(&self) -> &'static str {
        match self {
            Dataset::Kv1 => "33.1B",
            Dataset::Kv2 => "20.9B",
            Dataset::Kv3 => "2.86M",
            Dataset::Kv4 => "418K",
            Dataset::Kv5 => "2.68M",
            Dataset::Android => "1.55M",
            Dataset::Apache => "56.5K",
            Dataset::Bgl => "4.75M",
            Dataset::Hdfs => "11.2M",
            Dataset::Hadoop => "2.61M",
            Dataset::AliLogs => "350K",
            Dataset::Github => "8.6K",
            Dataset::Cities => "148K",
            Dataset::Unece => "0.81K",
            Dataset::Urls => "100K",
            Dataset::Uuid => "100K",
        }
    }

    /// Laptop-scale record count used by the benchmark harness by default,
    /// sized so every dataset yields a few MB of raw data at most.
    pub fn default_count(&self) -> usize {
        match self.kind() {
            DatasetKind::KeyValue => 8_000,
            DatasetKind::Log => 6_000,
            DatasetKind::Json => match self {
                Dataset::Unece => 400,
                Dataset::Github => 1_500,
                _ => 5_000,
            },
            DatasetKind::Boundary => 8_000,
        }
    }

    /// Generate `count` records with the given seed.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<Vec<u8>> {
        match self {
            Dataset::Kv1 => kv::kv1(count, seed),
            Dataset::Kv2 => kv::kv2(count, seed),
            Dataset::Kv3 => kv::kv3(count, seed),
            Dataset::Kv4 => kv::kv4(count, seed),
            Dataset::Kv5 => kv::kv5(count, seed),
            Dataset::Android => logs::android(count, seed),
            Dataset::Apache => logs::apache(count, seed),
            Dataset::Bgl => logs::bgl(count, seed),
            Dataset::Hdfs => logs::hdfs(count, seed),
            Dataset::Hadoop => logs::hadoop(count, seed),
            Dataset::AliLogs => logs::alilogs(count, seed),
            Dataset::Github => json::github(count, seed),
            Dataset::Cities => json::cities(count, seed),
            Dataset::Unece => json::unece(count, seed),
            Dataset::Urls => web::urls(count, seed),
            Dataset::Uuid => web::uuid(count, seed),
        }
    }

    /// Generate the default laptop-scale corpus.
    pub fn generate_default(&self, seed: u64) -> Vec<Vec<u8>> {
        self.generate(self.default_count(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_sixteen_datasets() {
        assert_eq!(Dataset::all().len(), 16);
        let names: std::collections::HashSet<&str> =
            Dataset::all().iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn from_name_roundtrips_and_is_case_insensitive() {
        for d in Dataset::all() {
            assert_eq!(Dataset::from_name(d.name()), Some(d));
            assert_eq!(Dataset::from_name(&d.name().to_uppercase()), Some(d));
        }
        assert_eq!(Dataset::from_name("nope"), None);
    }

    #[test]
    fn kinds_partition_the_datasets() {
        let kv = Dataset::all()
            .iter()
            .filter(|d| d.kind() == DatasetKind::KeyValue)
            .count();
        let logs = Dataset::all()
            .iter()
            .filter(|d| d.kind() == DatasetKind::Log)
            .count();
        let json = Dataset::all()
            .iter()
            .filter(|d| d.kind() == DatasetKind::Json)
            .count();
        let boundary = Dataset::all()
            .iter()
            .filter(|d| d.kind() == DatasetKind::Boundary)
            .count();
        assert_eq!((kv, logs, json, boundary), (5, 6, 3, 2));
    }

    #[test]
    fn default_counts_are_laptop_scale() {
        for d in Dataset::all() {
            let bytes = d.default_count() as f64 * d.paper_avg_len();
            assert!(
                bytes < 8.0 * 1024.0 * 1024.0,
                "{} would be {} bytes",
                d.name(),
                bytes
            );
            assert!(d.default_count() >= 400);
        }
    }
}
