//! The metrics registry and its recording handles.
//!
//! A [`MetricsRegistry`] owns named metrics; callers hold cheap cloneable
//! handles ([`Counter`], [`Gauge`], [`Histogram`]) that record through
//! shared atomics. Registration takes a short mutex; **recording never
//! locks**. A registry built with [`MetricsRegistry::disabled`] hands out
//! no-op handles whose record paths do nothing at all — not even read the
//! clock — which is what makes "instrumentation off" a fair baseline for
//! overhead measurements.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::{HistogramCore, HistogramSnapshot};

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named counters, gauges, and latency histograms.
///
/// Metric lookup is idempotent: asking for the same name twice returns a
/// handle to the same underlying metric, so independent subsystems can
/// share a metric by name. Asking for an existing name *as a different
/// kind* panics — that is always a programming error.
///
/// ```
/// use pbc_obs::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let requests = registry.counter("requests_total");
/// requests.inc();
/// registry.counter("requests_total").add(2); // same metric
/// let latency = registry.histogram("request_latency_ns");
/// latency.record(1_250);
///
/// let snap = registry.snapshot();
/// assert_eq!(snap.counters["requests_total"], 3);
/// assert_eq!(snap.histograms["request_latency_ns"].count, 1);
/// ```
pub struct MetricsRegistry {
    /// `None` = disabled: every handle handed out is a no-op.
    metrics: Option<Mutex<BTreeMap<String, Metric>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.metrics {
            None => write!(f, "MetricsRegistry(disabled)"),
            Some(m) => {
                // pbc-allow(panic): registry mutex poisoning only follows a panic elsewhere; keep that panic primary
                let names = m.lock().expect("metrics registry poisoned").len();
                write!(f, "MetricsRegistry({names} metrics)")
            }
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            metrics: Some(Mutex::new(BTreeMap::new())),
        }
    }

    /// A disabled registry: every handle it returns is a no-op and
    /// [`MetricsRegistry::snapshot`] is always empty. Recording through
    /// no-op handles compiles down to a branch on `None` — timers do not
    /// even read the clock.
    pub fn disabled() -> Self {
        MetricsRegistry { metrics: None }
    }

    /// Whether this registry actually records.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    fn register<T>(
        &self,
        name: &str,
        kind: &'static str,
        make: impl FnOnce() -> Metric,
        get: impl FnOnce(&Metric) -> Option<T>,
    ) -> Option<T> {
        let metrics = self.metrics.as_ref()?;
        // pbc-allow(panic): registry mutex poisoning only follows a panic elsewhere; keep that panic primary
        let mut map = metrics.lock().expect("metrics registry poisoned");
        let metric = map.entry(name.to_string()).or_insert_with(make);
        match get(metric) {
            Some(handle) => Some(handle),
            // pbc-allow(panic): re-registering a name as a different metric type is a programmer error, not a runtime condition
            None => panic!(
                "metric `{name}` already registered as a {}, requested as a {kind}",
                metric.kind()
            ),
        }
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.register(
            name,
            "counter",
            || Metric::Counter(Arc::new(AtomicU64::new(0))),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        ))
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.register(
            name,
            "gauge",
            || Metric::Gauge(Arc::new(AtomicU64::new(0))),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        ))
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.register(
            name,
            "histogram",
            || Metric::Histogram(Arc::new(HistogramCore::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        ))
    }

    /// A point-in-time view of every registered metric, keyed by name in
    /// sorted order. Each individual metric is read atomically; the
    /// snapshot as a whole is taken under the registration mutex, so no
    /// metric can be added halfway through.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let Some(metrics) = self.metrics.as_ref() else {
            return snap;
        };
        // pbc-allow(panic): registry mutex poisoning only follows a panic elsewhere; keep that panic primary
        let map = metrics.lock().expect("metrics registry poisoned");
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters
                        .insert(name.clone(), c.load(Ordering::Relaxed));
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.load(Ordering::Relaxed));
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A monotonically increasing counter handle. Cloning is cheap; clones
/// share the same underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// An active counter not attached to any registry — it counts, but
    /// never appears in a snapshot. Useful for components that keep their
    /// own accessors (e.g. a cache's hit/miss counts) when no registry is
    /// in play.
    pub fn standalone() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// A handle whose operations all do nothing.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle holding one `u64` that can be set to arbitrary values.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// An active gauge not attached to any registry.
    pub fn standalone() -> Self {
        Gauge(Some(Arc::new(AtomicU64::new(0))))
    }

    /// A handle whose operations all do nothing.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A histogram handle; see [`crate::histogram`] for bucket semantics.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Histogram(noop)"),
            Some(h) => write!(f, "Histogram(count={})", h.snapshot().count),
        }
    }
}

impl Histogram {
    /// An active histogram not attached to any registry.
    pub fn standalone() -> Self {
        Histogram(Some(Arc::new(HistogramCore::new())))
    }

    /// A handle whose operations all do nothing.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Whether this handle actually records (false for no-op handles).
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one sample (e.g. a duration in nanoseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Start a timer that records its elapsed **nanoseconds** into this
    /// histogram when dropped. On a no-op handle the timer never reads
    /// the clock.
    #[inline]
    pub fn start_timer(&self) -> Timer {
        Timer {
            histogram: self.clone(),
            start: self.0.is_some().then(Instant::now),
        }
    }

    /// Snapshot just this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |h| h.snapshot())
    }
}

/// Records elapsed nanoseconds into a [`Histogram`] when dropped (or
/// explicitly via [`Timer::observe`]). Obtained from
/// [`Histogram::start_timer`].
#[derive(Debug)]
pub struct Timer {
    histogram: Histogram,
    start: Option<Instant>,
}

impl Timer {
    /// Stop the timer now and record the elapsed time.
    pub fn observe(self) {
        drop(self);
    }

    /// Discard the timer without recording anything.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.histogram.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// A point-in-time view of a whole registry; see
/// [`MetricsRegistry::snapshot`]. Render it with
/// [`Snapshot::to_prometheus`] or [`Snapshot::to_json`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram views by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.value(), 5);
        assert_eq!(r.snapshot().counters["x"], 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = MetricsRegistry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn disabled_registry_is_inert() {
        let r = MetricsRegistry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("x");
        c.add(10);
        assert_eq!(c.value(), 0);
        let h = r.histogram("h");
        h.record(5);
        h.start_timer().observe();
        assert_eq!(h.snapshot().count, 0);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn timer_records_elapsed_ns() {
        let h = Histogram::standalone();
        {
            let t = h.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(2));
            t.observe();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.max >= 1_000_000, "timer recorded {} ns", snap.max);
    }

    #[test]
    fn timer_cancel_records_nothing() {
        let h = Histogram::standalone();
        h.start_timer().cancel();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn gauge_set_wins_last() {
        let r = MetricsRegistry::new();
        let g = r.gauge("g");
        g.set(7);
        g.set(3);
        assert_eq!(r.snapshot().gauges["g"], 3);
    }
}
