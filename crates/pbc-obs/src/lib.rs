//! `pbc-obs` — lock-free observability for the PBC engine.
//!
//! Three pieces, deliberately dependency-free:
//!
//! 1. **[`MetricsRegistry`]** — named [`Counter`]s, [`Gauge`]s, and
//!    log-linear (HDR-style) latency [`Histogram`]s. Handles are cheap
//!    clones recording through shared atomics with `Relaxed` ordering;
//!    nothing on the record path takes a lock. [`MetricsRegistry::snapshot`]
//!    produces a [`Snapshot`] with p50/p90/p99/p999/max per histogram.
//! 2. **Exporters** — [`Snapshot::to_prometheus`] renders the Prometheus
//!    text exposition format; [`Snapshot::to_json`] a self-contained JSON
//!    document. Both are deterministic (sorted metric names).
//! 3. **[`TraceRing`]** — a bounded ring of structured [`Event`]s (spills,
//!    compaction job lifecycle, manifest generation bumps, scans,
//!    background errors with the actual error string), timestamped on a
//!    monotonic clock.
//!
//! The whole crate can be switched off: [`MetricsRegistry::disabled`]
//! hands out no-op handles whose record paths skip even the clock read,
//! making "observability off" a fair baseline when measuring the
//! instrumentation's own overhead.
//!
//! ```
//! use pbc_obs::{Event, MetricsRegistry, TraceRing};
//!
//! let registry = MetricsRegistry::new();
//! let gets = registry.counter("pbc_tier_gets_total");
//! let latency = registry.histogram("pbc_tier_get_latency_ns");
//!
//! gets.inc();
//! let timer = latency.start_timer();
//! // ... do the lookup ...
//! timer.observe();
//!
//! let trace = TraceRing::new(256);
//! trace.record(Event::ManifestGeneration { generation: 1 });
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["pbc_tier_gets_total"], 1);
//! assert_eq!(snap.histograms["pbc_tier_get_latency_ns"].count, 1);
//! println!("{}", snap.to_prometheus());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod histogram;
mod registry;
mod trace;

mod export;

pub use histogram::HistogramSnapshot;
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, Snapshot, Timer};
pub use trace::{Event, TraceEvent, TraceRing};
