//! Log-linear (HDR-style) histogram with lock-free recording.
//!
//! Values are bucketed by their power-of-two magnitude (the *octave*),
//! with each octave split into `2^SUB_BITS = 16` linear sub-buckets, so
//! the relative error of any reported quantile is bounded by one
//! sub-bucket width: at most `1/16 = 6.25%` of the value. The first 16
//! buckets hold the exact values `0..=15` (their "octaves" are narrower
//! than a sub-bucket, so small values are exact).
//!
//! Recording is a handful of relaxed atomic adds — no locks, no
//! allocation — so histograms can sit on get/put hot paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear buckets.
pub const SUB_BITS: u32 = 4;

const SUB_COUNT: usize = 1 << SUB_BITS; // 16

/// Octaves above the exact range: magnitudes `SUB_BITS..=63`.
const OCTAVES: usize = 64 - SUB_BITS as usize;

/// Total bucket count (`16` exact + `60 * 16` log-linear = 976).
pub const BUCKET_COUNT: usize = SUB_COUNT + OCTAVES * SUB_COUNT;

/// Map a value to its bucket index.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let mag = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (mag - SUB_BITS)) as usize) - SUB_COUNT;
    SUB_COUNT + (mag - SUB_BITS) as usize * SUB_COUNT + sub
}

/// Inclusive `(low, high)` value range a bucket covers.
pub(crate) fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_COUNT {
        return (index as u64, index as u64);
    }
    let octave = (index - SUB_COUNT) / SUB_COUNT + SUB_BITS as usize;
    let sub = (index - SUB_COUNT) % SUB_COUNT;
    let shift = octave - SUB_BITS as usize;
    let low = ((SUB_COUNT + sub) as u64) << shift;
    let width = 1u64 << shift;
    (low, low + (width - 1))
}

/// The shared atomic state behind a [`crate::Histogram`] handle.
pub(crate) struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKET_COUNT);
        buckets.resize_with(BUCKET_COUNT, AtomicU64::default);
        HistogramCore {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Four relaxed atomic ops, no locks.
    #[inline]
    pub(crate) fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        // Buckets first, then the total: a sample recorded concurrently
        // bumps its bucket before `count`, so the per-bucket sum read here
        // is always >= the total we report and quantiles never index past
        // the observed distribution.
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_bounds(i).1, n))
            })
            .collect();
        let bucketed: u64 = buckets.iter().map(|&(_, n)| n).sum();
        let count = self.count.load(Ordering::Relaxed).min(bucketed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An immutable point-in-time view of one histogram: non-empty buckets
/// plus total count, sum, and the exact maximum recorded value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of every recorded value (wraps only after `u64::MAX`).
    pub sum: u64,
    /// Largest value recorded, exact (not bucket-rounded).
    pub max: u64,
    /// `(bucket upper bound, samples)` for every non-empty bucket,
    /// ascending by bound.
    buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot (no samples).
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// The non-empty `(upper bound, samples)` buckets, ascending.
    pub fn buckets(&self) -> &[(u64, u64)] {
        &self.buckets
    }

    /// The value at quantile `q` (clamped to `0.0..=1.0`), reported as
    /// the upper bound of the bucket containing that rank — so within
    /// `6.25%` above the true value. Returns 0 with no samples; the top
    /// quantile is capped at [`HistogramSnapshot::max`], which is exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Arithmetic mean of the recorded values, 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn buckets_tile_the_u64_range() {
        // Every bucket's high bound + 1 must be the next bucket's low.
        let mut expected_low = 0u64;
        for i in 0..BUCKET_COUNT {
            let (low, high) = bucket_bounds(i);
            assert_eq!(low, expected_low, "gap before bucket {i}");
            assert!(high >= low);
            if i + 1 == BUCKET_COUNT {
                assert_eq!(high, u64::MAX);
                break;
            }
            expected_low = high + 1;
        }
    }

    #[test]
    fn index_and_bounds_agree() {
        let probes = [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            u64::MAX / 3,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            let (low, high) = bucket_bounds(i);
            assert!(low <= v && v <= high, "value {v} outside bucket {i}");
            // Relative error bound: bucket width <= low / 16 for v >= 16.
            if v >= 16 {
                assert!((high - low) as f64 <= low as f64 / 16.0 + 1.0);
            }
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let core = HistogramCore::new();
        for v in 1..=10_000u64 {
            core.record(v);
        }
        let snap = core.snapshot();
        assert_eq!(snap.count, 10_000);
        assert_eq!(snap.max, 10_000);
        let p50 = snap.p50() as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.07, "p50 = {p50}");
        let p99 = snap.p99() as f64;
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.07, "p99 = {p99}");
        assert!(snap.quantile(1.0) == 10_000);
        assert_eq!(snap.quantile(0.0), snap.buckets()[0].0.min(snap.max));
    }

    #[test]
    fn multithreaded_totals_match_samples() {
        use std::sync::Arc;
        let core = Arc::new(HistogramCore::new());
        let threads = 8u64;
        let per_thread = 50_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let core = Arc::clone(&core);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        // A spread of magnitudes, deterministic per thread.
                        core.record((i * 2_654_435_761 + t) % 1_000_000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = core.snapshot();
        assert_eq!(snap.count, threads * per_thread);
        let bucketed: u64 = snap.buckets().iter().map(|&(_, n)| n).sum();
        assert_eq!(bucketed, snap.count);
    }
}
