//! Render a [`Snapshot`] as Prometheus text exposition format or JSON.
//!
//! Both renderers are allocation-light, dependency-free, and emit
//! metrics in sorted name order (snapshots are `BTreeMap`-backed), so
//! output is deterministic and diff-friendly. Histograms render only
//! their **non-empty** buckets — a log-linear histogram has 976
//! potential buckets but a latency distribution typically occupies a few
//! dozen.

use std::fmt::Write as _;

use crate::registry::Snapshot;

impl Snapshot {
    /// Render as Prometheus text exposition format (version 0.0.4).
    ///
    /// Counters and gauges become single samples with a `# TYPE` header;
    /// each histogram becomes cumulative `_bucket{le="..."}` samples over
    /// its non-empty buckets plus the `+Inf` bucket, `_sum`, and
    /// `_count`.
    ///
    /// ```
    /// use pbc_obs::MetricsRegistry;
    ///
    /// let registry = MetricsRegistry::new();
    /// registry.counter("gets_total").add(3);
    /// registry.histogram("get_ns").record(100);
    /// let text = registry.snapshot().to_prometheus();
    /// assert!(text.contains("# TYPE gets_total counter"));
    /// assert!(text.contains("gets_total 3"));
    /// assert!(text.contains("get_ns_bucket{le=\"+Inf\"} 1"));
    /// assert!(text.contains("get_ns_count 1"));
    /// ```
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for &(bound, count) in hist.buckets() {
                cumulative += count;
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(out, "{name}_sum {}", hist.sum);
            let _ = writeln!(out, "{name}_count {}", hist.count);
        }
        out
    }

    /// Render as a JSON object with `counters`, `gauges`, and
    /// `histograms` members. Each histogram carries `count`, `sum`,
    /// `max`, derived `p50`/`p90`/`p99`/`p999`, and its non-empty
    /// `buckets` as `[upper_bound, count]` pairs.
    ///
    /// ```
    /// use pbc_obs::MetricsRegistry;
    ///
    /// let registry = MetricsRegistry::new();
    /// registry.gauge("l0_segments").set(4);
    /// let json = registry.snapshot().to_json();
    /// assert!(json.contains("\"l0_segments\":4"));
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (name, value) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (name, hist) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
                json_string(name),
                hist.count,
                hist.sum,
                hist.max,
                hist.p50(),
                hist.p90(),
                hist.p99(),
                hist.p999(),
            );
            let mut first_bucket = true;
            for &(bound, count) in hist.buckets() {
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                let _ = write!(out, "[{bound},{count}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Quote and escape a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_ns");
        h.record(1);
        h.record(1);
        h.record(100);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 2"));
        // 100 lands in the [96,103] bucket; cumulative count is 3.
        assert!(text.contains("lat_ns_bucket{le=\"103\"} 3"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_sum 102"));
        assert!(text.contains("lat_ns_count 3"));
    }

    #[test]
    fn json_is_structurally_sound() {
        let r = MetricsRegistry::new();
        r.counter("a_total").inc();
        r.gauge("b").set(2);
        r.histogram("c_ns").record(50);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a_total\":1"));
        assert!(json.contains("\"b\":2"));
        assert!(json.contains("\"count\":1"));
        // Balanced braces/brackets (no nesting errors).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_snapshot_renders_cleanly() {
        let snap = MetricsRegistry::disabled().snapshot();
        assert_eq!(snap.to_prometheus(), "");
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }
}
