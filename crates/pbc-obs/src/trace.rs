//! A bounded in-memory ring of structured background-job events.
//!
//! The ring answers "what has the engine been *doing*" where metrics
//! answer "how much / how fast": each spill, compaction commit, manifest
//! bump, scan, and background error lands here as a typed [`Event`] with
//! a monotonic timestamp. Capacity is fixed at construction; once full,
//! the oldest events are dropped and counted, so tracing can stay on in
//! production without unbounded memory.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// A structured trace event emitted by the engine's foreground and
/// background paths.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A spill drain started: `shards` hot shards are being frozen.
    SpillStarted {
        /// Hot shards selected for this drain.
        shards: usize,
    },
    /// A spill finished and its segment is durable + visible.
    SpillFinished {
        /// Id of the new L0 segment.
        segment_id: u64,
        /// Live records written.
        records: u64,
        /// Tombstones written.
        tombstones: u64,
        /// Segment file size in bytes.
        bytes: u64,
    },
    /// The planner scheduled a compaction job.
    CompactionPlanned {
        /// L0 segments feeding the merge.
        l0_inputs: usize,
        /// L1 partitions feeding the merge.
        l1_inputs: usize,
        /// Inclusive lower bound of the reserved key range.
        min_key: Vec<u8>,
        /// Inclusive upper bound of the reserved key range; `None` = +inf.
        max_key: Option<Vec<u8>>,
    },
    /// A compaction job committed a new manifest generation.
    CompactionCommitted {
        /// Manifest generation the commit produced.
        generation: u64,
        /// Input segments retired.
        inputs: usize,
        /// Output partitions written.
        outputs: usize,
        /// Total bytes of the retired input segment files.
        input_bytes: u64,
        /// Total bytes of the output partition files.
        output_bytes: u64,
        /// Live entries surviving the merge.
        live_entries: u64,
    },
    /// A compaction job stopped without committing.
    CompactionAborted {
        /// Why the job aborted (reservation race, stale plan, ...).
        reason: String,
    },
    /// The manifest advanced to a new generation (spill or compaction).
    ManifestGeneration {
        /// The new generation number.
        generation: u64,
    },
    /// A range scan was opened.
    ScanOpened {
        /// Cold segments the scan's range intersects.
        segments: usize,
    },
    /// A range scan was dropped.
    ScanClosed {
        /// Rows the scan yielded.
        rows: u64,
        /// Cold blocks decoded on the scan's behalf.
        blocks_decoded: u64,
    },
    /// A background maintenance pass failed.
    BackgroundError {
        /// Human-readable description of the job that failed.
        job: String,
        /// The actual error string.
        message: String,
    },
    /// A WAL shard sealed its active segment and rotated to a new one.
    WalRotated {
        /// Shard whose segment rotated.
        shard: usize,
        /// Sequence number of the sealed segment.
        sealed_seq: u64,
        /// Bytes the sealed segment holds.
        sealed_bytes: u64,
    },
    /// A WAL checkpoint completed: durable markers were written and the
    /// fully-covered sealed segments deleted.
    WalCheckpointed {
        /// Manifest generation the checkpoint recorded.
        generation: u64,
        /// Sealed segment files deleted.
        segments_deleted: u64,
        /// Bytes those files held.
        bytes_deleted: u64,
    },
    /// WAL recovery finished during store open.
    WalRecovered {
        /// Put/delete records replayed into the hot tier.
        records_replayed: u64,
        /// Records skipped because a checkpoint already covered them.
        records_skipped: u64,
        /// Torn tail bytes truncated off the newest segment(s).
        truncated_bytes: u64,
        /// Segment files scanned.
        segments: usize,
    },
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::SpillStarted { shards } => write!(f, "spill started: {shards} shards"),
            Event::SpillFinished {
                segment_id,
                records,
                tombstones,
                bytes,
            } => write!(
                f,
                "spill finished: segment {segment_id}, {records} records + \
                 {tombstones} tombstones, {bytes} bytes"
            ),
            Event::CompactionPlanned {
                l0_inputs,
                l1_inputs,
                min_key,
                max_key,
            } => write!(
                f,
                "compaction planned: {l0_inputs} L0 + {l1_inputs} L1 over [{}, {}]",
                String::from_utf8_lossy(min_key),
                max_key
                    .as_deref()
                    .map_or("+inf".into(), String::from_utf8_lossy),
            ),
            Event::CompactionCommitted {
                generation,
                inputs,
                outputs,
                input_bytes,
                output_bytes,
                live_entries,
            } => {
                let ratio = if *output_bytes > 0 {
                    *input_bytes as f64 / *output_bytes as f64
                } else {
                    0.0
                };
                write!(
                    f,
                    "compaction committed: gen {generation}, {inputs} in -> {outputs} out, \
                     {input_bytes} -> {output_bytes} bytes (ratio {ratio:.2}), \
                     {live_entries} live entries"
                )
            }
            Event::CompactionAborted { reason } => write!(f, "compaction aborted: {reason}"),
            Event::ManifestGeneration { generation } => {
                write!(f, "manifest generation -> {generation}")
            }
            Event::ScanOpened { segments } => write!(f, "scan opened: {segments} cold segments"),
            Event::ScanClosed {
                rows,
                blocks_decoded,
            } => write!(
                f,
                "scan closed: {rows} rows, {blocks_decoded} blocks decoded"
            ),
            Event::BackgroundError { job, message } => {
                write!(f, "background error in {job}: {message}")
            }
            Event::WalRotated {
                shard,
                sealed_seq,
                sealed_bytes,
            } => write!(
                f,
                "wal rotated: shard {shard} sealed segment {sealed_seq} ({sealed_bytes} bytes)"
            ),
            Event::WalCheckpointed {
                generation,
                segments_deleted,
                bytes_deleted,
            } => write!(
                f,
                "wal checkpointed: gen {generation}, {segments_deleted} segments \
                 ({bytes_deleted} bytes) deleted"
            ),
            Event::WalRecovered {
                records_replayed,
                records_skipped,
                truncated_bytes,
                segments,
            } => write!(
                f,
                "wal recovered: {records_replayed} replayed, {records_skipped} skipped, \
                 {truncated_bytes} torn bytes truncated across {segments} segments"
            ),
        }
    }
}

/// An [`Event`] plus when it happened, in microseconds since the ring
/// was created (monotonic — immune to wall-clock steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since [`TraceRing`] construction.
    pub micros: u64,
    /// The event itself.
    pub event: Event,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>10}us] {}", self.micros, self.event)
    }
}

struct RingInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded ring of [`TraceEvent`]s. `capacity == 0` disables tracing
/// entirely (records become no-ops).
pub struct TraceRing {
    origin: Instant,
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // pbc-allow(panic): trace ring mutex poisoning only follows a panic elsewhere
        let inner = self.inner.lock().expect("trace ring poisoned");
        write!(
            f,
            "TraceRing(len={}, capacity={}, dropped={})",
            inner.events.len(),
            self.capacity,
            inner.dropped
        )
    }
}

impl TraceRing {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            origin: Instant::now(),
            capacity,
            inner: Mutex::new(RingInner {
                events: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
        }
    }

    /// Append an event, timestamped now; evicts (and counts) the oldest
    /// event when full.
    pub fn record(&self, event: Event) {
        if self.capacity == 0 {
            return;
        }
        let micros = self.origin.elapsed().as_micros() as u64;
        // pbc-allow(panic): trace ring mutex poisoning only follows a panic elsewhere
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(TraceEvent { micros, event });
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        // pbc-allow(panic): trace ring mutex poisoning only follows a panic elsewhere
        let inner = self.inner.lock().expect("trace ring poisoned");
        inner.events.iter().cloned().collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        // pbc-allow(panic): trace ring mutex poisoning only follows a panic elsewhere
        self.inner.lock().expect("trace ring poisoned").dropped
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        // pbc-allow(panic): trace ring mutex poisoning only follows a panic elsewhere
        self.inner.lock().expect("trace ring poisoned").events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            ring.record(Event::ManifestGeneration { generation: i });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<u64> = ring
            .snapshot()
            .iter()
            .map(|e| match e.event {
                Event::ManifestGeneration { generation } => generation,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_disables_tracing() {
        let ring = TraceRing::new(0);
        ring.record(Event::SpillStarted { shards: 1 });
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let ring = TraceRing::new(8);
        ring.record(Event::SpillStarted { shards: 2 });
        ring.record(Event::SpillFinished {
            segment_id: 1,
            records: 10,
            tombstones: 0,
            bytes: 100,
        });
        let snap = ring.snapshot();
        assert!(snap[0].micros <= snap[1].micros);
        assert!(snap[0].to_string().contains("spill started"));
    }
}
