//! The router's metric handles, registered eagerly into the shared
//! registry (the same one the underlying [`pbc_tier::TieredStore`]
//! exports through, so one Prometheus/JSON snapshot covers the whole
//! stack). All `pbc_serve_*` names live here — the single source of
//! truth the README's metric table is checked against.

use pbc_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// Every handle the router records through.
#[derive(Debug)]
pub(crate) struct ServeObs {
    /// Acknowledged gets.
    pub(crate) gets: Counter,
    /// Acknowledged puts.
    pub(crate) puts: Counter,
    /// Acknowledged deletes.
    pub(crate) deletes: Counter,
    /// Acknowledged scans.
    pub(crate) scans: Counter,
    /// Writes refused by admission control (`Busy` returned).
    pub(crate) admission_rejections: Counter,
    /// Requests refused by a tenant quota.
    pub(crate) quota_rejections: Counter,
    /// Batches the shard appliers drained.
    pub(crate) batches: Counter,
    /// Writes currently queued across all shards.
    pub(crate) queue_depth: Gauge,
    /// Registered tenants.
    pub(crate) tenants: Gauge,
    /// Writes per drained batch.
    pub(crate) batch_records: Histogram,
    /// Submit-to-ack latency of acknowledged writes — puts and deletes
    /// both (queue wait + batch application, nanoseconds).
    pub(crate) write_wait_ns: Histogram,
    /// Whole-call router get latency (nanoseconds).
    pub(crate) get_ns: Histogram,
}

impl ServeObs {
    pub(crate) fn new(registry: &MetricsRegistry) -> ServeObs {
        ServeObs {
            gets: registry.counter("pbc_serve_gets_total"),
            puts: registry.counter("pbc_serve_puts_total"),
            deletes: registry.counter("pbc_serve_deletes_total"),
            scans: registry.counter("pbc_serve_scans_total"),
            admission_rejections: registry.counter("pbc_serve_admission_rejections_total"),
            quota_rejections: registry.counter("pbc_serve_quota_rejections_total"),
            batches: registry.counter("pbc_serve_batches_total"),
            queue_depth: registry.gauge("pbc_serve_queue_depth"),
            tenants: registry.gauge("pbc_serve_tenants"),
            batch_records: registry.histogram("pbc_serve_batch_records"),
            write_wait_ns: registry.histogram("pbc_serve_write_wait_ns"),
            get_ns: registry.histogram("pbc_serve_get_latency_ns"),
        }
    }
}
