//! Router configuration.

use std::time::Duration;

/// Tuning for a [`crate::Router`]: shard fan-out, queue bounds, batch
/// sizing, and the admission-control thresholds read against
/// [`pbc_tier::WritePressure`].
///
/// Defaults are sized for tests and moderate hardware; the serving
/// benchmark (`repro --experiment serve`) drives both a nominal and a
/// deliberately saturated configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Router shards: one submission queue + one applier thread each.
    /// Writes hash to a shard by key, so per-key order is preserved.
    pub shards: usize,
    /// Bounded depth of each shard's submission queue. A write arriving
    /// at a full queue is refused with [`crate::BusyReason::QueueFull`].
    pub queue_capacity: usize,
    /// Most writes one applier drains per batch. Each batch is applied
    /// back-to-back, so concurrent shards' WAL appends share group
    /// commits, and the batch-size histogram shows the amortization.
    pub max_batch: usize,
    /// Refuse writes while the committed L0 segment count is at or above
    /// this ([`crate::BusyReason::ColdBacklog`]): compaction has fallen
    /// behind and admission pauses until the backlog drains.
    pub l0_backpressure: u64,
    /// Refuse writes while hot memory exceeds this multiple of the
    /// store's spill watermark ([`crate::BusyReason::MemoryPressure`]).
    /// `1.0` would refuse during every routine spill; the default leaves
    /// generous headroom and only trips when spills are genuinely stuck.
    pub memory_slack: f64,
    /// Base retry hint carried by [`crate::ServeError::Busy`]. Queue-full
    /// rejections use it as-is; backlog/memory rejections scale it up,
    /// since draining takes longer than one batch.
    pub retry_after: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_capacity: 256,
            max_batch: 64,
            l0_backpressure: 64,
            memory_slack: 4.0,
            retry_after: Duration::from_millis(1),
        }
    }
}

impl ServeConfig {
    /// Set the router shard count (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Set the per-shard queue bound (clamped to at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Set the per-batch drain limit (clamped to at least 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Set the L0 segment count at which writes start bouncing.
    pub fn with_l0_backpressure(mut self, segments: u64) -> Self {
        self.l0_backpressure = segments.max(1);
        self
    }

    /// Set the memory multiple at which writes start bouncing.
    pub fn with_memory_slack(mut self, slack: f64) -> Self {
        self.memory_slack = slack.max(1.0);
        self
    }

    /// Set the base retry hint for `Busy` rejections.
    pub fn with_retry_after(mut self, retry_after: Duration) -> Self {
        self.retry_after = retry_after;
        self
    }
}
