//! Typed errors for the serving layer.
//!
//! The split matters to clients: [`ServeError::Busy`] is *server*
//! pressure — the engine is falling behind and the request should be
//! retried after the hinted delay; [`ServeError::QuotaExceeded`] is a
//! *client* budget decision that retrying will not fix until the quota
//! is raised or usage drops. Neither is ever a silent drop: an
//! unacknowledged write was never applied (see the router docs for the
//! exact guarantee).

use std::fmt;
use std::io;
use std::time::Duration;

use pbc_tier::TierError;

/// Which backpressure signal refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyReason {
    /// The write's router shard queue is at capacity — appliers are not
    /// keeping up with the offered load.
    QueueFull,
    /// Committed L0 spill segments exceed the configured limit:
    /// compaction is falling behind and more writes would only deepen
    /// the read-amplification hole.
    ColdBacklog,
    /// Hot memory is far past the spill watermark — spills themselves
    /// are falling behind the write rate.
    MemoryPressure,
}

impl fmt::Display for BusyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusyReason::QueueFull => write!(f, "shard queue full"),
            BusyReason::ColdBacklog => write!(f, "L0 compaction backlog"),
            BusyReason::MemoryPressure => write!(f, "hot memory over watermark"),
        }
    }
}

/// Which tenant budget a rejected request would have exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaKind {
    /// The live stored-bytes budget ([`crate::TenantQuota::max_bytes`]).
    Bytes,
    /// The admitted-operation budget ([`crate::TenantQuota::max_ops`]).
    Ops,
}

impl fmt::Display for QuotaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuotaKind::Bytes => write!(f, "bytes"),
            QuotaKind::Ops => write!(f, "ops"),
        }
    }
}

/// Everything a router request can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control refused the request; retry after the hint.
    /// Guarantee: the operation was **not** applied and **not** queued —
    /// a `Busy` rejection has no side effects on the store or on the
    /// tenant's quota accounting.
    Busy {
        /// The signal that tripped.
        reason: BusyReason,
        /// How long the client should back off before retrying.
        retry_after: Duration,
    },
    /// The request would exceed one of the tenant's budgets. Not applied,
    /// not queued, no accounting change.
    QuotaExceeded {
        /// The tenant that ran out of budget.
        tenant: String,
        /// Which budget.
        kind: QuotaKind,
        /// The configured limit.
        limit: u64,
        /// What admitting the request would have brought usage to.
        requested: u64,
    },
    /// No tenant with that name was registered.
    UnknownTenant {
        /// The name looked up.
        tenant: String,
    },
    /// [`crate::Router::create_tenant`] for a name that already exists.
    TenantExists {
        /// The duplicate name.
        tenant: String,
    },
    /// A tenant name failed validation (empty, too long, or a character
    /// outside `[a-zA-Z0-9_-]`).
    InvalidTenantName {
        /// The rejected name.
        tenant: String,
    },
    /// The router is shutting down; queued-but-unapplied writes fail
    /// with this rather than being silently dropped.
    Shutdown,
    /// Spawning a router worker thread failed.
    Io(io::Error),
    /// The underlying tiered store failed.
    Tier(TierError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy {
                reason,
                retry_after,
            } => {
                write!(f, "busy ({reason}); retry after {retry_after:?}")
            }
            ServeError::QuotaExceeded {
                tenant,
                kind,
                limit,
                requested,
            } => write!(
                f,
                "tenant `{tenant}` {kind} quota exceeded: {requested} over limit {limit}"
            ),
            ServeError::UnknownTenant { tenant } => write!(f, "unknown tenant `{tenant}`"),
            ServeError::TenantExists { tenant } => {
                write!(f, "tenant `{tenant}` already exists")
            }
            ServeError::InvalidTenantName { tenant } => {
                write!(
                    f,
                    "invalid tenant name `{tenant}` (want 1-64 chars of [a-zA-Z0-9_-])"
                )
            }
            ServeError::Shutdown => write!(f, "router is shutting down"),
            ServeError::Io(e) => write!(f, "router i/o failed: {e}"),
            ServeError::Tier(e) => write!(f, "store failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Tier(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TierError> for ServeError {
    fn from(e: TierError) -> Self {
        ServeError::Tier(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// `Result` alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
