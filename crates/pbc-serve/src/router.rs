//! The sharded request router.
//!
//! ## Shape
//!
//! Writes hash by key onto one of [`ServeConfig::shards`] submission
//! queues; a dedicated applier thread per shard drains up to
//! [`ServeConfig::max_batch`] writes at a time and applies them
//! back-to-back to the shared [`TieredStore`]. Batching is what
//! amortizes the engine's write-side costs: concurrent shard appliers
//! issue WAL appends in tight succession, so under
//! [`pbc_tier::Durability::PerBatch`] their records ride the same group
//! commit instead of each write electing its own fsync leader. Reads
//! and scans bypass the queues entirely — they take the store's
//! lock-free read path directly.
//!
//! ## Acknowledgement contract
//!
//! `put`/`delete` block until their write has been applied by the shard
//! applier (and, with a WAL configured, acknowledged at the store's
//! durability level). A returned `Ok` therefore means *readable and as
//! durable as the store promises*. A returned error means the write was
//! **not silently dropped**: either it was never queued
//! ([`ServeError::Busy`], [`ServeError::QuotaExceeded`] — zero side
//! effects) or it failed with the store's error, with the tenant's
//! quota charge rolled back.
//!
//! ## Admission control
//!
//! Every write first samples [`TieredStore::write_pressure`] (lock-free
//! atomics): at or past [`ServeConfig::l0_backpressure`] committed L0
//! segments, or hot memory beyond [`ServeConfig::memory_slack`] × the
//! spill watermark, the write is refused with a typed
//! [`ServeError::Busy`] carrying a retry hint. The shard queue bound is
//! enforced exactly, under the queue lock. Rejections are counted
//! (`pbc_serve_admission_rejections_total`) and never block: saturation
//! turns into fast, typed feedback instead of unbounded queueing.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;

use pbc_obs::MetricsRegistry;
use pbc_tier::TieredStore;

use crate::config::ServeConfig;
use crate::error::{BusyReason, Result, ServeError};
use crate::obs::ServeObs;
use crate::tenant::{validate_name, Tenant, TenantQuota, TenantUsage};

// Lock order across the serving layer (declared even where the router
// never nests them, so any future nesting is checked against intent):
// the tenant map is the outermost, per-tenant accounting next, then a
// shard's submission queue, then a single write's completion slot.
// lock-order: router.tenants < tenant.usage < router.queue < router.slot

/// A queued write, full (tenant-prefixed) key.
#[derive(Debug)]
enum WriteOp {
    Put { key: Vec<u8>, value: Vec<u8> },
    Delete { key: Vec<u8> },
}

/// What an acknowledged write reports back.
#[derive(Debug)]
enum WriteOutcome {
    Put { stored: usize },
    Delete { existed: bool },
}

/// One submitter's completion slot.
#[derive(Debug)]
struct Waiter {
    slot: Mutex<Option<Result<WriteOutcome>>>,
    done: Condvar,
}

impl Waiter {
    fn new() -> Arc<Waiter> {
        Arc::new(Waiter {
            slot: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn complete(&self, result: Result<WriteOutcome>) {
        // pbc-allow(panic): slot mutex poisoning only follows a panic elsewhere; the waiter is then wedged anyway
        let mut slot = self.slot.lock().expect("waiter slot poisoned");
        *slot = Some(result);
        self.done.notify_one();
    }

    fn wait(&self) -> Result<WriteOutcome> {
        // pbc-allow(panic): slot mutex poisoning only follows a panic elsewhere; the waiter is then wedged anyway
        let mut slot = self.slot.lock().expect("waiter slot poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            // pbc-allow(panic): condvar re-locks the same slot mutex; poisoning only follows a panic elsewhere
            slot = self.done.wait(slot).expect("waiter slot poisoned");
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunMode {
    Run,
    /// Apply everything queued, then exit (graceful shutdown).
    Drain,
    /// Fail everything queued with [`ServeError::Shutdown`], then exit
    /// (crash-shaped shutdown; the WAL crash tests drive this).
    Abort,
}

#[derive(Debug)]
struct QueueState {
    pending: VecDeque<PendingWrite>,
    mode: RunMode,
}

#[derive(Debug)]
struct PendingWrite {
    op: WriteOp,
    waiter: Arc<Waiter>,
}

/// One shard: a bounded submission queue and its applier's wakeup.
#[derive(Debug)]
struct ShardQueue {
    queue: Mutex<QueueState>,
    work: Condvar,
}

/// What the applier should do with one drained batch.
enum BatchAction {
    Apply(Vec<PendingWrite>),
    Fail(Vec<PendingWrite>),
    Exit,
}

/// State shared between the router handle and its applier threads.
struct Shared {
    store: Arc<TieredStore>,
    config: ServeConfig,
    obs: ServeObs,
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    shards: Vec<ShardQueue>,
    /// Mirrors the summed queue lengths for the gauge and for
    /// [`Router::queue_depth`].
    total_depth: AtomicUsize,
}

/// The serving front end. See the module docs above.
///
/// Dropping the router performs a graceful [`Router::shutdown`]: queued
/// writes are applied, appliers joined.
pub struct Router {
    shared: Arc<Shared>,
    /// Applier handles, drained (and joined) by the first shutdown-shaped
    /// call; behind a mutex so shutdown works through a shared handle.
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.shared.shards.len())
            .field("queue_depth", &self.queue_depth())
            .field("tenants", &self.shared.tenants_len())
            .finish()
    }
}

/// FNV-1a over the full key — deterministic shard placement (the shard
/// count is a router-lifetime constant, so placement only needs to be
/// stable within one router's life).
fn fnv1a(key: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Shared {
    fn tenants_len(&self) -> usize {
        // pbc-allow(panic): tenant map poisoning only follows a panic elsewhere
        self.tenants.read().expect("tenant map poisoned").len()
    }

    /// Resolve a tenant by name (the read lock is released before this
    /// returns — nothing runs under it).
    fn tenant(&self, name: &str) -> Result<Arc<Tenant>> {
        // pbc-allow(panic): tenant map poisoning only follows a panic elsewhere
        let tenants = self.tenants.read().expect("tenant map poisoned");
        tenants
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant {
                tenant: name.to_string(),
            })
    }

    fn shard_for(&self, key: &[u8]) -> &ShardQueue {
        let index = (fnv1a(key) % self.shards.len() as u64) as usize;
        &self.shards[index]
    }

    /// The lock-free backpressure gate every write passes first.
    fn check_pressure(&self) -> Result<()> {
        let pressure = self.store.write_pressure();
        if pressure.l0_segments >= self.config.l0_backpressure {
            return Err(ServeError::Busy {
                reason: BusyReason::ColdBacklog,
                retry_after: self.config.retry_after * 8,
            });
        }
        if pressure.memory_ratio() > self.config.memory_slack {
            return Err(ServeError::Busy {
                reason: BusyReason::MemoryPressure,
                retry_after: self.config.retry_after * 4,
            });
        }
        Ok(())
    }

    /// Enqueue a write on its shard, enforcing the queue bound exactly.
    fn try_enqueue(&self, op: WriteOp, waiter: Arc<Waiter>) -> Result<()> {
        let key = match &op {
            WriteOp::Put { key, .. } => key.as_slice(),
            WriteOp::Delete { key } => key.as_slice(),
        };
        let shard = self.shard_for(key);
        {
            // pbc-allow(panic): queue mutex poisoning only follows a panic elsewhere; the shard is then wedged anyway
            let mut state = shard.queue.lock().expect("shard queue poisoned");
            if state.mode != RunMode::Run {
                return Err(ServeError::Shutdown);
            }
            if state.pending.len() >= self.config.queue_capacity {
                return Err(ServeError::Busy {
                    reason: BusyReason::QueueFull,
                    retry_after: self.config.retry_after,
                });
            }
            state.pending.push_back(PendingWrite { op, waiter });
            // Still under the queue lock: the applier drains (and
            // decrements) under this same mutex, so every decrement is
            // covered by an increment that happened-before it and the
            // counter can never transiently under-count (which would
            // underflow note_drained's subtraction).
            let depth = self.total_depth.fetch_add(1, Ordering::Relaxed) + 1;
            self.obs.queue_depth.set(depth as u64);
        }
        shard.work.notify_one();
        Ok(())
    }

    /// Block until the shard has work (or is shutting down) and decide
    /// what to do with it.
    fn next_batch(&self, index: usize) -> BatchAction {
        let shard = &self.shards[index];
        // pbc-allow(panic): queue mutex poisoning only follows a panic elsewhere; the shard is then wedged anyway
        let mut state = shard.queue.lock().expect("shard queue poisoned");
        loop {
            match state.mode {
                RunMode::Abort => {
                    let drained: Vec<PendingWrite> = state.pending.drain(..).collect();
                    self.note_drained(drained.len());
                    drop(state);
                    return if drained.is_empty() {
                        BatchAction::Exit
                    } else {
                        BatchAction::Fail(drained)
                    };
                }
                RunMode::Run | RunMode::Drain => {
                    if !state.pending.is_empty() {
                        let take = state.pending.len().min(self.config.max_batch);
                        let drained: Vec<PendingWrite> = state.pending.drain(..take).collect();
                        self.note_drained(drained.len());
                        drop(state);
                        return BatchAction::Apply(drained);
                    }
                    if state.mode == RunMode::Drain {
                        return BatchAction::Exit;
                    }
                    // pbc-allow(panic): condvar re-locks the same queue mutex; poisoning only follows a panic elsewhere
                    state = shard.work.wait(state).expect("shard queue poisoned");
                }
            }
        }
    }

    /// Account for `n` writes leaving a shard queue. Must be called with
    /// that shard's queue lock held (see the matching increment in
    /// [`Shared::try_enqueue`]): the lock guarantees the increments for
    /// the drained writes happened-before this subtraction, so the
    /// counter never underflows. Saturating arithmetic keeps the gauge
    /// sane even if that invariant is ever broken.
    fn note_drained(&self, n: usize) {
        if n > 0 {
            let depth = self.total_depth.fetch_sub(n, Ordering::Relaxed).saturating_sub(n);
            self.obs.queue_depth.set(depth as u64);
        }
    }

    /// Apply one drained batch back-to-back and acknowledge each write.
    fn apply_batch(&self, batch: Vec<PendingWrite>) {
        self.obs.batches.inc();
        self.obs.batch_records.record(batch.len() as u64);
        for pending in batch {
            let result = match &pending.op {
                WriteOp::Put { key, value } => self
                    .store
                    .set(key, value)
                    .map(|stored| WriteOutcome::Put { stored })
                    .map_err(ServeError::from),
                WriteOp::Delete { key } => self
                    .store
                    .delete(key)
                    .map(|existed| WriteOutcome::Delete { existed })
                    .map_err(ServeError::from),
            };
            pending.waiter.complete(result);
        }
    }

    fn fail_batch(&self, batch: Vec<PendingWrite>) {
        for pending in batch {
            pending.waiter.complete(Err(ServeError::Shutdown));
        }
    }

    fn applier_loop(&self, index: usize) {
        loop {
            match self.next_batch(index) {
                BatchAction::Apply(batch) => self.apply_batch(batch),
                BatchAction::Fail(batch) => self.fail_batch(batch),
                BatchAction::Exit => return,
            }
        }
    }
}

impl Router {
    /// Start a router over `store`: spawns one applier thread per shard.
    pub fn start(store: Arc<TieredStore>, config: ServeConfig) -> Result<Router> {
        let obs = ServeObs::new(store.metrics());
        let shards = (0..config.shards.max(1))
            .map(|_| ShardQueue {
                queue: Mutex::new(QueueState {
                    pending: VecDeque::new(),
                    mode: RunMode::Run,
                }),
                work: Condvar::new(),
            })
            .collect();
        let shared = Arc::new(Shared {
            store,
            config,
            obs,
            tenants: RwLock::new(BTreeMap::new()),
            shards,
            total_depth: AtomicUsize::new(0),
        });
        let mut workers = Vec::with_capacity(shared.shards.len());
        for index in 0..shared.shards.len() {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("pbc-serve-applier-{index}"))
                .spawn(move || worker_shared.applier_loop(index));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Unwind the already-spawned appliers instead of
                    // leaking them parked on their condvars: the queues
                    // are still empty, so Drain makes each exit at once.
                    for shard in &shared.shards {
                        // pbc-allow(panic): queue mutex poisoning only follows a panic elsewhere; the shard is then wedged anyway
                        let mut state = shard.queue.lock().expect("shard queue poisoned");
                        state.mode = RunMode::Drain;
                        drop(state);
                        shard.work.notify_all();
                    }
                    for worker in workers {
                        // pbc-allow(panic): an applier panic this early means the router never existed; surfacing it beats leaking
                        worker.join().expect("router applier panicked");
                    }
                    return Err(e.into());
                }
            }
        }
        Ok(Router {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Register a tenant. Fails on duplicate or invalid names.
    pub fn create_tenant(&self, name: &str, quota: TenantQuota) -> Result<()> {
        validate_name(name)?;
        // pbc-allow(panic): tenant map poisoning only follows a panic elsewhere
        let mut tenants = self.shared.tenants.write().expect("tenant map poisoned");
        if tenants.contains_key(name) {
            return Err(ServeError::TenantExists {
                tenant: name.to_string(),
            });
        }
        tenants.insert(name.to_string(), Arc::new(Tenant::new(name, quota)));
        self.shared.obs.tenants.set(tenants.len() as u64);
        Ok(())
    }

    /// Store a value for `tenant`. Blocks until the shard applier has
    /// applied (and, with a WAL, made durable) the write. Returns the
    /// hot-tier stored size. See the module docs for the
    /// rejection and acknowledgement contract.
    pub fn put(&self, tenant: &str, key: &[u8], value: &[u8]) -> Result<usize> {
        let shared = &self.shared;
        let tenant = shared.tenant(tenant)?;
        if let Err(busy) = shared.check_pressure() {
            shared.obs.admission_rejections.inc();
            return Err(busy);
        }
        let charge = match tenant.admit_put(key, value.len()) {
            Ok(charge) => charge,
            Err(e) => {
                shared.obs.quota_rejections.inc();
                return Err(e);
            }
        };
        let waiter = Waiter::new();
        let started = Instant::now();
        let op = WriteOp::Put {
            key: tenant.full_key(key),
            value: value.to_vec(),
        };
        if let Err(refused) = shared.try_enqueue(op, Arc::clone(&waiter)) {
            tenant.rollback_put(key, charge);
            if matches!(refused, ServeError::Busy { .. }) {
                shared.obs.admission_rejections.inc();
            }
            return Err(refused);
        }
        match waiter.wait() {
            Ok(WriteOutcome::Put { stored }) => {
                shared
                    .obs
                    .write_wait_ns
                    .record(started.elapsed().as_nanos() as u64);
                shared.obs.puts.inc();
                Ok(stored)
            }
            Ok(WriteOutcome::Delete { .. }) => unreachable!("put acked as delete"),
            Err(e) => {
                tenant.rollback_put(key, charge);
                Err(e)
            }
        }
    }

    /// Delete a key for `tenant`; returns whether it existed. Queued and
    /// acknowledged exactly like [`Router::put`].
    pub fn delete(&self, tenant: &str, key: &[u8]) -> Result<bool> {
        let shared = &self.shared;
        let tenant = shared.tenant(tenant)?;
        if let Err(busy) = shared.check_pressure() {
            shared.obs.admission_rejections.inc();
            return Err(busy);
        }
        let charge = match tenant.admit_delete(key) {
            Ok(charge) => charge,
            Err(e) => {
                shared.obs.quota_rejections.inc();
                return Err(e);
            }
        };
        let waiter = Waiter::new();
        let started = Instant::now();
        let op = WriteOp::Delete {
            key: tenant.full_key(key),
        };
        if let Err(refused) = shared.try_enqueue(op, Arc::clone(&waiter)) {
            tenant.rollback_delete(key, charge);
            if matches!(refused, ServeError::Busy { .. }) {
                shared.obs.admission_rejections.inc();
            }
            return Err(refused);
        }
        match waiter.wait() {
            Ok(WriteOutcome::Delete { existed }) => {
                shared
                    .obs
                    .write_wait_ns
                    .record(started.elapsed().as_nanos() as u64);
                shared.obs.deletes.inc();
                Ok(existed)
            }
            Ok(WriteOutcome::Put { .. }) => unreachable!("delete acked as put"),
            Err(e) => {
                tenant.rollback_delete(key, charge);
                Err(e)
            }
        }
    }

    /// Fetch `tenant`'s value for `key`. Reads bypass the submission
    /// queues — they take the store's read path directly.
    pub fn get(&self, tenant: &str, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let shared = &self.shared;
        let tenant = shared.tenant(tenant)?;
        if let Err(e) = tenant.admit_read() {
            shared.obs.quota_rejections.inc();
            return Err(e);
        }
        let timer = shared.obs.get_ns.start_timer();
        let value = shared.store.get(&tenant.full_key(key))?;
        timer.observe();
        shared.obs.gets.inc();
        Ok(value)
    }

    /// Stream up to `limit` of `tenant`'s live keys at or after `start`,
    /// in ascending user-key order, with the namespace prefix stripped.
    /// Snapshot-consistent (the store's range-scan contract).
    pub fn scan(
        &self,
        tenant: &str,
        start: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let shared = &self.shared;
        let tenant = shared.tenant(tenant)?;
        if let Err(e) = tenant.admit_read() {
            shared.obs.quota_rejections.inc();
            return Err(e);
        }
        let range = tenant.full_key(start)..tenant.prefix_end();
        let mut rows = Vec::new();
        for row in shared.store.range_scan(range)? {
            if rows.len() >= limit {
                break;
            }
            let (key, value) = row?;
            rows.push((key[tenant.prefix.len()..].to_vec(), value));
        }
        shared.obs.scans.inc();
        Ok(rows)
    }

    /// A tenant's current accounting (exact under per-key serial
    /// submission; see the tenant module docs).
    pub fn usage(&self, tenant: &str) -> Result<TenantUsage> {
        Ok(self.shared.tenant(tenant)?.usage())
    }

    /// Reset a tenant's op window (the external rate-limit driver tick).
    pub fn reset_ops_window(&self, tenant: &str) -> Result<()> {
        self.shared.tenant(tenant)?.reset_ops_window();
        Ok(())
    }

    /// Writes currently queued across all shards (the
    /// `pbc_serve_queue_depth` gauge's source).
    pub fn queue_depth(&self) -> usize {
        self.shared.total_depth.load(Ordering::Relaxed)
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<TieredStore> {
        &self.shared.store
    }

    /// The shared metrics registry (store + router metrics).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.shared.store.metrics()
    }

    fn finish(&self, mode: RunMode) {
        for shard in &self.shared.shards {
            // pbc-allow(panic): queue mutex poisoning only follows a panic elsewhere; the shard is then wedged anyway
            let mut state = shard.queue.lock().expect("shard queue poisoned");
            if state.mode == RunMode::Run {
                state.mode = mode;
            }
            drop(state);
            shard.work.notify_all();
        }
        let handles: Vec<std::thread::JoinHandle<()>> = {
            // pbc-allow(panic): worker-handle mutex poisoning only follows a panic elsewhere
            let mut workers = self.workers.lock().expect("worker handles poisoned");
            workers.drain(..).collect()
        };
        for worker in handles {
            // pbc-allow(panic): an applier panic already poisoned the router; surfacing it beats hanging shutdown
            worker.join().expect("router applier panicked");
        }
    }

    /// Graceful shutdown: apply everything queued, then stop. New
    /// submissions fail with [`ServeError::Shutdown`]. Idempotent (and
    /// a no-op after [`Router::abort`]); also what `Drop` does.
    pub fn shutdown(&self) {
        self.finish(RunMode::Drain);
    }

    /// Crash-shaped shutdown: queued-but-unapplied writes fail with
    /// [`ServeError::Shutdown`] (never silently dropped), appliers stop
    /// without flushing anything. The WAL crash tests use this to model
    /// a process death with a router batch in flight — acknowledged
    /// writes must still be recoverable from the store's log. The first
    /// shutdown-shaped call wins; later ones are no-ops.
    pub fn abort(&self) {
        self.finish(RunMode::Abort);
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.finish(RunMode::Drain);
    }
}
