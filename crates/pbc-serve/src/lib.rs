//! `pbc-serve`: a sharded, multi-tenant request router in front of the
//! tiered store.
//!
//! The engine below this crate ([`pbc_tier`]) is a library: callers
//! invoke `set`/`get` directly and every caller pays the write path's
//! full cost. This crate adds the serving discipline a shared deployment
//! needs, without changing the engine:
//!
//! * **Sharded write batching** ([`Router`]) — writes hash onto
//!   per-shard submission queues; one applier thread per shard drains
//!   them in batches, so concurrent writers' WAL appends share group
//!   commits instead of fsyncing one by one.
//! * **Admission control** ([`ServeError::Busy`]) — bounded queues plus
//!   lock-free backpressure read from
//!   [`pbc_tier::TieredStore::write_pressure`]: when spill or compaction
//!   falls behind, writes are refused with a typed retry hint rather
//!   than queueing without bound. Never a silent drop.
//! * **Multi-tenant namespaces** ([`TenantQuota`]) — per-tenant key
//!   prefixes over one shared store (one cold tier, one block cache),
//!   with exact live-byte and per-window op budgets enforced at
//!   admission.
//!
//! Everything observable is exported as `pbc_serve_*` metrics through
//! the store's shared [`pbc_obs::MetricsRegistry`]; the repro harness's
//! `serve` experiment drives nominal and saturated configurations
//! end-to-end.
//!
//! ```
//! use std::sync::Arc;
//! use pbc_serve::{Router, ServeConfig, TenantQuota};
//! use pbc_tier::{TierConfig, TieredStore};
//!
//! let dir = std::env::temp_dir().join(format!("pbc-serve-doc-{}", std::process::id()));
//! let store = Arc::new(TieredStore::open(TierConfig::new(&dir)).unwrap());
//! let router = Router::start(Arc::clone(&store), ServeConfig::default()).unwrap();
//! router.create_tenant("alpha", TenantQuota::unlimited()).unwrap();
//! router.put("alpha", b"k", b"v").unwrap();
//! assert_eq!(router.get("alpha", b"k").unwrap().as_deref(), Some(&b"v"[..]));
//! router.shutdown();
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod obs;
mod router;
mod tenant;

pub use config::ServeConfig;
pub use error::{BusyReason, QuotaKind, Result, ServeError};
pub use router::Router;
pub use tenant::{TenantQuota, TenantUsage};
