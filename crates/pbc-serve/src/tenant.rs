//! Multi-tenant namespaces: per-tenant key prefixes and byte/op quotas.
//!
//! Every tenant owns a disjoint slice of the shared store's keyspace:
//! user keys are stored under `name ++ 0x00` (names cannot contain NUL,
//! so no tenant's prefix is a prefix of another's), which keeps each
//! tenant's keys contiguous and in user-key order — range scans over a
//! tenant are range scans over the store.
//!
//! Quotas are budgets, checked and charged *before* a request is queued
//! so a rejected request has zero side effects:
//!
//! * **bytes** — live stored bytes (user key + value, summed over the
//!   tenant's live keys). Overwrites re-charge the delta; deletes credit
//!   the freed size back. The router keeps a per-key size map, so the
//!   accounting is exact — what the model test asserts against an
//!   independent oracle.
//! * **ops** — a cumulative admitted-operation budget (puts, deletes,
//!   gets, and scans all consume one). An external rate-limit window
//!   driver tops it up or resets it ([`crate::Router::reset_ops_window`]);
//!   with no driver it is simply a hard cap.
//!
//! Accounting is charged at admission (before the write is queued) and
//! rolled back if the store later fails the write, so under per-key
//! serial submission usage always equals the live state. Two clients
//! racing *the same key* of the same tenant may transiently record the
//! loser's size — the same last-writer-wins ambiguity the store itself
//! has.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::error::{QuotaKind, Result, ServeError};

/// Per-tenant budgets. `None` means unlimited.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantQuota {
    /// Cap on live stored bytes (user key + value, summed over live
    /// keys).
    pub max_bytes: Option<u64>,
    /// Cap on cumulative admitted operations since the last
    /// [`crate::Router::reset_ops_window`].
    pub max_ops: Option<u64>,
}

impl TenantQuota {
    /// No limits at all.
    pub fn unlimited() -> Self {
        TenantQuota::default()
    }

    /// Cap live stored bytes.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Cap admitted operations per window.
    pub fn with_max_ops(mut self, max_ops: u64) -> Self {
        self.max_ops = Some(max_ops);
        self
    }
}

/// A point-in-time view of one tenant's accounting
/// ([`crate::Router::usage`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantUsage {
    /// Live stored bytes (user key + value over live keys).
    pub live_bytes: u64,
    /// Live keys.
    pub live_keys: u64,
    /// Operations admitted in the current window.
    pub ops_admitted: u64,
}

/// The mutable accounting state behind one tenant.
#[derive(Debug, Default)]
struct UsageState {
    live_bytes: u64,
    ops_admitted: u64,
    /// Charged size per live user key — what makes overwrite and delete
    /// accounting exact without a read-before-write on the store.
    sizes: BTreeMap<Vec<u8>, u64>,
}

/// Undo information for a charged-but-not-yet-applied put.
#[derive(Debug)]
pub(crate) struct PutCharge {
    /// The key's previous charged size (`None` = the key was new).
    previous: Option<u64>,
}

/// Undo information for a charged-but-not-yet-applied delete.
#[derive(Debug)]
pub(crate) struct DeleteCharge {
    /// The size the delete credited back (`None` = the key was absent).
    freed: Option<u64>,
}

/// One registered tenant: its namespace prefix, quota, and accounting.
#[derive(Debug)]
pub(crate) struct Tenant {
    pub(crate) name: String,
    /// `name ++ 0x00` — prepended to every user key.
    pub(crate) prefix: Vec<u8>,
    quota: TenantQuota,
    usage: Mutex<UsageState>,
}

/// Tenant names are path-safe identifiers: 1–64 chars of `[a-zA-Z0-9_-]`.
pub(crate) fn validate_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(ServeError::InvalidTenantName {
            tenant: name.to_string(),
        })
    }
}

impl Tenant {
    pub(crate) fn new(name: &str, quota: TenantQuota) -> Tenant {
        let mut prefix = name.as_bytes().to_vec();
        prefix.push(0);
        Tenant {
            name: name.to_string(),
            prefix,
            quota,
            usage: Mutex::new(UsageState::default()),
        }
    }

    /// The stored key for one of this tenant's user keys.
    pub(crate) fn full_key(&self, key: &[u8]) -> Vec<u8> {
        let mut full = Vec::with_capacity(self.prefix.len() + key.len());
        full.extend_from_slice(&self.prefix);
        full.extend_from_slice(key);
        full
    }

    /// The exclusive upper bound of this tenant's key range: the prefix
    /// with its trailing NUL bumped to 0x01.
    pub(crate) fn prefix_end(&self) -> Vec<u8> {
        let mut end = self.prefix.clone();
        // pbc-allow(panic): prefix always ends with the 0x00 pushed in `new`
        *end.last_mut().expect("prefix is never empty") = 1;
        end
    }

    fn lock_usage(&self) -> std::sync::MutexGuard<'_, UsageState> {
        // pbc-allow(panic): usage mutex poisoning only follows a panic elsewhere; accounting is then undefined
        self.usage.lock().expect("tenant usage poisoned")
    }

    fn check_ops(&self, state: &UsageState) -> Result<()> {
        if let Some(max_ops) = self.quota.max_ops {
            if state.ops_admitted + 1 > max_ops {
                return Err(ServeError::QuotaExceeded {
                    tenant: self.name.clone(),
                    kind: QuotaKind::Ops,
                    limit: max_ops,
                    requested: state.ops_admitted + 1,
                });
            }
        }
        Ok(())
    }

    /// Admit a read-shaped op (get/scan): consumes one op credit.
    pub(crate) fn admit_read(&self) -> Result<()> {
        let mut state = self.lock_usage();
        self.check_ops(&state)?;
        state.ops_admitted += 1;
        Ok(())
    }

    /// Admit a put of `key` with `value_len` value bytes: checks the op
    /// budget, then the projected live-bytes total, then charges both.
    /// The returned [`PutCharge`] undoes the charge if the store fails
    /// the write.
    pub(crate) fn admit_put(&self, key: &[u8], value_len: usize) -> Result<PutCharge> {
        let charge = (key.len() + value_len) as u64;
        let mut state = self.lock_usage();
        self.check_ops(&state)?;
        let previous = state.sizes.get(key).copied();
        // Saturating for the same reason as admit_delete below.
        let projected = state.live_bytes.saturating_sub(previous.unwrap_or(0)) + charge;
        if let Some(max_bytes) = self.quota.max_bytes {
            if projected > max_bytes {
                return Err(ServeError::QuotaExceeded {
                    tenant: self.name.clone(),
                    kind: QuotaKind::Bytes,
                    limit: max_bytes,
                    requested: projected,
                });
            }
        }
        state.ops_admitted += 1;
        state.live_bytes = projected;
        state.sizes.insert(key.to_vec(), charge);
        Ok(PutCharge { previous })
    }

    /// Undo an [`admit_put`](Tenant::admit_put) whose store write failed.
    pub(crate) fn rollback_put(&self, key: &[u8], charge: PutCharge) {
        let mut state = self.lock_usage();
        let charged = match charge.previous {
            Some(previous) => state.sizes.insert(key.to_vec(), previous),
            None => state.sizes.remove(key),
        };
        state.live_bytes =
            state.live_bytes.saturating_sub(charged.unwrap_or(0)) + charge.previous.unwrap_or(0);
        state.ops_admitted = state.ops_admitted.saturating_sub(1);
    }

    /// Admit a delete of `key`: checks the op budget, then credits the
    /// key's charged size back. The returned [`DeleteCharge`] undoes it
    /// if the store fails the delete.
    pub(crate) fn admit_delete(&self, key: &[u8]) -> Result<DeleteCharge> {
        let mut state = self.lock_usage();
        self.check_ops(&state)?;
        state.ops_admitted += 1;
        let freed = state.sizes.remove(key);
        // Saturating like the rollback paths: a same-key race between a
        // rollback and concurrent admissions (the documented
        // last-writer-wins ambiguity) may transiently leave live_bytes
        // below the sum of tracked sizes, and that misaccounting must
        // stay misaccounting rather than escalate to an underflow panic.
        state.live_bytes = state.live_bytes.saturating_sub(freed.unwrap_or(0));
        Ok(DeleteCharge { freed })
    }

    /// Undo an [`admit_delete`](Tenant::admit_delete) whose store delete
    /// failed.
    pub(crate) fn rollback_delete(&self, key: &[u8], charge: DeleteCharge) {
        let mut state = self.lock_usage();
        if let Some(freed) = charge.freed {
            state.sizes.insert(key.to_vec(), freed);
            state.live_bytes += freed;
        }
        state.ops_admitted = state.ops_admitted.saturating_sub(1);
    }

    /// Current accounting.
    pub(crate) fn usage(&self) -> TenantUsage {
        let state = self.lock_usage();
        TenantUsage {
            live_bytes: state.live_bytes,
            live_keys: state.sizes.len() as u64,
            ops_admitted: state.ops_admitted,
        }
    }

    /// Start a fresh op window (the external rate-limit driver's tick).
    pub(crate) fn reset_ops_window(&self) {
        self.lock_usage().ops_admitted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_validate() {
        assert!(validate_name("alpha-1_B").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("has space").is_err());
        assert!(validate_name(&"x".repeat(65)).is_err());
    }

    #[test]
    fn prefixes_are_disjoint_and_ordered() {
        let a = Tenant::new("alpha", TenantQuota::unlimited());
        let b = Tenant::new("alphab", TenantQuota::unlimited());
        // `alpha\0...` sorts entirely before `alphab\0...` and neither
        // range contains the other, NUL-termination being the point.
        assert!(a.prefix_end() <= b.prefix);
        assert!(a.full_key(b"zz") < b.full_key(b""));
    }

    #[test]
    fn byte_quota_charges_overwrites_and_deletes_exactly() {
        let t = Tenant::new("t", TenantQuota::unlimited().with_max_bytes(100));
        t.admit_put(b"k", 40).unwrap(); // 1 + 40 = 41
        assert_eq!(t.usage().live_bytes, 41);
        t.admit_put(b"k", 60).unwrap(); // overwrite: 61, not 102
        assert_eq!(t.usage().live_bytes, 61);
        let err = t.admit_put(b"j", 60).unwrap_err(); // 61 + 61 > 100
        assert!(matches!(
            err,
            ServeError::QuotaExceeded {
                kind: QuotaKind::Bytes,
                ..
            }
        ));
        assert_eq!(t.usage().live_bytes, 61, "rejection has no side effects");
        t.admit_delete(b"k").unwrap();
        assert_eq!(t.usage().live_bytes, 0);
    }

    #[test]
    fn rollbacks_restore_prior_accounting() {
        let t = Tenant::new("t", TenantQuota::unlimited());
        let first = t.admit_put(b"k", 10).unwrap();
        assert_eq!(t.usage().live_bytes, 11);
        let second = t.admit_put(b"k", 20).unwrap();
        t.rollback_put(b"k", second);
        assert_eq!(t.usage().live_bytes, 11);
        assert_eq!(t.usage().ops_admitted, 1);
        t.rollback_put(b"k", first);
        assert_eq!(
            t.usage(),
            TenantUsage {
                live_bytes: 0,
                live_keys: 0,
                ops_admitted: 0
            }
        );

        let _committed = t.admit_put(b"k", 10).unwrap();
        let del = t.admit_delete(b"k").unwrap();
        t.rollback_delete(b"k", del);
        assert_eq!(t.usage().live_bytes, 11);
    }

    #[test]
    fn op_budget_counts_every_admitted_op_and_resets() {
        let t = Tenant::new("t", TenantQuota::unlimited().with_max_ops(3));
        t.admit_put(b"a", 1).unwrap();
        t.admit_read().unwrap();
        t.admit_delete(b"a").unwrap();
        assert!(matches!(
            t.admit_read().unwrap_err(),
            ServeError::QuotaExceeded {
                kind: QuotaKind::Ops,
                ..
            }
        ));
        t.reset_ops_window();
        t.admit_read().unwrap();
        assert_eq!(t.usage().ops_admitted, 1);
    }
}
