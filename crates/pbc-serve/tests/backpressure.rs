//! Admission-control lifecycle: saturate the router until backpressure
//! engages, verify the discipline (typed `Busy`, bounded queues, no
//! silent drops), drain the backlog, and verify writes flow again.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pbc_serve::{BusyReason, Router, ServeConfig, ServeError, TenantQuota};
use pbc_tier::{TierConfig, TieredStore};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "pbc-serve-bp-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const L0_LIMIT: u64 = 4;
const SHARDS: usize = 2;
const QUEUE_CAPACITY: usize = 64;

fn saturating_router(dir: &TempDir) -> Router {
    // Tiny watermark so writes spill constantly; no background compaction,
    // so L0 segments pile up until the router's backlog gate trips.
    let store = Arc::new(
        TieredStore::open(
            TierConfig::new(&dir.0)
                .with_watermark(8 * 1024)
                .with_background_compaction(false),
        )
        .expect("open store"),
    );
    let config = ServeConfig::default()
        .with_shards(SHARDS)
        .with_queue_capacity(QUEUE_CAPACITY)
        .with_max_batch(8)
        .with_l0_backpressure(L0_LIMIT)
        .with_retry_after(Duration::from_millis(2));
    Router::start(store, config).expect("start router")
}

#[test]
fn saturation_engages_admission_then_recovers() {
    let dir = TempDir::new("lifecycle");
    let router = Arc::new(saturating_router(&dir));
    router
        .create_tenant("tenant", TenantQuota::unlimited())
        .expect("create tenant");

    // Phase 1 — saturate: concurrent writers push ~250-byte values at a
    // store that spills every ~8 KiB. Each thread records exactly which
    // keys were acknowledged and how many writes bounced.
    let stop_sampling = Arc::new(AtomicBool::new(false));
    let max_depth = {
        let router = Arc::clone(&router);
        let stop = Arc::clone(&stop_sampling);
        std::thread::spawn(move || {
            let mut max_depth = 0usize;
            while !stop.load(Ordering::Relaxed) {
                max_depth = max_depth.max(router.queue_depth());
                std::thread::yield_now();
            }
            max_depth
        })
    };
    let mut acked: Vec<Vec<u8>> = Vec::new();
    let mut busy = 0u64;
    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for thread in 0..6 {
            let router = Arc::clone(&router);
            clients.push(scope.spawn(move || {
                let value = vec![b'v'; 250];
                let mut acked = Vec::new();
                let mut busy = 0u64;
                for i in 0..300u32 {
                    let key = format!("k-{thread}-{i:05}").into_bytes();
                    match router.put("tenant", &key, &value) {
                        Ok(_) => acked.push(key),
                        Err(ServeError::Busy {
                            reason,
                            retry_after,
                        }) => {
                            busy += 1;
                            assert!(
                                matches!(
                                    reason,
                                    BusyReason::ColdBacklog
                                        | BusyReason::MemoryPressure
                                        | BusyReason::QueueFull
                                ),
                                "unexpected busy reason {reason:?}"
                            );
                            assert!(retry_after > Duration::ZERO, "retry hint must be usable");
                        }
                        Err(other) => panic!("only Ok or Busy expected, got {other}"),
                    }
                }
                (acked, busy)
            }));
        }
        for client in clients {
            let (client_acked, client_busy) = client.join().expect("client thread");
            acked.extend(client_acked);
            busy += client_busy;
        }
    });
    stop_sampling.store(true, Ordering::Relaxed);
    let max_depth = max_depth.join().expect("sampler thread");

    assert!(busy > 0, "the saturation load must trip admission control");
    assert!(
        !acked.is_empty(),
        "some writes must land before the backlog builds"
    );
    assert!(
        max_depth <= SHARDS * QUEUE_CAPACITY,
        "queue depth {max_depth} exceeded the configured bound"
    );

    // No silent drops: every acknowledged write is readable; rejections
    // were surfaced as typed errors AND counted in the metric.
    for key in &acked {
        assert!(
            router.get("tenant", key).expect("get acked key").is_some(),
            "acked key {:?} must be readable",
            String::from_utf8_lossy(key)
        );
    }
    let snapshot = router.metrics().snapshot();
    assert_eq!(
        snapshot.counters["pbc_serve_admission_rejections_total"], busy,
        "every Busy must be counted, nothing double-counted"
    );
    assert_eq!(
        snapshot.counters["pbc_serve_puts_total"],
        acked.len() as u64
    );
    assert!(snapshot.counters["pbc_serve_batches_total"] > 0);

    // Phase 2 — drain: compact the L0 backlog away (what the background
    // maintenance thread would do in a real deployment; the full merge
    // clears L0 in one deterministic step).
    let store = Arc::clone(router.store());
    store.compact().expect("compact backlog");
    assert!(
        store.write_pressure().l0_segments < L0_LIMIT,
        "compaction must clear the L0 backlog"
    );

    // Phase 3 — recovered: a modest follow-up load (too small to rebuild
    // the backlog) is admitted in full.
    let value = vec![b'w'; 100];
    for i in 0..50u32 {
        let key = format!("post-{i:04}").into_bytes();
        router
            .put("tenant", &key, &value)
            .expect("writes must flow again after the backlog drains");
    }
    assert_eq!(router.queue_depth(), 0, "acked writes leave no residue");

    let snapshot = router.metrics().snapshot();
    assert_eq!(snapshot.gauges["pbc_serve_queue_depth"], 0);

    router.shutdown();
}

#[test]
fn rejections_have_no_side_effects() {
    let dir = TempDir::new("no-side-effects");
    let router = saturating_router(&dir);
    router
        .create_tenant("tenant", TenantQuota::unlimited())
        .expect("create tenant");

    // Build an L0 backlog past the gate with direct store writes (the
    // router's own writes would start bouncing part-way).
    let store = Arc::clone(router.store());
    let value = vec![b'x'; 400];
    for i in 0..200u32 {
        store
            .set(format!("raw-{i:05}").as_bytes(), &value)
            .expect("direct store write");
    }
    assert!(
        store.write_pressure().l0_segments >= L0_LIMIT,
        "setup must exceed the backlog gate"
    );

    let before = router.usage("tenant").expect("usage");
    let err = router.put("tenant", b"bounced", b"value").unwrap_err();
    assert!(matches!(err, ServeError::Busy { .. }), "got {err}");
    let after = router.usage("tenant").expect("usage");
    assert_eq!(
        before, after,
        "a Busy rejection must not change quota accounting"
    );
    assert_eq!(
        router.get("tenant", b"bounced").expect("get"),
        None,
        "a Busy rejection must not reach the store"
    );
    router.shutdown();
}
