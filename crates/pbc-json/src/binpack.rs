//! Schema-driven binary JSON encoding ("BP-D" in the paper's Tables 6–7),
//! in the spirit of JSON BinPack's schema-driven mode.
//!
//! The codec is trained on sample documents: it infers a [`Schema`] and then
//! encodes each document *against* that schema — object keys are never
//! serialized (the schema fixes the field order), enum strings become small
//! integers, integers are zig-zag varints, optional fields cost one presence
//! bit (byte). Documents that do not conform to the schema are embedded via
//! the schema-less Ion-like encoding behind an escape marker, mirroring how
//! a schema-driven serializer must handle out-of-schema data.
//!
//! This reproduces the behaviour the paper highlights in Section 7.4.2: the
//! schema captures co-occurrence at the *key* level, but not among values —
//! which is why PBC can beat it on datasets like `github` despite having no
//! schema knowledge at all.

use pbc_codecs::varint;

use crate::error::{JsonError, Result};
use crate::ionlike::IonLikeCodec;
use crate::schema::Schema;
use crate::value::{JsonValue, Number};

/// Marker written before a document that does not conform to the schema.
const ESCAPE_MARKER: u8 = 0xfe;
/// Marker written before a conforming document.
const CONFORMING_MARKER: u8 = 0xff;

/// A trained, schema-driven codec.
#[derive(Debug, Clone)]
pub struct BinPackCodec {
    schema: Schema,
    fallback: IonLikeCodec,
}

impl BinPackCodec {
    /// Train the codec by inferring a schema from sample documents.
    pub fn train(samples: &[&JsonValue]) -> Self {
        BinPackCodec {
            schema: Schema::infer(samples),
            fallback: IonLikeCodec::new(),
        }
    }

    /// Build a codec from an explicit schema (the "application-provided
    /// schema" setting of the paper).
    pub fn with_schema(schema: Schema) -> Self {
        BinPackCodec {
            schema,
            fallback: IonLikeCodec::new(),
        }
    }

    /// The schema driving this codec.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Encode one document.
    pub fn encode(&self, doc: &JsonValue) -> Vec<u8> {
        let mut out = Vec::new();
        if self.schema.matches(doc) {
            out.push(CONFORMING_MARKER);
            encode_with_schema(&self.schema, doc, &mut out);
        } else {
            out.push(ESCAPE_MARKER);
            out.extend_from_slice(&self.fallback.encode(doc));
        }
        out
    }

    /// Decode a document produced by [`BinPackCodec::encode`].
    pub fn decode(&self, input: &[u8]) -> Result<JsonValue> {
        match input.first() {
            Some(&CONFORMING_MARKER) => {
                let (value, pos) = decode_with_schema(&self.schema, input, 1)?;
                if pos != input.len() {
                    return Err(JsonError::corrupt("trailing bytes after document"));
                }
                Ok(value)
            }
            Some(&ESCAPE_MARKER) => self.fallback.decode(&input[1..]),
            Some(other) => Err(JsonError::corrupt(format!(
                "unknown document marker {other:#x}"
            ))),
            None => Err(JsonError::corrupt("empty payload")),
        }
    }
}

fn encode_with_schema(schema: &Schema, value: &JsonValue, out: &mut Vec<u8>) {
    match (schema, value) {
        (Schema::Null, _) => {}
        (Schema::Bool, JsonValue::Bool(b)) => out.push(u8::from(*b)),
        (Schema::Int, JsonValue::Number(Number::Int(i))) => {
            varint::write_i64(out, *i);
        }
        (Schema::Float, JsonValue::Number(n)) => {
            out.extend_from_slice(&n.as_f64().to_le_bytes());
        }
        (Schema::Enum(options), JsonValue::String(s)) => {
            match options.iter().position(|o| o == s) {
                Some(idx) => {
                    varint::write_usize(out, idx + 1);
                }
                None => {
                    // Out-of-enumeration value: 0 marker followed by the raw
                    // string.
                    varint::write_usize(out, 0);
                    write_string(s, out);
                }
            }
        }
        (Schema::String, JsonValue::String(s)) => write_string(s, out),
        (Schema::Array(elem), JsonValue::Array(items)) => {
            varint::write_usize(out, items.len());
            for item in items {
                encode_with_schema(elem, item, out);
            }
        }
        (Schema::Object(fields), JsonValue::Object(members)) => {
            for field in fields {
                let found = members
                    .iter()
                    .find(|(k, _)| k == &field.key)
                    .map(|(_, v)| v);
                // The decoder reads a presence byte exactly when the field is
                // optional or its schema is Null; mirror that here.
                let has_presence = field.optional || matches!(field.schema, Schema::Null);
                if has_presence {
                    match found {
                        None => {
                            out.push(0);
                            continue;
                        }
                        Some(JsonValue::Null) => {
                            // Presence byte 2 = explicit null.
                            out.push(2);
                            continue;
                        }
                        Some(_) => out.push(1),
                    }
                }
                // pbc-allow(panic): matches() verified required fields before packing
                let v = found.expect("matches() guarantees required fields are present");
                encode_with_schema(&field.schema, v, out);
            }
        }
        (Schema::Any, v) => {
            // Self-describing fallback for `Any` nodes.
            let encoded = IonLikeCodec::new().encode(v);
            varint::write_usize(out, encoded.len());
            out.extend_from_slice(&encoded);
        }
        // `matches()` guarantees the pairs above; anything else is a bug in
        // the caller, encoded defensively as Any.
        (_, v) => {
            let encoded = IonLikeCodec::new().encode(v);
            varint::write_usize(out, encoded.len());
            out.extend_from_slice(&encoded);
        }
    }
}

fn write_string(s: &str, out: &mut Vec<u8>) {
    varint::write_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn read_string(input: &[u8], pos: usize) -> Result<(String, usize)> {
    let (len, pos) = varint::read_usize(input, pos)?;
    if pos + len > input.len() {
        return Err(JsonError::corrupt("truncated string"));
    }
    let s = std::str::from_utf8(&input[pos..pos + len])
        .map_err(|_| JsonError::corrupt("invalid UTF-8"))?
        .to_string();
    Ok((s, pos + len))
}

fn decode_with_schema(schema: &Schema, input: &[u8], pos: usize) -> Result<(JsonValue, usize)> {
    match schema {
        Schema::Null => Ok((JsonValue::Null, pos)),
        Schema::Bool => {
            let b = *input
                .get(pos)
                .ok_or_else(|| JsonError::corrupt("truncated bool"))?;
            Ok((JsonValue::Bool(b != 0), pos + 1))
        }
        Schema::Int => {
            let (v, pos) = varint::read_i64(input, pos)?;
            Ok((JsonValue::Number(Number::Int(v)), pos))
        }
        Schema::Float => {
            if pos + 8 > input.len() {
                return Err(JsonError::corrupt("truncated float"));
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&input[pos..pos + 8]);
            Ok((
                JsonValue::Number(Number::Float(f64::from_le_bytes(b))),
                pos + 8,
            ))
        }
        Schema::Enum(options) => {
            let (idx, pos) = varint::read_usize(input, pos)?;
            if idx == 0 {
                let (s, pos) = read_string(input, pos)?;
                Ok((JsonValue::String(s), pos))
            } else {
                let s = options
                    .get(idx - 1)
                    .ok_or_else(|| JsonError::corrupt("enum index out of range"))?;
                Ok((JsonValue::String(s.clone()), pos))
            }
        }
        Schema::String => {
            let (s, pos) = read_string(input, pos)?;
            Ok((JsonValue::String(s), pos))
        }
        Schema::Array(elem) => {
            let (count, mut pos) = varint::read_usize(input, pos)?;
            if count > input.len() {
                return Err(JsonError::corrupt("implausible array length"));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                let (v, p) = decode_with_schema(elem, input, pos)?;
                items.push(v);
                pos = p;
            }
            Ok((JsonValue::Array(items), pos))
        }
        Schema::Object(fields) => {
            let mut members = Vec::with_capacity(fields.len());
            let mut pos = pos;
            for field in fields {
                let presence = if field.optional || matches!(field.schema, Schema::Null) {
                    let b = *input
                        .get(pos)
                        .ok_or_else(|| JsonError::corrupt("truncated presence byte"))?;
                    pos += 1;
                    b
                } else {
                    // Required non-null fields have no presence byte unless
                    // the value was null at encode time; peek is impossible,
                    // so required fields always encode the value directly.
                    1
                };
                match presence {
                    0 => continue,
                    2 => members.push((field.key.clone(), JsonValue::Null)),
                    _ => {
                        let (v, p) = decode_with_schema(&field.schema, input, pos)?;
                        pos = p;
                        members.push((field.key.clone(), v));
                    }
                }
            }
            Ok((JsonValue::Object(members), pos))
        }
        Schema::Any => {
            let (len, pos) = varint::read_usize(input, pos)?;
            if pos + len > input.len() {
                return Err(JsonError::corrupt("truncated Any payload"));
            }
            let v = IonLikeCodec::new().decode(&input[pos..pos + len])?;
            Ok((v, pos + len))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::schema::Field;

    fn trade_docs(n: usize) -> Vec<JsonValue> {
        (0..n)
            .map(|i| {
                parse(&format!(
                    r#"{{"symbol": "{}", "side": "{}", "quantity": {}, "price": {}.5, "timestamp": 16395740{:02}}}"#,
                    ["IBM", "AAPL", "MSFT"][i % 3],
                    if i % 2 == 0 { "B" } else { "S" },
                    100 + i,
                    50 + (i % 9),
                    i % 100
                ))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn conforming_documents_roundtrip() {
        let docs = trade_docs(50);
        let refs: Vec<&JsonValue> = docs.iter().collect();
        let codec = BinPackCodec::train(&refs[..30]);
        for d in &docs {
            let enc = codec.encode(d);
            assert_eq!(&codec.decode(&enc).unwrap(), d);
        }
    }

    #[test]
    fn schema_driven_encoding_is_much_smaller_than_text_and_ion() {
        let docs = trade_docs(40);
        let refs: Vec<&JsonValue> = docs.iter().collect();
        let codec = BinPackCodec::train(&refs[..20]);
        let ion = IonLikeCodec::new();
        let doc = &docs[35];
        let text_len = crate::writer::to_string(doc).len();
        let ion_len = ion.encode(doc).len();
        let bp_len = codec.encode(doc).len();
        assert!(
            bp_len < ion_len,
            "BP-D {bp_len} should beat Ion-B {ion_len}"
        );
        assert!(
            bp_len * 3 < text_len,
            "BP-D {bp_len} should be ≲ a third of text {text_len}"
        );
    }

    #[test]
    fn non_conforming_documents_fall_back_and_roundtrip() {
        let docs = trade_docs(20);
        let refs: Vec<&JsonValue> = docs.iter().collect();
        let codec = BinPackCodec::train(&refs);
        let other = parse(r#"{"completely": ["different", "structure"], "n": 1}"#).unwrap();
        let enc = codec.encode(&other);
        assert_eq!(enc[0], ESCAPE_MARKER);
        assert_eq!(codec.decode(&enc).unwrap(), other);
    }

    #[test]
    fn optional_and_null_fields_roundtrip() {
        let samples = vec![
            parse(r#"{"name": "a", "region": "EU", "note": "x"}"#).unwrap(),
            parse(r#"{"name": "b", "region": "EU"}"#).unwrap(),
            parse(r#"{"name": "c", "region": "US", "note": null}"#).unwrap(),
        ];
        let refs: Vec<&JsonValue> = samples.iter().collect();
        let codec = BinPackCodec::train(&refs);
        for d in &samples {
            let enc = codec.encode(d);
            assert_eq!(&codec.decode(&enc).unwrap(), d, "doc {d}");
        }
    }

    #[test]
    fn explicit_schema_constructor_is_usable() {
        let schema = Schema::Object(vec![
            Field {
                key: "id".into(),
                schema: Schema::Int,
                optional: false,
            },
            Field {
                key: "tag".into(),
                schema: Schema::String,
                optional: false,
            },
        ]);
        let codec = BinPackCodec::with_schema(schema);
        let doc = parse(r#"{"id": 9, "tag": "ok"}"#).unwrap();
        assert_eq!(codec.decode(&codec.encode(&doc)).unwrap(), doc);
        assert!(matches!(codec.schema(), Schema::Object(_)));
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        let docs = trade_docs(10);
        let refs: Vec<&JsonValue> = docs.iter().collect();
        let codec = BinPackCodec::train(&refs);
        assert!(codec.decode(&[]).is_err());
        assert!(codec.decode(&[0x33, 1, 2]).is_err());
        let mut enc = codec.encode(&docs[0]);
        enc.truncate(enc.len() - 3);
        assert!(codec.decode(&enc).is_err());
    }

    #[test]
    fn nested_array_of_objects_roundtrips() {
        let samples: Vec<JsonValue> = (0..5)
            .map(|i| {
                parse(&format!(
                    r#"{{"repo": "r{i}", "events": [{{"type": "push", "n": {i}}}, {{"type": "fork", "n": 0}}]}}"#
                ))
                .unwrap()
            })
            .collect();
        let refs: Vec<&JsonValue> = samples.iter().collect();
        let codec = BinPackCodec::train(&refs);
        for d in &samples {
            assert_eq!(&codec.decode(&codec.encode(d)).unwrap(), d);
        }
    }
}
