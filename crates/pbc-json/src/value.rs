//! The JSON document model.

use std::fmt;

/// A JSON number: either an exact 64-bit integer or a double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An integer without a fractional part or exponent.
    Int(i64),
    /// Any other numeric literal.
    Float(f64),
}

impl Number {
    /// The value as an `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::Float(_) => None,
        }
    }
}

/// A JSON value. Object member order is preserved (machine-generated JSON
/// is emitted with a fixed key order, and preserving it matters both for
/// byte-exact round-trips and for the structural redundancy PBC exploits).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Numeric literal.
    Number(Number),
    /// String literal.
    String(String),
    /// Array of values.
    Array(Vec<JsonValue>),
    /// Object with ordered members.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup for objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content, if this is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Whether this value is a container (array or object).
    pub fn is_container(&self) -> bool {
        matches!(self, JsonValue::Array(_) | JsonValue::Object(_))
    }

    /// Short name of the value's type, used in error messages and schema
    /// inference.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Number(Number::Int(_)) => "int",
            JsonValue::Number(Number::Float(_)) => "float",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::writer::to_string(self))
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Number(Number::Int(v))
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(Number::Float(v))
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_string())
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_lookup_and_accessors() {
        let doc = JsonValue::Object(vec![
            ("name".to_string(), JsonValue::from("unece")),
            ("code".to_string(), JsonValue::from(42i64)),
            ("ratio".to_string(), JsonValue::from(0.5)),
        ]);
        assert_eq!(doc.get("name").and_then(JsonValue::as_str), Some("unece"));
        assert_eq!(doc.get("code").and_then(JsonValue::as_i64), Some(42));
        assert_eq!(doc.get("missing"), None);
        assert!(doc.is_container());
        assert_eq!(doc.type_name(), "object");
    }

    #[test]
    fn number_conversions() {
        assert_eq!(Number::Int(7).as_f64(), 7.0);
        assert_eq!(Number::Int(7).as_i64(), Some(7));
        assert_eq!(Number::Float(1.5).as_i64(), None);
    }

    #[test]
    fn from_impls_produce_expected_variants() {
        assert_eq!(JsonValue::from(true), JsonValue::Bool(true));
        assert_eq!(JsonValue::from(3i64).type_name(), "int");
        assert_eq!(JsonValue::from(3.5).type_name(), "float");
        assert_eq!(JsonValue::from("x").type_name(), "string");
    }
}
