//! # pbc-json — JSON substrate and JSON-specialised compression baselines
//!
//! The PBC paper compares against JSON-specific serialisation formats
//! (Section 7.4.2): *Amazon Ion* in its binary form ("Ion-B") and
//! *JSON BinPack* in its schema-driven mode ("BP-D"). This crate provides
//! the substrate needed to reproduce those experiments without third-party
//! dependencies:
//!
//! * [`value`] / [`parser`] / [`writer`] — a small JSON document model,
//!   parser and serializer;
//! * [`ionlike`] — a compact, schema-less binary encoding in the spirit of
//!   Amazon Ion's binary format (type tags + varint lengths);
//! * [`schema`] + [`binpack`] — schema inference over sample documents and a
//!   schema-driven encoding in the spirit of JSON BinPack's schema-driven
//!   mode (field order fixed by the schema, keys never serialized, enum and
//!   integer specialisations);
//! * [`msgpack`] — a MessagePack-style encoding (the serialisation Redis
//!   ecosystems commonly use), included as an additional reference point.
//!
//! All encoders work per record (document), which is what the paper's
//! record-compression experiment (Table 6, left half) measures; file-level
//! numbers are obtained by the benchmark harness by concatenating encoded
//! records and applying a block compressor.

#![forbid(unsafe_code)]

pub mod binpack;
pub mod error;
pub mod ionlike;
pub mod msgpack;
pub mod parser;
pub mod schema;
pub mod value;
pub mod writer;

pub use binpack::BinPackCodec;
pub use error::{JsonError, Result};
pub use ionlike::IonLikeCodec;
pub use msgpack::MsgPackCodec;
pub use parser::parse;
pub use schema::Schema;
pub use value::{JsonValue, Number};
pub use writer::to_string;
