//! Ion-like binary JSON encoding ("Ion-B" in the paper's Table 6).
//!
//! A schema-less, self-describing binary serialisation in the spirit of
//! Amazon Ion's binary format: every value carries a one-byte type tag,
//! lengths and integers are varint/zig-zag coded, and object keys are
//! written through a per-document symbol table so repeated keys inside one
//! document cost one byte after their first occurrence. Like the real
//! Ion binary format (and unlike PBC), cross-document redundancy is not
//! exploited — which is exactly the gap Table 6 demonstrates.

use pbc_codecs::varint;

use crate::error::{JsonError, Result};
use crate::value::{JsonValue, Number};

/// Type tags of the binary format.
mod tag {
    pub const NULL: u8 = 0;
    pub const FALSE: u8 = 1;
    pub const TRUE: u8 = 2;
    pub const INT: u8 = 3;
    pub const FLOAT: u8 = 4;
    pub const STRING: u8 = 5;
    pub const ARRAY: u8 = 6;
    pub const OBJECT: u8 = 7;
    /// Key reference into the per-document symbol table.
    pub const KEY_REF: u8 = 8;
    /// Inline key definition (added to the symbol table).
    pub const KEY_DEF: u8 = 9;
}

/// Encoder/decoder for the Ion-like format.
#[derive(Debug, Clone, Default)]
pub struct IonLikeCodec;

impl IonLikeCodec {
    /// Create the codec.
    pub fn new() -> Self {
        IonLikeCodec
    }

    /// Encode one JSON document.
    pub fn encode(&self, value: &JsonValue) -> Vec<u8> {
        let mut out = Vec::new();
        let mut symbols: Vec<String> = Vec::new();
        encode_value(value, &mut out, &mut symbols);
        out
    }

    /// Decode a document produced by [`IonLikeCodec::encode`].
    pub fn decode(&self, input: &[u8]) -> Result<JsonValue> {
        let mut symbols: Vec<String> = Vec::new();
        let (value, pos) = decode_value(input, 0, &mut symbols, 0)?;
        if pos != input.len() {
            return Err(JsonError::corrupt("trailing bytes after document"));
        }
        Ok(value)
    }

    /// Encode JSON text directly (parse + encode), as the benchmark harness
    /// does for the record-compression experiment.
    pub fn encode_text(&self, text: &str) -> Result<Vec<u8>> {
        Ok(self.encode(&crate::parser::parse(text)?))
    }
}

fn encode_value(value: &JsonValue, out: &mut Vec<u8>, symbols: &mut Vec<String>) {
    match value {
        JsonValue::Null => out.push(tag::NULL),
        JsonValue::Bool(false) => out.push(tag::FALSE),
        JsonValue::Bool(true) => out.push(tag::TRUE),
        JsonValue::Number(Number::Int(i)) => {
            out.push(tag::INT);
            varint::write_i64(out, *i);
        }
        JsonValue::Number(Number::Float(f)) => {
            out.push(tag::FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        JsonValue::String(s) => {
            out.push(tag::STRING);
            varint::write_usize(out, s.len());
            out.extend_from_slice(s.as_bytes());
        }
        JsonValue::Array(items) => {
            out.push(tag::ARRAY);
            varint::write_usize(out, items.len());
            for item in items {
                encode_value(item, out, symbols);
            }
        }
        JsonValue::Object(members) => {
            out.push(tag::OBJECT);
            varint::write_usize(out, members.len());
            for (key, val) in members {
                match symbols.iter().position(|s| s == key) {
                    Some(idx) => {
                        out.push(tag::KEY_REF);
                        varint::write_usize(out, idx);
                    }
                    None => {
                        out.push(tag::KEY_DEF);
                        varint::write_usize(out, key.len());
                        out.extend_from_slice(key.as_bytes());
                        symbols.push(key.clone());
                    }
                }
                encode_value(val, out, symbols);
            }
        }
    }
}

/// Depth guard against adversarially nested payloads.
const MAX_DEPTH: usize = 128;

fn decode_value(
    input: &[u8],
    pos: usize,
    symbols: &mut Vec<String>,
    depth: usize,
) -> Result<(JsonValue, usize)> {
    if depth > MAX_DEPTH {
        return Err(JsonError::corrupt("nesting too deep"));
    }
    let t = *input
        .get(pos)
        .ok_or_else(|| JsonError::corrupt("missing type tag"))?;
    let pos = pos + 1;
    match t {
        tag::NULL => Ok((JsonValue::Null, pos)),
        tag::FALSE => Ok((JsonValue::Bool(false), pos)),
        tag::TRUE => Ok((JsonValue::Bool(true), pos)),
        tag::INT => {
            let (v, pos) = varint::read_i64(input, pos)?;
            Ok((JsonValue::Number(Number::Int(v)), pos))
        }
        tag::FLOAT => {
            if pos + 8 > input.len() {
                return Err(JsonError::corrupt("truncated float"));
            }
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&input[pos..pos + 8]);
            Ok((
                JsonValue::Number(Number::Float(f64::from_le_bytes(bytes))),
                pos + 8,
            ))
        }
        tag::STRING => {
            let (len, pos) = varint::read_usize(input, pos)?;
            let (s, pos) = read_str(input, pos, len)?;
            Ok((JsonValue::String(s), pos))
        }
        tag::ARRAY => {
            let (count, mut pos) = varint::read_usize(input, pos)?;
            if count > input.len() {
                return Err(JsonError::corrupt("implausible array length"));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                let (v, p) = decode_value(input, pos, symbols, depth + 1)?;
                items.push(v);
                pos = p;
            }
            Ok((JsonValue::Array(items), pos))
        }
        tag::OBJECT => {
            let (count, mut pos) = varint::read_usize(input, pos)?;
            if count > input.len() {
                return Err(JsonError::corrupt("implausible object length"));
            }
            let mut members = Vec::with_capacity(count);
            for _ in 0..count {
                let key_tag = *input
                    .get(pos)
                    .ok_or_else(|| JsonError::corrupt("missing key tag"))?;
                pos += 1;
                let key = match key_tag {
                    tag::KEY_REF => {
                        let (idx, p) = varint::read_usize(input, pos)?;
                        pos = p;
                        symbols
                            .get(idx)
                            .ok_or_else(|| JsonError::corrupt("symbol reference out of range"))?
                            .clone()
                    }
                    tag::KEY_DEF => {
                        let (len, p) = varint::read_usize(input, pos)?;
                        let (s, p) = read_str(input, p, len)?;
                        pos = p;
                        symbols.push(s.clone());
                        s
                    }
                    other => return Err(JsonError::corrupt(format!("unexpected key tag {other}"))),
                };
                let (v, p) = decode_value(input, pos, symbols, depth + 1)?;
                pos = p;
                members.push((key, v));
            }
            Ok((JsonValue::Object(members), pos))
        }
        other => Err(JsonError::corrupt(format!("unknown type tag {other}"))),
    }
}

fn read_str(input: &[u8], pos: usize, len: usize) -> Result<(String, usize)> {
    if pos + len > input.len() {
        return Err(JsonError::corrupt("truncated string"));
    }
    let s = std::str::from_utf8(&input[pos..pos + len])
        .map_err(|_| JsonError::corrupt("invalid UTF-8 in string"))?
        .to_string();
    Ok((s, pos + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(text: &str) -> usize {
        let codec = IonLikeCodec::new();
        let doc = parse(text).unwrap();
        let encoded = codec.encode(&doc);
        assert_eq!(codec.decode(&encoded).unwrap(), doc, "roundtrip of {text}");
        encoded.len()
    }

    #[test]
    fn roundtrips_scalars_and_containers() {
        roundtrip("null");
        roundtrip("true");
        roundtrip("-12345");
        roundtrip("3.75");
        roundtrip("\"hello world\"");
        roundtrip("[1, 2, 3, [4, 5], {\"a\": null}]");
        roundtrip("{}");
        roundtrip("[]");
    }

    #[test]
    fn encoding_is_smaller_than_text_for_typical_records() {
        let text = r#"{"symbol": "IBM", "side": "B", "quantity": 100, "price": 50.25, "timestamp": 1639574096}"#;
        let size = roundtrip(text);
        assert!(
            size < text.len(),
            "binary ({size}) should be smaller than text ({})",
            text.len()
        );
    }

    #[test]
    fn repeated_keys_within_a_document_use_the_symbol_table() {
        // An array of objects with identical keys: keys are written once.
        let many = format!(
            "[{}]",
            (0..20)
                .map(|i| format!(
                    r#"{{"latitude": {i}.5, "longitude": -{i}.25, "population": {i}}}"#
                ))
                .collect::<Vec<_>>()
                .join(",")
        );
        let few = r#"[{"latitude": 0.5, "longitude": -0.25, "population": 0}]"#;
        let codec = IonLikeCodec::new();
        let many_size = codec.encode(&parse(&many).unwrap()).len();
        let few_size = codec.encode(&parse(few).unwrap()).len();
        // 20 objects must cost much less than 20× one object.
        assert!(many_size < few_size * 12, "many={many_size} few={few_size}");
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        let codec = IonLikeCodec::new();
        assert!(codec.decode(&[]).is_err());
        assert!(codec.decode(&[200]).is_err());
        assert!(codec.decode(&[tag::STRING, 10, b'a']).is_err());
        let doc = parse(r#"{"a": [1, 2, 3]}"#).unwrap();
        let mut enc = codec.encode(&doc);
        enc.truncate(enc.len() - 2);
        assert!(codec.decode(&enc).is_err());
        // Trailing garbage.
        let mut enc = codec.encode(&doc);
        enc.push(0);
        assert!(codec.decode(&enc).is_err());
    }

    #[test]
    fn encode_text_parses_and_encodes() {
        let codec = IonLikeCodec::new();
        assert!(codec.encode_text(r#"{"ok": true}"#).is_ok());
        assert!(codec.encode_text("not json").is_err());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        roundtrip(r#"{"city": "München", "emoji": "🗜️", "cjk": "機械生成データ"}"#);
    }
}
