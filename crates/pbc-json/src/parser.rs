//! A small recursive-descent JSON parser.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes and
//! `\uXXXX` sequences, numbers, booleans, null). Member order of objects is
//! preserved. Numbers without fraction/exponent that fit an `i64` are kept
//! exact; everything else becomes `f64`.

use crate::error::{JsonError, Result};
use crate::value::{JsonValue, Number};

/// Parse a complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::parse(
            p.pos,
            "trailing characters after document",
        ));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::parse(
                self.pos,
                format!("expected '{}'", byte as char),
            ))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(JsonError::parse(
                self.pos,
                format!("unexpected character '{}'", c as char),
            )),
            None => Err(JsonError::parse(self.pos, "unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(JsonError::parse(self.pos, format!("expected '{keyword}'")))
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(members)),
                _ => return Err(JsonError::parse(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(JsonError::parse(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Handle surrogate pairs.
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            if self.peek() == Some(b'\\') {
                                self.pos += 1;
                                if self.bump() != Some(b'u') {
                                    return Err(JsonError::parse(
                                        self.pos,
                                        "expected low surrogate",
                                    ));
                                }
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        out.push(ch.unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(JsonError::parse(self.pos, "invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(JsonError::parse(self.pos, "control character in string"))
                }
                Some(b) => {
                    // Re-assemble UTF-8 multi-byte sequences verbatim.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = (start + width).min(self.bytes.len());
                        match std::str::from_utf8(&self.bytes[start..end]) {
                            Ok(s) => {
                                out.push_str(s);
                                self.pos = end;
                            }
                            Err(_) => out.push('\u{FFFD}'),
                        }
                    }
                }
                None => return Err(JsonError::parse(self.pos, "unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| JsonError::parse(self.pos, "truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| JsonError::parse(self.pos, "invalid hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::parse(start, "invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(JsonError::parse(start, "invalid number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Number(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| JsonValue::Number(Number::Float(f)))
            .map_err(|_| JsonError::parse(start, "invalid number"))
    }
}

/// Width in bytes of a UTF-8 sequence starting with `lead`.
fn utf8_width(lead: u8) -> usize {
    if lead >= 0xF0 {
        4
    } else if lead >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::to_string;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Number(Number::Int(42)));
        assert_eq!(parse("-7").unwrap(), JsonValue::Number(Number::Int(-7)));
        assert_eq!(parse("1.5").unwrap(), JsonValue::Number(Number::Float(1.5)));
        assert_eq!(
            parse("1e3").unwrap(),
            JsonValue::Number(Number::Float(1000.0))
        );
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::from("hi"));
    }

    #[test]
    fn parses_nested_documents_preserving_order() {
        let doc = parse(
            r#"{"symbol": "IBM", "side": "B", "quantity": 100, "price": 50.25, "nested": {"a": [1, 2, 3], "b": null}}"#,
        )
        .unwrap();
        if let JsonValue::Object(members) = &doc {
            let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, vec!["symbol", "side", "quantity", "price", "nested"]);
        } else {
            panic!("expected object");
        }
        assert_eq!(doc.get("quantity").and_then(JsonValue::as_i64), Some(100));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = parse(r#""line\nbreak \t tab \"quoted\" \\ slash é 😀""#).unwrap();
        let s = doc.as_str().unwrap();
        assert!(s.contains('\n'));
        assert!(s.contains('\t'));
        assert!(s.contains("\"quoted\""));
        assert!(s.contains('é'));
        assert!(s.contains('😀'));
    }

    #[test]
    fn unicode_passthrough() {
        let doc = parse(r#"{"city": "São Paulo", "国": "日本"}"#).unwrap();
        assert_eq!(
            doc.get("city").and_then(JsonValue::as_str),
            Some("São Paulo")
        );
        assert_eq!(doc.get("国").and_then(JsonValue::as_str), Some("日本"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "tru",
            "\"unterminated",
            "01x",
            "{\"a\": 1} extra",
            "-",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_write_roundtrip_is_stable() {
        let sources = [
            r#"{"a":1,"b":[true,null,"x"],"c":{"d":2.5}}"#,
            r#"[{"id":1},{"id":2}]"#,
            r#"{"empty_obj":{},"empty_arr":[]}"#,
        ];
        for src in sources {
            let v1 = parse(src).unwrap();
            let text = to_string(&v1);
            let v2 = parse(&text).unwrap();
            assert_eq!(v1, v2, "roundtrip of {src}");
        }
    }

    #[test]
    fn large_integers_and_floats() {
        assert_eq!(
            parse("9223372036854775807").unwrap(),
            JsonValue::Number(Number::Int(i64::MAX))
        );
        // Too big for i64 → parsed as float.
        assert!(matches!(
            parse("92233720368547758080").unwrap(),
            JsonValue::Number(Number::Float(_))
        ));
    }
}
