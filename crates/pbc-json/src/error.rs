//! Error types for JSON parsing and binary (de)serialisation.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, JsonError>;

/// Errors produced by the JSON parser and the binary codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Text could not be parsed as JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// Description of what was expected.
        message: String,
    },
    /// A binary payload was truncated or structurally invalid.
    Corrupt {
        /// Description of the problem.
        message: String,
    },
    /// A document does not conform to the schema it is being encoded or
    /// decoded against.
    SchemaMismatch {
        /// Description of the mismatch.
        message: String,
    },
}

impl JsonError {
    /// Convenience constructor for parse errors.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        JsonError::Parse {
            offset,
            message: message.into(),
        }
    }

    /// Convenience constructor for corrupt-payload errors.
    pub fn corrupt(message: impl Into<String>) -> Self {
        JsonError::Corrupt {
            message: message.into(),
        }
    }

    /// Convenience constructor for schema mismatches.
    pub fn schema(message: impl Into<String>) -> Self {
        JsonError::SchemaMismatch {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            JsonError::Corrupt { message } => write!(f, "corrupt binary JSON payload: {message}"),
            JsonError::SchemaMismatch { message } => write!(f, "schema mismatch: {message}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<pbc_codecs::CodecError> for JsonError {
    fn from(e: pbc_codecs::CodecError) -> Self {
        JsonError::corrupt(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(JsonError::parse(12, "expected ':'")
            .to_string()
            .contains("12"));
        assert!(JsonError::corrupt("bad tag")
            .to_string()
            .contains("bad tag"));
        assert!(JsonError::schema("missing field")
            .to_string()
            .contains("missing field"));
    }

    #[test]
    fn codec_errors_convert() {
        let e: JsonError = pbc_codecs::CodecError::MissingDictionary.into();
        assert!(matches!(e, JsonError::Corrupt { .. }));
    }
}
