//! JSON schema inference for the schema-driven BinPack-like codec.
//!
//! JSON BinPack's schema-driven mode ("BP-D" in the paper) relies on an
//! application-provided JSON Schema. Machine-generated JSON from one
//! application follows a stable schema, so we infer an equivalent structure
//! from sample documents: a fixed, ordered field list for objects, element
//! schemas for arrays, enumerations for low-cardinality strings, and
//! specialised integer/float/boolean leaves.

use std::collections::BTreeSet;

use crate::value::{JsonValue, Number};

/// Maximum number of distinct string values before a field stops being
/// treated as an enumeration.
const MAX_ENUM_VALUES: usize = 16;

/// An inferred schema node.
#[derive(Debug, Clone, PartialEq)]
pub enum Schema {
    /// `null` only.
    Null,
    /// Boolean.
    Bool,
    /// Integer (i64).
    Int,
    /// Float (or a mix of int and float).
    Float,
    /// Free-form string.
    String,
    /// Low-cardinality string with the observed value set.
    Enum(Vec<String>),
    /// Array with a homogeneous element schema.
    Array(Box<Schema>),
    /// Object with a fixed, ordered field list. `optional` marks fields that
    /// were missing in some samples.
    Object(Vec<Field>),
    /// Anything: the fallback when samples disagree structurally.
    Any,
}

/// One object field in an inferred schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Member key.
    pub key: String,
    /// Value schema.
    pub schema: Schema,
    /// Whether some sample documents lacked this member.
    pub optional: bool,
}

impl Schema {
    /// Infer a schema from sample documents.
    pub fn infer(samples: &[&JsonValue]) -> Schema {
        if samples.is_empty() {
            return Schema::Any;
        }
        infer_values(samples)
    }

    /// Whether a document structurally conforms to this schema (strings not
    /// in an enumeration still conform; enums fall back to plain strings at
    /// encode time).
    pub fn matches(&self, value: &JsonValue) -> bool {
        match (self, value) {
            (Schema::Any, _) => true,
            (Schema::Null, JsonValue::Null) => true,
            (Schema::Bool, JsonValue::Bool(_)) => true,
            (Schema::Int, JsonValue::Number(Number::Int(_))) => true,
            (Schema::Float, JsonValue::Number(_)) => true,
            (Schema::String | Schema::Enum(_), JsonValue::String(_)) => true,
            (Schema::Array(elem), JsonValue::Array(items)) => items.iter().all(|i| elem.matches(i)),
            (Schema::Object(fields), JsonValue::Object(members)) => {
                // Every member must be a known field, and every required
                // field must be present.
                members.iter().all(|(k, v)| {
                    fields
                        .iter()
                        .find(|f| &f.key == k)
                        .is_some_and(|f| f.schema.matches(v))
                }) && fields
                    .iter()
                    .all(|f| f.optional || members.iter().any(|(k, _)| k == &f.key))
            }
            _ => false,
        }
    }
}

fn infer_values(values: &[&JsonValue]) -> Schema {
    let mut kinds: BTreeSet<&'static str> = BTreeSet::new();
    for v in values {
        kinds.insert(v.type_name());
    }
    // Null mixed with another single kind: keep the other kind (the codec
    // writes a presence marker for nullable values).
    let non_null: Vec<&&JsonValue> = values
        .iter()
        .filter(|v| !matches!(v, JsonValue::Null))
        .collect();
    if non_null.is_empty() {
        return Schema::Null;
    }
    let mut non_null_kinds: BTreeSet<&'static str> = BTreeSet::new();
    for v in &non_null {
        non_null_kinds.insert(v.type_name());
    }
    match non_null_kinds.len() {
        1 => {}
        2 if non_null_kinds.contains("int") && non_null_kinds.contains("float") => {
            return Schema::Float;
        }
        _ => return Schema::Any,
    }
    // pbc-allow(panic): the match arm above established the set is non-empty
    match *non_null_kinds.iter().next().expect("one kind") {
        "bool" => Schema::Bool,
        "int" => Schema::Int,
        "float" => Schema::Float,
        "string" => {
            let mut distinct: Vec<String> = Vec::new();
            for v in &non_null {
                if let JsonValue::String(s) = v {
                    if !distinct.contains(s) {
                        distinct.push(s.clone());
                        if distinct.len() > MAX_ENUM_VALUES {
                            return Schema::String;
                        }
                    }
                }
            }
            // Only treat as an enumeration if values repeat (otherwise it is
            // an open-ended identifier field).
            if distinct.len() < non_null.len() {
                distinct.sort();
                Schema::Enum(distinct)
            } else {
                Schema::String
            }
        }
        "array" => {
            let mut elems: Vec<&JsonValue> = Vec::new();
            for v in &non_null {
                if let JsonValue::Array(items) = v {
                    elems.extend(items.iter());
                }
            }
            if elems.is_empty() {
                Schema::Array(Box::new(Schema::Any))
            } else {
                Schema::Array(Box::new(infer_values(&elems)))
            }
        }
        "object" => {
            // Union of keys in first-seen order; a field is optional if any
            // sample lacks it.
            let mut order: Vec<String> = Vec::new();
            for v in &non_null {
                if let JsonValue::Object(members) = v {
                    for (k, _) in members {
                        if !order.contains(k) {
                            order.push(k.clone());
                        }
                    }
                }
            }
            let fields = order
                .into_iter()
                .map(|key| {
                    let mut present = 0usize;
                    let mut values: Vec<&JsonValue> = Vec::new();
                    for v in &non_null {
                        if let JsonValue::Object(members) = v {
                            if let Some((_, val)) = members.iter().find(|(k, _)| k == &key) {
                                present += 1;
                                values.push(val);
                            }
                        }
                    }
                    Field {
                        schema: infer_values(&values),
                        optional: present < non_null.len(),
                        key,
                    }
                })
                .collect();
            Schema::Object(fields)
        }
        "null" => Schema::Null,
        _ => Schema::Any,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn docs(texts: &[&str]) -> Vec<JsonValue> {
        texts.iter().map(|t| parse(t).unwrap()).collect()
    }

    #[test]
    fn infers_flat_object_schema_with_types() {
        let samples = docs(&[
            r#"{"symbol": "IBM", "side": "B", "quantity": 100, "price": 50.25}"#,
            r#"{"symbol": "AAPL", "side": "S", "quantity": 220, "price": 171.5}"#,
            r#"{"symbol": "IBM", "side": "B", "quantity": 99, "price": 49.0}"#,
        ]);
        let refs: Vec<&JsonValue> = samples.iter().collect();
        let schema = Schema::infer(&refs);
        let Schema::Object(fields) = &schema else {
            panic!("expected object schema")
        };
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[0].key, "symbol");
        assert!(matches!(fields[0].schema, Schema::Enum(_)));
        assert!(matches!(fields[2].schema, Schema::Int));
        assert!(matches!(fields[3].schema, Schema::Float));
        assert!(fields.iter().all(|f| !f.optional));
        for d in &samples {
            assert!(schema.matches(d));
        }
    }

    #[test]
    fn optional_fields_and_nested_objects() {
        let samples = docs(&[
            r#"{"name": "Berlin", "geo": {"lat": 52.5, "lon": 13.4}, "capital": true}"#,
            r#"{"name": "Lyon", "geo": {"lat": 45.7, "lon": 4.8}}"#,
        ]);
        let refs: Vec<&JsonValue> = samples.iter().collect();
        let schema = Schema::infer(&refs);
        let Schema::Object(fields) = &schema else {
            panic!()
        };
        let capital = fields.iter().find(|f| f.key == "capital").unwrap();
        assert!(capital.optional);
        let geo = fields.iter().find(|f| f.key == "geo").unwrap();
        assert!(matches!(geo.schema, Schema::Object(_)));
        for d in &samples {
            assert!(schema.matches(d));
        }
    }

    #[test]
    fn arrays_and_mixed_numbers() {
        let samples = docs(&[r#"{"values": [1, 2, 3.5], "tags": ["a", "b"]}"#]);
        let refs: Vec<&JsonValue> = samples.iter().collect();
        let schema = Schema::infer(&refs);
        let Schema::Object(fields) = &schema else {
            panic!()
        };
        assert!(matches!(&fields[0].schema, Schema::Array(e) if **e == Schema::Float));
        assert!(matches!(&fields[1].schema, Schema::Array(_)));
    }

    #[test]
    fn high_cardinality_strings_are_not_enums() {
        let samples: Vec<JsonValue> = (0..40)
            .map(|i| parse(&format!(r#"{{"id": "user-{i}"}}"#)).unwrap())
            .collect();
        let refs: Vec<&JsonValue> = samples.iter().collect();
        let Schema::Object(fields) = Schema::infer(&refs) else {
            panic!()
        };
        assert_eq!(fields[0].schema, Schema::String);
    }

    #[test]
    fn structurally_inconsistent_samples_fall_back_to_any() {
        let samples = docs(&[r#"{"a": 1}"#, r#"[1, 2, 3]"#]);
        let refs: Vec<&JsonValue> = samples.iter().collect();
        assert_eq!(Schema::infer(&refs), Schema::Any);
        assert!(Schema::Any.matches(&samples[0]));
    }

    #[test]
    fn matches_rejects_unknown_members_and_missing_required_fields() {
        let samples = docs(&[r#"{"a": 1, "b": "x"}"#, r#"{"a": 2, "b": "y"}"#]);
        let refs: Vec<&JsonValue> = samples.iter().collect();
        let schema = Schema::infer(&refs);
        assert!(
            !schema.matches(&parse(r#"{"a": 1}"#).unwrap()),
            "missing required b"
        );
        assert!(
            !schema.matches(&parse(r#"{"a": 1, "b": "x", "c": 2}"#).unwrap()),
            "unknown member c"
        );
        assert!(!schema.matches(&parse(r#"{"a": "not int", "b": "x"}"#).unwrap()));
    }

    #[test]
    fn empty_sample_set_is_any() {
        assert_eq!(Schema::infer(&[]), Schema::Any);
    }
}
