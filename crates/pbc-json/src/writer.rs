//! JSON serialisation (the inverse of [`crate::parser`]).

use crate::value::{JsonValue, Number};

/// Serialize a value to compact JSON text.
pub fn to_string(value: &JsonValue) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Number(Number::Int(i)) => out.push_str(&i.to_string()),
        JsonValue::Number(Number::Float(f)) => {
            if f.is_finite() {
                out.push_str(&format_float(*f));
            } else {
                // JSON has no representation for NaN/inf; emit null like most
                // serializers do.
                out.push_str("null");
            }
        }
        JsonValue::String(s) => write_string(s, out),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(members) => {
            out.push('{');
            for (i, (key, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

/// Format a float so that it round-trips through the parser.
fn format_float(f: f64) -> String {
    let s = format!("{f}");
    // Ensure the text re-parses as a float, not an integer, so the value's
    // type survives a round trip.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn writes_compact_json() {
        let doc = JsonValue::Object(vec![
            ("a".to_string(), JsonValue::from(1i64)),
            (
                "b".to_string(),
                JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
        ]);
        assert_eq!(to_string(&doc), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn escapes_are_emitted() {
        let doc = JsonValue::from("line\nquote\" tab\t\u{0001}");
        let text = to_string(&doc);
        assert!(text.contains("\\n"));
        assert!(text.contains("\\\""));
        assert!(text.contains("\\t"));
        assert!(text.contains("\\u0001"));
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn floats_round_trip_with_type_preserved() {
        for f in [0.5, -3.25, 1e20, 2.0] {
            let doc = JsonValue::from(f);
            let text = to_string(&doc);
            let back = parse(&text).unwrap();
            assert_eq!(back, doc, "text was {text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&JsonValue::from(f64::NAN)), "null");
        assert_eq!(to_string(&JsonValue::from(f64::INFINITY)), "null");
    }

    #[test]
    fn display_impl_matches_to_string() {
        let doc = parse(r#"{"x":[1,2,3]}"#).unwrap();
        assert_eq!(format!("{doc}"), to_string(&doc));
    }
}
