//! MessagePack-style binary JSON encoding.
//!
//! Included as an additional space-efficiency reference point (MessagePack
//! is the serialisation the paper notes Redis deployments commonly use).
//! The format follows MessagePack's core ideas — fixint/fixstr/fixmap
//! headers for small values, explicit typed headers otherwise — without
//! aiming for wire compatibility.

use pbc_codecs::varint;

use crate::error::{JsonError, Result};
use crate::value::{JsonValue, Number};

/// Encoder/decoder for the MessagePack-like format.
#[derive(Debug, Clone, Default)]
pub struct MsgPackCodec;

mod tag {
    /// 0x00..=0x7f : positive fixint (value itself)
    pub const NIL: u8 = 0xc0;
    pub const FALSE: u8 = 0xc2;
    pub const TRUE: u8 = 0xc3;
    pub const INT64: u8 = 0xd3;
    pub const FLOAT64: u8 = 0xcb;
    pub const STR: u8 = 0xdb;
    pub const ARRAY: u8 = 0xdd;
    pub const MAP: u8 = 0xdf;
    /// 0xa0..=0xbf : fixstr (length in low 5 bits)
    pub const FIXSTR_BASE: u8 = 0xa0;
    pub const FIXSTR_MAX: usize = 31;
}

impl MsgPackCodec {
    /// Create the codec.
    pub fn new() -> Self {
        MsgPackCodec
    }

    /// Encode one JSON document.
    pub fn encode(&self, value: &JsonValue) -> Vec<u8> {
        let mut out = Vec::new();
        encode_value(value, &mut out);
        out
    }

    /// Decode a document produced by [`MsgPackCodec::encode`].
    pub fn decode(&self, input: &[u8]) -> Result<JsonValue> {
        let (v, pos) = decode_value(input, 0, 0)?;
        if pos != input.len() {
            return Err(JsonError::corrupt("trailing bytes after document"));
        }
        Ok(v)
    }
}

fn encode_value(value: &JsonValue, out: &mut Vec<u8>) {
    match value {
        JsonValue::Null => out.push(tag::NIL),
        JsonValue::Bool(false) => out.push(tag::FALSE),
        JsonValue::Bool(true) => out.push(tag::TRUE),
        JsonValue::Number(Number::Int(i)) => {
            if (0..=0x7f).contains(i) {
                out.push(*i as u8);
            } else {
                out.push(tag::INT64);
                varint::write_i64(out, *i);
            }
        }
        JsonValue::Number(Number::Float(f)) => {
            out.push(tag::FLOAT64);
            out.extend_from_slice(&f.to_le_bytes());
        }
        JsonValue::String(s) => encode_str(s, out),
        JsonValue::Array(items) => {
            out.push(tag::ARRAY);
            varint::write_usize(out, items.len());
            for item in items {
                encode_value(item, out);
            }
        }
        JsonValue::Object(members) => {
            out.push(tag::MAP);
            varint::write_usize(out, members.len());
            for (k, v) in members {
                encode_str(k, out);
                encode_value(v, out);
            }
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    if s.len() <= tag::FIXSTR_MAX {
        out.push(tag::FIXSTR_BASE | s.len() as u8);
    } else {
        out.push(tag::STR);
        varint::write_usize(out, s.len());
    }
    out.extend_from_slice(s.as_bytes());
}

fn decode_str(input: &[u8], pos: usize) -> Result<(String, usize)> {
    let t = *input
        .get(pos)
        .ok_or_else(|| JsonError::corrupt("missing string header"))?;
    let (len, pos) = if (tag::FIXSTR_BASE..=tag::FIXSTR_BASE + 31).contains(&t) {
        ((t & 0x1f) as usize, pos + 1)
    } else if t == tag::STR {
        varint::read_usize(input, pos + 1)?
    } else {
        return Err(JsonError::corrupt("expected string header"));
    };
    if pos + len > input.len() {
        return Err(JsonError::corrupt("truncated string"));
    }
    let s = std::str::from_utf8(&input[pos..pos + len])
        .map_err(|_| JsonError::corrupt("invalid UTF-8"))?
        .to_string();
    Ok((s, pos + len))
}

const MAX_DEPTH: usize = 128;

fn decode_value(input: &[u8], pos: usize, depth: usize) -> Result<(JsonValue, usize)> {
    if depth > MAX_DEPTH {
        return Err(JsonError::corrupt("nesting too deep"));
    }
    let t = *input
        .get(pos)
        .ok_or_else(|| JsonError::corrupt("missing value header"))?;
    match t {
        0x00..=0x7f => Ok((JsonValue::Number(Number::Int(i64::from(t))), pos + 1)),
        tag::NIL => Ok((JsonValue::Null, pos + 1)),
        tag::FALSE => Ok((JsonValue::Bool(false), pos + 1)),
        tag::TRUE => Ok((JsonValue::Bool(true), pos + 1)),
        tag::INT64 => {
            let (v, pos) = varint::read_i64(input, pos + 1)?;
            Ok((JsonValue::Number(Number::Int(v)), pos))
        }
        tag::FLOAT64 => {
            let pos = pos + 1;
            if pos + 8 > input.len() {
                return Err(JsonError::corrupt("truncated float"));
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&input[pos..pos + 8]);
            Ok((
                JsonValue::Number(Number::Float(f64::from_le_bytes(b))),
                pos + 8,
            ))
        }
        tag::ARRAY => {
            let (count, mut pos) = varint::read_usize(input, pos + 1)?;
            if count > input.len() {
                return Err(JsonError::corrupt("implausible array length"));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                let (v, p) = decode_value(input, pos, depth + 1)?;
                items.push(v);
                pos = p;
            }
            Ok((JsonValue::Array(items), pos))
        }
        tag::MAP => {
            let (count, mut pos) = varint::read_usize(input, pos + 1)?;
            if count > input.len() {
                return Err(JsonError::corrupt("implausible map length"));
            }
            let mut members = Vec::with_capacity(count);
            for _ in 0..count {
                let (k, p) = decode_str(input, pos)?;
                let (v, p) = decode_value(input, p, depth + 1)?;
                members.push((k, v));
                pos = p;
            }
            Ok((JsonValue::Object(members), pos))
        }
        _ if (tag::FIXSTR_BASE..=tag::FIXSTR_BASE + 31).contains(&t) || t == tag::STR => {
            let (s, pos) = decode_str(input, pos)?;
            Ok((JsonValue::String(s), pos))
        }
        other => Err(JsonError::corrupt(format!(
            "unknown header byte {other:#x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(text: &str) -> usize {
        let codec = MsgPackCodec::new();
        let doc = parse(text).unwrap();
        let enc = codec.encode(&doc);
        assert_eq!(codec.decode(&enc).unwrap(), doc, "roundtrip of {text}");
        enc.len()
    }

    #[test]
    fn roundtrips_documents() {
        roundtrip("null");
        roundtrip("127");
        roundtrip("-1");
        roundtrip("123456789012");
        roundtrip("0.125");
        roundtrip(r#""short""#);
        roundtrip(&format!("\"{}\"", "x".repeat(100)));
        roundtrip(r#"{"a": [1, {"b": null}], "c": true}"#);
    }

    #[test]
    fn small_ints_and_short_strings_are_one_header_byte() {
        let codec = MsgPackCodec::new();
        assert_eq!(codec.encode(&JsonValue::from(5i64)).len(), 1);
        assert_eq!(codec.encode(&JsonValue::from("abc")).len(), 4);
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let text = r#"{"event":"page_view","user_id":88421,"duration_ms":132,"ok":true}"#;
        assert!(roundtrip(text) < text.len());
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        let codec = MsgPackCodec::new();
        assert!(codec.decode(&[]).is_err());
        assert!(codec.decode(&[0xc1]).is_err());
        assert!(codec.decode(&[tag::STR, 5, b'a']).is_err());
        let mut enc = codec.encode(&parse(r#"[1,2,3]"#).unwrap());
        enc.push(1);
        assert!(codec.decode(&enc).is_err());
    }
}
