//! Peak-allocation bound for the streaming `snapshot_to_segment`.
//!
//! The snapshot used to materialize and sort every decoded entry, a ~2x
//! transient copy of the corpus. The streaming rewrite materializes only
//! the key list and pulls values through the segment writer one at a time,
//! so its peak extra allocation must stay far below the corpus size.
//!
//! This file holds exactly one test: the counting allocator is a
//! process-global, and a second concurrently-running test would pollute the
//! high-water mark.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use pbc_archive::{CodecSpec, SegmentConfig, SegmentReader};
use pbc_store::{TierStore, ValueCodec};

struct CountingAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let now = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn snapshot_peak_allocation_stays_bounded() {
    // ~24 MiB of raw values: 3000 records x ~8 KiB.
    let record_count = 3_000usize;
    let value_len = 8 * 1024usize;
    let store = TierStore::new(ValueCodec::None);
    let mut raw_bytes = 0usize;
    for i in 0..record_count {
        let mut value = format!("rec|{i:08}|").into_bytes();
        while value.len() < value_len {
            let tail = format!("field{}={};", value.len() % 97, i * 31 % 100_000);
            value.extend_from_slice(tail.as_bytes());
        }
        raw_bytes += value.len();
        store.set(format!("stream:{i:08}").as_bytes(), &value);
    }

    let path = std::env::temp_dir().join(format!(
        "pbc-store-streaming-snapshot-{}.seg",
        std::process::id()
    ));
    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
    let _cleanup = Cleanup(path.clone());

    // Reset the high-water mark to "now", then snapshot. Raw block codec:
    // codec training memory is not what this test measures.
    let before = LIVE.load(Ordering::Relaxed);
    PEAK.store(before, Ordering::Relaxed);
    let summary = store
        .snapshot_to_segment(&path, SegmentConfig::with_codec(CodecSpec::Raw))
        .unwrap();
    let peak_delta = PEAK.load(Ordering::Relaxed).saturating_sub(before);

    assert_eq!(summary.record_count, record_count as u64);
    // The old materialize-everything snapshot needed >= raw_bytes extra
    // (every decoded value at once). Streaming needs the key list (~60 KiB)
    // plus one value plus one block: well under a tenth of the corpus.
    assert!(
        peak_delta < raw_bytes / 10,
        "snapshot peak allocation {peak_delta} should be far below the {raw_bytes}-byte corpus"
    );

    // And the streamed segment is still a faithful, sorted snapshot.
    let reader = SegmentReader::open(&path).unwrap();
    assert!(reader.is_sorted());
    assert_eq!(reader.record_count(), record_count as u64);
    let got = reader.get(b"stream:00001234").unwrap().unwrap();
    assert!(got.starts_with(b"rec|00001234|"));
    assert_eq!(
        got.len(),
        store.get(b"stream:00001234").unwrap().unwrap().len()
    );
}
