//! Block-wise vs per-record storage for the random-access experiment
//! (Figure 5).
//!
//! Existing key-value systems compress values in data blocks: to read one
//! record the whole block must be decompressed. [`BlockStore`] models that
//! path for an arbitrary block codec (Zstd-like in the experiment), while
//! [`PerRecordStore`] models the per-record path (FSST or PBC/PBC_F), where
//! a lookup touches exactly one compressed record.

use pbc_codecs::traits::Codec;
use pbc_codecs::varint;

use crate::engine::StoreError;

/// Records packed into fixed-size blocks, each block compressed as a unit.
pub struct BlockStore {
    /// Compressed blocks.
    blocks: Vec<Vec<u8>>,
    /// Records per block.
    block_size: usize,
    /// Total number of records.
    count: usize,
    codec: Box<dyn Codec + Send + Sync>,
    raw_bytes: usize,
}

impl BlockStore {
    /// Build a block store over `records` with `block_size` records per
    /// block, compressing each block with `codec`.
    pub fn build(
        records: &[Vec<u8>],
        block_size: usize,
        codec: Box<dyn Codec + Send + Sync>,
    ) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let mut blocks = Vec::new();
        for chunk in records.chunks(block_size) {
            let mut packed = Vec::new();
            varint::write_usize(&mut packed, chunk.len());
            for rec in chunk {
                varint::write_usize(&mut packed, rec.len());
                packed.extend_from_slice(rec);
            }
            blocks.push(codec.compress(&packed));
        }
        BlockStore {
            blocks,
            block_size,
            count: records.len(),
            codec,
            raw_bytes: records.iter().map(|r| r.len()).sum(),
        }
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Compression ratio (compressed / raw).
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            return 1.0;
        }
        self.compressed_bytes() as f64 / self.raw_bytes as f64
    }

    /// Random access: fetch record `index`, decompressing its whole block —
    /// the cost the paper's Figure 5 measures.
    pub fn lookup(&self, index: usize) -> Result<Vec<u8>, StoreError> {
        if index >= self.count {
            return Err(StoreError::ValueCorrupt {
                reason: format!("index {index} out of range"),
            });
        }
        let block_idx = index / self.block_size;
        let within = index % self.block_size;
        let packed = self
            .codec
            .decompress(&self.blocks[block_idx])
            .map_err(|e| StoreError::ValueCorrupt {
                reason: e.to_string(),
            })?;
        let (count, mut pos) = varint::read_usize(&packed, 0).map_err(to_store_err)?;
        if within >= count {
            return Err(StoreError::ValueCorrupt {
                reason: "record missing from block".to_string(),
            });
        }
        for i in 0..=within {
            let (len, p) = varint::read_usize(&packed, pos).map_err(to_store_err)?;
            pos = p;
            if pos + len > packed.len() {
                return Err(StoreError::ValueCorrupt {
                    reason: "block payload truncated".to_string(),
                });
            }
            if i == within {
                return Ok(packed[pos..pos + len].to_vec());
            }
            pos += len;
        }
        unreachable!("loop always returns at i == within");
    }
}

fn to_store_err(e: pbc_codecs::CodecError) -> StoreError {
    StoreError::ValueCorrupt {
        reason: e.to_string(),
    }
}

/// Records compressed individually: random access touches one record.
pub struct PerRecordStore {
    records: Vec<Vec<u8>>,
    codec: Box<dyn Codec + Send + Sync>,
    raw_bytes: usize,
}

impl PerRecordStore {
    /// Compress every record individually with `codec`.
    pub fn build(records: &[Vec<u8>], codec: Box<dyn Codec + Send + Sync>) -> Self {
        let compressed: Vec<Vec<u8>> = records.iter().map(|r| codec.compress(r)).collect();
        PerRecordStore {
            records: compressed,
            codec,
            raw_bytes: records.iter().map(|r| r.len()).sum(),
        }
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.records.iter().map(|r| r.len()).sum()
    }

    /// Compression ratio (compressed / raw).
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            return 1.0;
        }
        self.compressed_bytes() as f64 / self.raw_bytes as f64
    }

    /// Random access: decompress exactly one record.
    pub fn lookup(&self, index: usize) -> Result<Vec<u8>, StoreError> {
        let stored = self
            .records
            .get(index)
            .ok_or_else(|| StoreError::ValueCorrupt {
                reason: format!("index {index} out of range"),
            })?;
        self.codec.decompress(stored).map_err(to_store_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_codecs::zstdlike::ZstdLike;
    use pbc_core::{PbcCompressor, PbcConfig};

    fn records(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                // Spread the numeric fields over their whole digit range so
                // the training sample is representative of later records.
                format!(
                    "{{\"order_id\":\"ORD2023{:08}\",\"user_id\":{},\"status\":\"PAID\",\"amount\":{}}}",
                    (i * 12_345_701) % 100_000_000,
                    20_000_000 + (i * 7_919_993) % 79_000_000,
                    (i * 137 + 11) % 100_000
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn block_store_lookup_returns_original_records() {
        let recs = records(100);
        for block_size in [1usize, 4, 16, 64] {
            let store = BlockStore::build(&recs, block_size, Box::new(ZstdLike::new(3)));
            assert_eq!(store.len(), 100);
            for idx in [0usize, 1, 17, 63, 99] {
                assert_eq!(
                    store.lookup(idx).unwrap(),
                    recs[idx],
                    "block_size {block_size}"
                );
            }
            assert!(store.lookup(100).is_err());
        }
    }

    #[test]
    fn larger_blocks_improve_block_compression_ratio() {
        let recs = records(256);
        let small = BlockStore::build(&recs, 1, Box::new(ZstdLike::new(3)));
        let large = BlockStore::build(&recs, 64, Box::new(ZstdLike::new(3)));
        assert!(
            large.ratio() < small.ratio(),
            "64-record blocks ({:.3}) should compress better than 1-record blocks ({:.3})",
            large.ratio(),
            small.ratio()
        );
    }

    #[test]
    fn per_record_store_with_pbc_has_stable_ratio_and_fast_path() {
        let recs = records(300);
        let sample: Vec<&[u8]> = recs[..100].iter().map(|r| r.as_slice()).collect();
        let pbc = PbcCompressor::train_fsst(&sample, &PbcConfig::small());
        let store = PerRecordStore::build(&recs, Box::new(pbc));
        assert_eq!(store.len(), 300);
        assert!(store.ratio() < 0.6, "ratio {:.3}", store.ratio());
        for idx in [0usize, 123, 299] {
            assert_eq!(store.lookup(idx).unwrap(), recs[idx]);
        }
        assert!(store.lookup(300).is_err());
    }

    #[test]
    fn empty_stores_are_well_behaved() {
        let store = BlockStore::build(&[], 8, Box::new(ZstdLike::new(1)));
        assert!(store.is_empty());
        assert_eq!(store.ratio(), 1.0);
        let store = PerRecordStore::build(&[], Box::new(ZstdLike::new(1)));
        assert!(store.is_empty());
        assert_eq!(store.ratio(), 1.0);
    }
}
