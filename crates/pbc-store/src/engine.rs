//! Value codecs for the store: the compression options of Table 8.

use std::fmt;
use std::sync::Arc;

use pbc_archive::ArchiveError;
use pbc_codecs::dict::Dictionary;
use pbc_codecs::traits::DictCodec;
use pbc_codecs::zstdlike::ZstdLike;
use pbc_core::{PbcCompressor, PbcConfig};

/// Errors surfaced by the store.
#[derive(Debug, Clone)]
pub enum StoreError {
    /// A stored value failed to decompress (corruption or codec mismatch).
    ValueCorrupt {
        /// Description of the failure.
        reason: String,
    },
    /// A segment snapshot or restore failed. The original [`ArchiveError`]
    /// is preserved (behind an `Arc` so `StoreError` stays `Clone`) and
    /// reachable through [`std::error::Error::source`].
    Archive(Arc<ArchiveError>),
}

impl PartialEq for StoreError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (StoreError::ValueCorrupt { reason: a }, StoreError::ValueCorrupt { reason: b }) => {
                a == b
            }
            // ArchiveError carries io::Error and is not PartialEq; compare
            // the rendered failure, which is what callers match on in tests.
            (StoreError::Archive(a), StoreError::Archive(b)) => a.to_string() == b.to_string(),
            _ => false,
        }
    }
}

impl Eq for StoreError {}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::ValueCorrupt { reason } => write!(f, "stored value corrupt: {reason}"),
            StoreError::Archive(e) => write!(f, "segment snapshot/restore failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::ValueCorrupt { .. } => None,
            StoreError::Archive(e) => Some(e.as_ref()),
        }
    }
}

impl From<ArchiveError> for StoreError {
    fn from(e: ArchiveError) -> Self {
        StoreError::Archive(Arc::new(e))
    }
}

/// How values are compressed inside the store.
#[derive(Clone)]
pub enum ValueCodec {
    /// Store raw bytes (the "Uncompressed" row of Table 8).
    None,
    /// Per-record Zstd-like compression with an offline-trained dictionary
    /// (TierBase's previous solution, the "Zstd" row of Table 8).
    ZstdDict {
        /// The codec (level fixed at training time).
        codec: ZstdLike,
        /// The trained dictionary shared by all records of the workload.
        dictionary: Arc<Vec<u8>>,
    },
    /// Per-record PBC (plain or `PBC_F` depending on how the compressor was
    /// trained) — the paper's integration.
    Pbc(Arc<PbcCompressor>),
}

impl fmt::Debug for ValueCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueCodec::None => write!(f, "ValueCodec::None"),
            ValueCodec::ZstdDict { dictionary, .. } => {
                write!(f, "ValueCodec::ZstdDict({} dict bytes)", dictionary.len())
            }
            ValueCodec::Pbc(pbc) => write!(f, "ValueCodec::Pbc({})", pbc.variant_name()),
        }
    }
}

impl ValueCodec {
    /// Train the dictionary-Zstd codec on sampled values (the paper's
    /// "sample data for a target workload and train a workload-specific
    /// dictionary ... offline" flow).
    pub fn train_zstd_dict(samples: &[&[u8]], level: i32) -> Self {
        let dict = Dictionary::train_default(samples);
        ValueCodec::ZstdDict {
            codec: ZstdLike::new(level),
            dictionary: Arc::new(dict.as_bytes().to_vec()),
        }
    }

    /// Train the `PBC_F` codec on sampled values.
    pub fn train_pbc_f(samples: &[&[u8]], config: &PbcConfig) -> Self {
        ValueCodec::Pbc(Arc::new(PbcCompressor::train_fsst(samples, config)))
    }

    /// Train the plain `PBC` codec on sampled values.
    pub fn train_pbc(samples: &[&[u8]], config: &PbcConfig) -> Self {
        ValueCodec::Pbc(Arc::new(PbcCompressor::train(samples, config)))
    }

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ValueCodec::None => "Uncompressed",
            ValueCodec::ZstdDict { .. } => "Zstd(dict)",
            ValueCodec::Pbc(pbc) => pbc.variant_name(),
        }
    }

    /// Encode a value for storage.
    pub fn encode(&self, value: &[u8]) -> Vec<u8> {
        match self {
            ValueCodec::None => value.to_vec(),
            ValueCodec::ZstdDict { codec, dictionary } => {
                codec.compress_with_dict(value, dictionary)
            }
            ValueCodec::Pbc(pbc) => pbc.compress(value),
        }
    }

    /// Decode a stored value.
    pub fn decode(&self, stored: &[u8]) -> Result<Vec<u8>, StoreError> {
        match self {
            ValueCodec::None => Ok(stored.to_vec()),
            ValueCodec::ZstdDict { codec, dictionary } => codec
                .decompress_with_dict(stored, dictionary)
                .map_err(|e| StoreError::ValueCorrupt {
                    reason: e.to_string(),
                }),
            ValueCodec::Pbc(pbc) => pbc
                .decompress(stored)
                .map_err(|e| StoreError::ValueCorrupt {
                    reason: e.to_string(),
                }),
        }
    }

    /// Whether the underlying PBC compressor asks for re-training (always
    /// `false` for the other codecs).
    pub fn should_retrain(&self) -> bool {
        match self {
            ValueCodec::Pbc(pbc) => pbc.should_retrain(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                format!(
                    "{{\"order_id\":\"ORD2023{:010}\",\"user_id\":{},\"status\":\"PAID\",\"amount_cents\":{}}}",
                    (i as u64 * 1_234_567_891) % 10_000_000_000,
                    10_000_000 + (i * 9_700_417) % 89_999_999,
                    100 + (i * 7_103) % 5_000_000
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn all_codecs_roundtrip() {
        let values = sample_values(200);
        let refs: Vec<&[u8]> = values[..100].iter().map(|v| v.as_slice()).collect();
        let codecs = [
            ValueCodec::None,
            ValueCodec::train_zstd_dict(&refs, 3),
            ValueCodec::train_pbc(&refs, &PbcConfig::small()),
            ValueCodec::train_pbc_f(&refs, &PbcConfig::small()),
        ];
        for codec in &codecs {
            for v in &values {
                let stored = codec.encode(v);
                assert_eq!(&codec.decode(&stored).unwrap(), v, "{}", codec.name());
            }
        }
    }

    #[test]
    fn compressed_codecs_reduce_stored_bytes() {
        let values = sample_values(300);
        let refs: Vec<&[u8]> = values[..100].iter().map(|v| v.as_slice()).collect();
        let raw: usize = values.iter().map(|v| v.len()).sum();
        let zstd = ValueCodec::train_zstd_dict(&refs, 3);
        let pbc = ValueCodec::train_pbc_f(&refs, &PbcConfig::small());
        let zstd_total: usize = values.iter().map(|v| zstd.encode(v).len()).sum();
        let pbc_total: usize = values.iter().map(|v| pbc.encode(v).len()).sum();
        assert!(zstd_total < raw);
        assert!(pbc_total < raw);
        assert!(
            pbc_total < zstd_total,
            "PBC_F ({pbc_total}) should beat dictionary Zstd ({zstd_total}) on templated values"
        );
    }

    #[test]
    fn names_distinguish_the_table8_rows() {
        let values = sample_values(50);
        let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
        assert_eq!(ValueCodec::None.name(), "Uncompressed");
        assert_eq!(ValueCodec::train_zstd_dict(&refs, 3).name(), "Zstd(dict)");
        assert_eq!(
            ValueCodec::train_pbc_f(&refs, &PbcConfig::small()).name(),
            "PBC_F"
        );
    }

    #[test]
    fn corrupt_values_are_reported_not_panicking() {
        let values = sample_values(60);
        let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
        let codec = ValueCodec::train_zstd_dict(&refs, 3);
        assert!(codec.decode(&[0xff, 0x13, 0x88]).is_err());
    }
}
