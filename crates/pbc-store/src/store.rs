//! The sharded in-memory key-value store.
//!
//! A deliberately small model of TierBase's storage engine: keys are hashed
//! onto a fixed number of shards, each protected by a `parking_lot` RwLock,
//! and values pass through the configured [`ValueCodec`] on SET/GET. Memory
//! accounting counts stored key and value bytes, which is what Table 8's
//! "Memory Usage (%)" compares across codecs.
//!
//! Beyond the paper's experiment, the store exposes the hooks a tiered
//! engine (`pbc-tier`) needs to spill cold shards to `pbc-archive` segments:
//! per-shard byte accounting and last-access epochs (for LRU shard
//! selection), [`TierStore::take_shard`] (drain a shard's decoded entries
//! plus its tombstones), and tombstone tracking so deletes of already-
//! spilled keys stay observable until they reach a segment themselves.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::engine::{StoreError, ValueCodec};

/// Number of shards (power of two).
const SHARDS: usize = 16;

/// One shard's map plus its byte accounting. The accounting lives inside
/// the lock so [`TierStore::take_shard`] can drain and zero it atomically
/// with respect to concurrent writers.
#[derive(Default)]
struct ShardState {
    map: HashMap<Vec<u8>, Vec<u8>>,
    stored_value_bytes: u64,
    stored_key_bytes: u64,
}

/// Tombstones recorded for a shard: keys deleted while (possibly) still
/// present in colder storage.
#[derive(Default)]
struct TombstoneState {
    set: HashSet<Vec<u8>>,
    bytes: u64,
}

struct Shard {
    // lock-order: store.state < store.tombstones
    state: RwLock<ShardState>,
    tombstones: RwLock<TombstoneState>,
    /// Epoch of the most recent access (set/get/delete) — the LRU signal
    /// tiered storage uses to pick spill victims.
    last_access: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            state: RwLock::new(ShardState::default()),
            tombstones: RwLock::new(TombstoneState::default()),
            last_access: AtomicU64::new(0),
        }
    }
}

/// Everything [`TierStore::take_shard`] drains out of a shard: decoded
/// entries and tombstoned keys, both sorted by key.
#[derive(Debug, Default)]
pub struct ShardDrain {
    /// `(key, decoded value)` pairs, sorted by key.
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// Tombstoned keys, sorted.
    pub tombstones: Vec<Vec<u8>>,
}

impl ShardDrain {
    /// Whether the drain carried nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.tombstones.is_empty()
    }

    /// Live entries drained.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Tombstones drained.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Total records a spill of this drain writes (live + tombstones) —
    /// the per-spill metadata the tiered store records in its manifest so
    /// dead-entry ratios stay observable per segment.
    pub fn record_count(&self) -> usize {
        self.entries.len() + self.tombstones.len()
    }
}

/// One key with its decoded value as reported by
/// [`TierStore::range_snapshot`]; `None` marks a tombstone.
pub type RangeEntry = (Vec<u8>, Option<Vec<u8>>);

/// A TierBase-like sharded key-value store with value compression.
pub struct TierStore {
    shards: Vec<Shard>,
    codec: ValueCodec,
    raw_value_bytes: AtomicU64,
    /// Global access counter; each shard access stamps the shard with the
    /// next value.
    epoch: AtomicU64,
    /// Running total of stored key + value bytes across all shards,
    /// updated with every per-shard delta. Watermark checks on the write
    /// path read this with two atomic loads instead of taking every shard
    /// lock; the per-shard counters stay the exact source of truth for
    /// [`TierStore::shard_memory_bytes`] and [`TierStore::take_shard`].
    stored_bytes_total: AtomicU64,
    /// Running total of tombstone key bytes, mirroring the per-shard
    /// tombstone accounting the same way.
    tombstone_bytes_total: AtomicU64,
}

impl std::fmt::Debug for TierStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierStore")
            .field("len", &self.len())
            .field("codec", &self.codec)
            .field("memory_usage_bytes", &self.memory_usage_bytes())
            .field("tombstones", &self.tombstone_count())
            .finish()
    }
}

impl TierStore {
    /// Create a store with the given value codec.
    pub fn new(codec: ValueCodec) -> Self {
        TierStore {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            codec,
            raw_value_bytes: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            stored_bytes_total: AtomicU64::new(0),
            tombstone_bytes_total: AtomicU64::new(0),
        }
    }

    /// The codec this store was configured with.
    pub fn codec(&self) -> &ValueCodec {
        &self.codec
    }

    /// How many shards keys are hashed onto.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard holds `key`.
    pub fn shard_of_key(&self, key: &[u8]) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % SHARDS
    }

    /// Stamp a shard with the next global access epoch.
    fn touch(&self, shard: usize) {
        let now = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        self.shards[shard].last_access.store(now, Ordering::Relaxed);
    }

    /// The epoch of shard `idx`'s most recent access (0 = never touched).
    /// Smaller means colder.
    pub fn shard_access_epoch(&self, idx: usize) -> u64 {
        self.shards[idx].last_access.load(Ordering::Relaxed)
    }

    /// Keys currently stored in shard `idx`.
    pub fn shard_len(&self, idx: usize) -> usize {
        self.shards[idx].state.read().map.len()
    }

    /// Stored (compressed) value + key bytes held by shard `idx`, excluding
    /// tombstones.
    pub fn shard_memory_bytes(&self, idx: usize) -> u64 {
        let state = self.shards[idx].state.read();
        state.stored_value_bytes + state.stored_key_bytes
    }

    /// Store a value under a key (Redis `SET`). Returns the stored
    /// (compressed) size in bytes.
    pub fn set(&self, key: &[u8], value: &[u8]) -> usize {
        self.set_inner(key, value, false)
    }

    /// SET that also drops any tombstone for `key`, atomically with the
    /// insert (both shard locks held together). Tiered callers need the
    /// pair to be indivisible: insert-then-clear as two steps lets a
    /// concurrent delete's tombstone land between them and be wrongly
    /// erased, resurrecting an older cold value.
    pub fn set_and_clear_tombstone(&self, key: &[u8], value: &[u8]) -> usize {
        self.set_inner(key, value, true)
    }

    fn set_inner(&self, key: &[u8], value: &[u8], clear_tombstone: bool) -> usize {
        let encoded = self.codec.encode(value);
        let encoded_len = encoded.len();
        let idx = self.shard_of_key(key);
        {
            // The global totals update inside the shard lock: they must
            // move in lockstep with the per-shard counters, or a racing
            // take_shard (which subtracts the per-shard sums under this
            // lock) could transiently wrap the u64 totals.
            let shard = &self.shards[idx];
            let mut state = shard.state.write();
            let mut added = encoded_len as u64;
            match state.map.insert(key.to_vec(), encoded) {
                Some(old) => {
                    state.stored_value_bytes -= old.len() as u64;
                    self.stored_bytes_total
                        .fetch_sub(old.len() as u64, Ordering::Relaxed);
                }
                None => {
                    state.stored_key_bytes += key.len() as u64;
                    added += key.len() as u64;
                }
            }
            state.stored_value_bytes += encoded_len as u64;
            self.stored_bytes_total.fetch_add(added, Ordering::Relaxed);
            self.raw_value_bytes
                .fetch_add(value.len() as u64, Ordering::Relaxed);
            if clear_tombstone {
                // Lock order state -> tombstones, same as set_if_absent.
                let mut tombs = shard.tombstones.write();
                if tombs.set.remove(key) {
                    tombs.bytes -= key.len() as u64;
                    self.tombstone_bytes_total
                        .fetch_sub(key.len() as u64, Ordering::Relaxed);
                }
            }
        }
        self.touch(idx);
        encoded_len
    }

    /// Fetch and decompress a value (Redis `GET`).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let idx = self.shard_of_key(key);
        let stored = self.shards[idx].state.read().map.get(key).cloned();
        self.touch(idx);
        match stored {
            Some(stored) => self.codec.decode(&stored).map(Some),
            None => Ok(None),
        }
    }

    /// Remove a key. Returns whether it existed. (Does **not** record a
    /// tombstone — callers layering cold storage underneath use
    /// [`TierStore::record_tombstone`] as well.)
    pub fn delete(&self, key: &[u8]) -> bool {
        let idx = self.shard_of_key(key);
        let existed = {
            let mut state = self.shards[idx].state.write();
            match state.map.remove(key) {
                Some(old) => {
                    state.stored_value_bytes -= old.len() as u64;
                    state.stored_key_bytes -= key.len() as u64;
                    // Global total moves under the lock, in lockstep with
                    // the per-shard counters (see set_inner).
                    self.stored_bytes_total
                        .fetch_sub((old.len() + key.len()) as u64, Ordering::Relaxed);
                    true
                }
                None => false,
            }
        };
        self.touch(idx);
        existed
    }

    /// Insert `key` only if it is neither stored nor tombstoned in this
    /// store. Returns whether the insert happened.
    ///
    /// This is the rollback primitive for a failed spill: entries drained
    /// out of a shard go back in *without* clobbering a write or delete
    /// that was acknowledged while the spill ran (both of which are newer
    /// than the drained copy).
    pub fn set_if_absent(&self, key: &[u8], value: &[u8]) -> bool {
        let idx = self.shard_of_key(key);
        let shard = &self.shards[idx];
        let mut state = shard.state.write();
        if state.map.contains_key(key) || shard.tombstones.read().set.contains(key) {
            return false;
        }
        let encoded = self.codec.encode(value);
        state.stored_key_bytes += key.len() as u64;
        state.stored_value_bytes += encoded.len() as u64;
        self.stored_bytes_total
            .fetch_add((key.len() + encoded.len()) as u64, Ordering::Relaxed);
        self.raw_value_bytes
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        state.map.insert(key.to_vec(), encoded);
        drop(state);
        self.touch(idx);
        true
    }

    /// Remove `key` only while a tombstone for it is present, atomically
    /// (both shard locks held together). This is the rollback-safe second
    /// delete for tiered callers: if a concurrent newer SET already
    /// cleared the tombstone (atomically with its insert), the stored
    /// value postdates the delete and must survive; a blind `delete`
    /// here would erase it and resurrect whatever older copy sits in
    /// colder storage.
    pub fn delete_if_tombstoned(&self, key: &[u8]) -> bool {
        let idx = self.shard_of_key(key);
        let shard = &self.shards[idx];
        let mut state = shard.state.write();
        // Lock order state -> tombstones, same as set_inner.
        if !shard.tombstones.read().set.contains(key) {
            return false;
        }
        match state.map.remove(key) {
            Some(old) => {
                state.stored_value_bytes -= old.len() as u64;
                state.stored_key_bytes -= key.len() as u64;
                self.stored_bytes_total
                    .fetch_sub((old.len() + key.len()) as u64, Ordering::Relaxed);
            }
            None => return false,
        }
        drop(state);
        self.touch(idx);
        true
    }

    /// Record a tombstone for `key` only if the key is not currently
    /// stored (the storing write is newer than the drained tombstone).
    /// Returns whether the tombstone was recorded. The shard's map lock is
    /// held across the check and the insert, so a concurrent `set` cannot
    /// interleave between them.
    pub fn record_tombstone_if_absent(&self, key: &[u8]) -> bool {
        let idx = self.shard_of_key(key);
        let shard = &self.shards[idx];
        let state = shard.state.read();
        if state.map.contains_key(key) {
            return false;
        }
        let mut tombs = shard.tombstones.write();
        if tombs.set.insert(key.to_vec()) {
            tombs.bytes += key.len() as u64;
            self.tombstone_bytes_total
                .fetch_add(key.len() as u64, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Record that `key` was deleted while possibly still present in colder
    /// storage. Returns whether the tombstone is new.
    pub fn record_tombstone(&self, key: &[u8]) -> bool {
        let idx = self.shard_of_key(key);
        let mut tombs = self.shards[idx].tombstones.write();
        if tombs.set.insert(key.to_vec()) {
            tombs.bytes += key.len() as u64;
            self.tombstone_bytes_total
                .fetch_add(key.len() as u64, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// WAL-replay hook: re-apply a recovered put exactly as the tiered
    /// write path does — insert and clear any tombstone atomically, so a
    /// replayed `delete k; set k` sequence converges to the same state it
    /// produced before the crash.
    pub fn apply_replay_put(&self, key: &[u8], value: &[u8]) -> usize {
        self.set_and_clear_tombstone(key, value)
    }

    /// WAL-replay hook: re-apply a recovered delete — remove any hot copy
    /// and leave a tombstone shadowing whatever colder storage may still
    /// hold for `key`.
    pub fn apply_replay_delete(&self, key: &[u8]) {
        self.delete(key);
        self.record_tombstone(key);
    }

    /// Drop the tombstone for `key` (a newer SET supersedes the delete).
    /// Returns whether one existed.
    pub fn clear_tombstone(&self, key: &[u8]) -> bool {
        let idx = self.shard_of_key(key);
        let mut tombs = self.shards[idx].tombstones.write();
        if tombs.set.remove(key) {
            tombs.bytes -= key.len() as u64;
            self.tombstone_bytes_total
                .fetch_sub(key.len() as u64, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Whether `key` is currently tombstoned.
    pub fn has_tombstone(&self, key: &[u8]) -> bool {
        let idx = self.shard_of_key(key);
        self.shards[idx].tombstones.read().set.contains(key)
    }

    /// Total tombstoned keys.
    pub fn tombstone_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.tombstones.read().set.len())
            .sum()
    }

    /// Bytes held by tombstoned keys (not part of
    /// [`TierStore::memory_usage_bytes`], which keeps Table 8 semantics).
    /// A single atomic load — cheap enough for per-write watermark checks.
    pub fn tombstone_bytes(&self) -> u64 {
        self.tombstone_bytes_total.load(Ordering::Relaxed)
    }

    /// Tombstone bytes held by shard `idx`.
    pub fn shard_tombstone_bytes(&self, idx: usize) -> u64 {
        self.shards[idx].tombstones.read().bytes
    }

    /// Drain shard `idx`: decode and remove every entry and every tombstone,
    /// returning both sorted by key. Decoding happens before anything is
    /// removed, so a corrupt value leaves the shard untouched.
    pub fn take_shard(&self, idx: usize) -> Result<ShardDrain, StoreError> {
        let mut entries;
        {
            let mut state = self.shards[idx].state.write();
            entries = Vec::with_capacity(state.map.len());
            for (key, stored) in state.map.iter() {
                entries.push((key.clone(), self.codec.decode(stored)?));
            }
            state.map.clear();
            state.map.shrink_to_fit();
            self.stored_bytes_total.fetch_sub(
                state.stored_value_bytes + state.stored_key_bytes,
                Ordering::Relaxed,
            );
            state.stored_value_bytes = 0;
            state.stored_key_bytes = 0;
            // Keep the memory-ratio denominator honest: the drained
            // values' raw bytes leave with them (and come back via
            // set_if_absent if a failed spill restores them). Updated
            // under the lock so the total moves in lockstep with the
            // shard it mirrors.
            let drained_raw: u64 = entries.iter().map(|(_, v)| v.len() as u64).sum();
            self.raw_value_bytes
                .fetch_sub(drained_raw, Ordering::Relaxed);
        }
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut tombstones = {
            let mut tombs = self.shards[idx].tombstones.write();
            self.tombstone_bytes_total
                .fetch_sub(tombs.bytes, Ordering::Relaxed);
            tombs.bytes = 0;
            tombs.set.drain().collect::<Vec<_>>()
        };
        tombstones.sort_unstable();
        Ok(ShardDrain {
            entries,
            tombstones,
        })
    }

    /// A sorted snapshot of every entry and tombstone whose key falls in
    /// the closed interval `[start, end]` (`end = None` means unbounded
    /// above), with values still **codec-encoded** as stored; `None`
    /// marks a tombstone. Keys are unique: a key that is both stored and
    /// tombstoned reports its stored value, matching [`TierStore::get`]
    /// (the map shadows tombstones).
    ///
    /// This is the ordered-iteration hook a tiered range scan needs for
    /// its hot source: shards hash the keyspace, so order only exists
    /// after collecting across all of them. Only byte clones happen under
    /// the per-shard locks — decoding (see [`TierStore::range_snapshot`])
    /// is deliberately left to the caller, after every lock is released,
    /// so a wide scan's snapshot never stalls concurrent writers for the
    /// length of a decompression pass. The snapshot is taken shard by
    /// shard and is not atomic across shards — writes concurrent with the
    /// call may or may not be included, the same contract as
    /// [`TierStore::snapshot_to_segment`].
    pub fn range_snapshot_encoded(&self, start: &[u8], end: Option<&[u8]>) -> Vec<RangeEntry> {
        let in_range = |key: &[u8]| key >= start && end.is_none_or(|e| key <= e);
        let mut merged: std::collections::BTreeMap<Vec<u8>, Option<Vec<u8>>> =
            std::collections::BTreeMap::new();
        for shard in &self.shards {
            // Lock order state -> tombstones, same as set_inner; both held
            // together so one shard's entry/tombstone cut is consistent.
            let state = shard.state.read();
            let tombs = shard.tombstones.read();
            for key in tombs.set.iter().filter(|k| in_range(k)) {
                merged.insert(key.clone(), None);
            }
            for (key, stored) in state.map.iter().filter(|(k, _)| in_range(k)) {
                merged.insert(key.clone(), Some(stored.clone()));
            }
        }
        merged.into_iter().collect()
    }

    /// [`TierStore::range_snapshot_encoded`] with the values decoded —
    /// the decode pass runs after every shard lock has been released.
    pub fn range_snapshot(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        self.range_snapshot_encoded(start, end)
            .into_iter()
            .map(|(key, stored)| {
                let value = match stored {
                    Some(stored) => Some(self.codec.decode(&stored)?),
                    None => None,
                };
                Ok((key, value))
            })
            .collect()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.state.read().map.len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of stored (compressed) values plus keys — the store's data
    /// memory footprint (tombstones excluded; see
    /// [`TierStore::tombstone_bytes`]). A single atomic load — cheap
    /// enough for per-write watermark checks on the hot path.
    pub fn memory_usage_bytes(&self) -> u64 {
        self.stored_bytes_total.load(Ordering::Relaxed)
    }

    /// Spill the whole store to a durable `pbc-archive` segment at `path`.
    ///
    /// Values are decoded to raw bytes first, so the segment is independent
    /// of this store's [`ValueCodec`] (the segment writer re-compresses
    /// blocks with its own codec choice). Entries are written in sorted key
    /// order, which keeps the segment key-searchable via
    /// [`pbc_archive::SegmentReader::get`] and makes snapshots of the same
    /// contents byte-identical regardless of shard layout.
    ///
    /// The snapshot streams: only the key list is materialized up front;
    /// values are fetched and decoded one at a time as the segment writer
    /// consumes them, so peak extra allocation is bounded by the keys plus
    /// one decoded value plus the writer's current block — not the decoded
    /// corpus. Keys written or deleted concurrently with the snapshot may
    /// or may not be included (the snapshot was never atomic).
    pub fn snapshot_to_segment(
        &self,
        path: impl AsRef<std::path::Path>,
        config: pbc_archive::SegmentConfig,
    ) -> Result<pbc_archive::SegmentSummary, StoreError> {
        // Phase 1: every key with its shard, sorted. Values stay put.
        let mut keys: Vec<(Vec<u8>, u16)> = Vec::with_capacity(self.len());
        for (idx, shard) in self.shards.iter().enumerate() {
            let state = shard.state.read();
            keys.extend(state.map.keys().map(|k| (k.clone(), idx as u16)));
        }
        keys.sort_unstable();
        // Phase 2: stream values through the writer in key order.
        let mut writer = pbc_archive::SegmentWriter::create(path, config)?;
        for (key, idx) in &keys {
            let stored = self.shards[*idx as usize]
                .state
                .read()
                .map
                .get(key)
                .cloned();
            if let Some(stored) = stored {
                writer.append(key, &self.codec.decode(&stored)?)?;
            }
        }
        Ok(writer.finish()?)
    }

    /// Load a segment written by [`TierStore::snapshot_to_segment`] into a
    /// fresh store using the given value codec.
    pub fn restore_from_segment(
        path: impl AsRef<std::path::Path>,
        codec: ValueCodec,
    ) -> Result<TierStore, StoreError> {
        let reader = pbc_archive::SegmentReader::open(path)?;
        let store = TierStore::new(codec);
        for entry in reader.scan() {
            let (key, value) = entry?;
            store.set(&key, &value);
        }
        Ok(store)
    }

    /// Memory usage relative to storing the same data uncompressed
    /// (Table 8's "Memory Usage (%)", uncompressed = 100%).
    pub fn memory_usage_ratio(&self) -> f64 {
        let key_bytes: u64 = self
            .shards
            .iter()
            .map(|s| s.state.read().stored_key_bytes)
            .sum();
        let raw = self.raw_value_bytes.load(Ordering::Relaxed) + key_bytes;
        if raw == 0 {
            return 1.0;
        }
        self.memory_usage_bytes() as f64 / raw as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_core::PbcConfig;

    fn values(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                // Spread ids/timestamps over their digit range so a training
                // prefix of the corpus is representative of the rest.
                format!(
                    "sess|{:016x}|uid={}|dev=android-13|ip=10.0.{}.{}|exp={}",
                    (i as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    10_000_000 + (i * 9_700_417) % 89_999_999,
                    i % 256,
                    (i * 7) % 256,
                    1_686_000_000 + (i * 86_413) % 9_999_999
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn set_get_delete_roundtrip_uncompressed() {
        let store = TierStore::new(ValueCodec::None);
        let vals = values(100);
        for (i, v) in vals.iter().enumerate() {
            store.set(format!("key:{i}").as_bytes(), v);
        }
        assert_eq!(store.len(), 100);
        assert_eq!(
            store.get(b"key:42").unwrap().as_deref(),
            Some(vals[42].as_slice())
        );
        assert_eq!(store.get(b"key:999").unwrap(), None);
        assert!(store.delete(b"key:42"));
        assert!(!store.delete(b"key:42"));
        assert_eq!(store.get(b"key:42").unwrap(), None);
        assert_eq!(store.len(), 99);
    }

    #[test]
    fn pbc_codec_reduces_memory_usage() {
        let vals = values(500);
        let refs: Vec<&[u8]> = vals[..128].iter().map(|v| v.as_slice()).collect();
        let compressed = TierStore::new(ValueCodec::train_pbc_f(&refs, &PbcConfig::small()));
        let uncompressed = TierStore::new(ValueCodec::None);
        for (i, v) in vals.iter().enumerate() {
            let key = format!("user_session:{i:08}");
            compressed.set(key.as_bytes(), v);
            uncompressed.set(key.as_bytes(), v);
        }
        assert!(compressed.memory_usage_bytes() < uncompressed.memory_usage_bytes());
        assert!(compressed.memory_usage_ratio() < 0.75);
        assert!((uncompressed.memory_usage_ratio() - 1.0).abs() < 1e-9);
        // Values read back identical.
        for (i, v) in vals.iter().enumerate().step_by(37) {
            let key = format!("user_session:{i:08}");
            assert_eq!(
                compressed.get(key.as_bytes()).unwrap().as_deref(),
                Some(v.as_slice())
            );
        }
    }

    #[test]
    fn overwriting_a_key_updates_accounting() {
        let store = TierStore::new(ValueCodec::None);
        store.set(b"k", b"0123456789");
        let after_first = store.memory_usage_bytes();
        store.set(b"k", b"01234");
        let after_second = store.memory_usage_bytes();
        assert!(after_second < after_first);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.get(b"k").unwrap().as_deref(),
            Some(b"01234".as_slice())
        );
    }

    #[test]
    fn concurrent_readers_and_writers_are_safe() {
        use std::sync::Arc;
        let store = Arc::new(TierStore::new(ValueCodec::None));
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let key = format!("t{t}:k{i}");
                    store.set(key.as_bytes(), format!("value-{t}-{i}").as_bytes());
                    let got = store.get(key.as_bytes()).unwrap().unwrap();
                    assert_eq!(got, format!("value-{t}-{i}").into_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 2000);
    }

    #[test]
    fn empty_store_reports_neutral_ratio() {
        let store = TierStore::new(ValueCodec::None);
        assert!(store.is_empty());
        assert_eq!(store.memory_usage_ratio(), 1.0);
        assert_eq!(store.memory_usage_bytes(), 0);
    }

    #[test]
    fn shard_accounting_sums_to_store_accounting() {
        let store = TierStore::new(ValueCodec::None);
        let vals = values(200);
        for (i, v) in vals.iter().enumerate() {
            store.set(format!("acct:{i:05}").as_bytes(), v);
        }
        let per_shard: u64 = (0..store.shard_count())
            .map(|s| store.shard_memory_bytes(s))
            .sum();
        assert_eq!(per_shard, store.memory_usage_bytes());
        let per_shard_len: usize = (0..store.shard_count()).map(|s| store.shard_len(s)).sum();
        assert_eq!(per_shard_len, store.len());
    }

    #[test]
    fn access_epochs_order_shards_by_recency() {
        let store = TierStore::new(ValueCodec::None);
        // Touch two different shards in a known order.
        let (mut key_a, mut key_b) = (None, None);
        for i in 0..1_000 {
            let key = format!("probe:{i}");
            let shard = store.shard_of_key(key.as_bytes());
            match &key_a {
                None => key_a = Some((key.clone(), shard)),
                Some((_, shard_a)) if shard != *shard_a => {
                    key_b = Some((key.clone(), shard));
                    break;
                }
                Some(_) => {}
            }
        }
        let (key_a, shard_a) = key_a.unwrap();
        let (key_b, shard_b) = key_b.unwrap();
        store.set(key_a.as_bytes(), b"first");
        store.set(key_b.as_bytes(), b"second");
        assert!(store.shard_access_epoch(shard_a) < store.shard_access_epoch(shard_b));
        // A read refreshes recency.
        store.get(key_a.as_bytes()).unwrap();
        assert!(store.shard_access_epoch(shard_a) > store.shard_access_epoch(shard_b));
    }

    #[test]
    fn tombstones_track_bytes_and_clear_on_reinsert() {
        let store = TierStore::new(ValueCodec::None);
        assert!(store.record_tombstone(b"gone:1"));
        assert!(!store.record_tombstone(b"gone:1"), "no double-count");
        assert!(store.record_tombstone(b"gone:22"));
        assert!(store.has_tombstone(b"gone:1"));
        assert_eq!(store.tombstone_count(), 2);
        assert_eq!(store.tombstone_bytes(), 6 + 7);
        assert!(store.clear_tombstone(b"gone:1"));
        assert!(!store.clear_tombstone(b"gone:1"));
        assert_eq!(store.tombstone_count(), 1);
        assert_eq!(store.tombstone_bytes(), 7);
    }

    #[test]
    fn set_and_clear_tombstone_is_one_step() {
        let store = TierStore::new(ValueCodec::None);
        store.record_tombstone(b"k");
        assert_eq!(store.set_and_clear_tombstone(b"k", b"alive"), 5);
        assert!(!store.has_tombstone(b"k"));
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b"alive"[..]));
        assert_eq!(store.tombstone_bytes(), 0);
        // Plain set never touches tombstones.
        store.record_tombstone(b"other");
        store.set(b"other", b"v");
        assert!(store.has_tombstone(b"other"));
    }

    #[test]
    fn conditional_reinsert_never_clobbers_newer_state() {
        let store = TierStore::new(ValueCodec::None);
        // Plain absent key: insert happens.
        assert!(store.set_if_absent(b"a", b"old"));
        assert_eq!(store.get(b"a").unwrap().as_deref(), Some(&b"old"[..]));
        // Present key: the newer value wins.
        store.set(b"b", b"newer");
        assert!(!store.set_if_absent(b"b", b"older"));
        assert_eq!(store.get(b"b").unwrap().as_deref(), Some(&b"newer"[..]));
        // Tombstoned key: the delete wins, no resurrection.
        store.record_tombstone(b"c");
        assert!(!store.set_if_absent(b"c", b"zombie"));
        assert_eq!(store.get(b"c").unwrap(), None);
        // Tombstone restore honors a newer stored value.
        assert!(!store.record_tombstone_if_absent(b"b"));
        assert!(!store.has_tombstone(b"b"));
        assert!(store.record_tombstone_if_absent(b"d"));
        assert!(store.has_tombstone(b"d"));
    }

    #[test]
    fn take_shard_drains_entries_and_tombstones_sorted() {
        let vals = values(300);
        let refs: Vec<&[u8]> = vals[..64].iter().map(|v| v.as_slice()).collect();
        let store = TierStore::new(ValueCodec::train_pbc_f(&refs, &PbcConfig::small()));
        let mut reference = std::collections::BTreeMap::new();
        for (i, v) in vals.iter().enumerate() {
            let key = format!("take:{i:05}").into_bytes();
            store.set(&key, v);
            reference.insert(key, v.clone());
        }
        store.record_tombstone(b"take:dead");
        let dead_shard = store.shard_of_key(b"take:dead");

        let mut total_entries = 0;
        let mut total_tombstones = 0;
        for idx in 0..store.shard_count() {
            let drain = store.take_shard(idx).unwrap();
            assert!(
                drain.entries.windows(2).all(|w| w[0].0 < w[1].0),
                "entries sorted"
            );
            for (key, value) in &drain.entries {
                assert_eq!(store.shard_of_key(key), idx, "entry from its own shard");
                assert_eq!(reference.get(key), Some(value), "decoded value intact");
            }
            assert_eq!(
                drain.record_count(),
                drain.entry_count() + drain.tombstone_count()
            );
            total_entries += drain.entry_count();
            if idx == dead_shard {
                assert_eq!(drain.tombstones, vec![b"take:dead".to_vec()]);
            }
            total_tombstones += drain.tombstone_count();
            assert_eq!(store.shard_len(idx), 0);
            assert_eq!(store.shard_memory_bytes(idx), 0);
        }
        assert_eq!(total_entries, 300);
        assert_eq!(total_tombstones, 1);
        assert!(store.is_empty());
        assert_eq!(store.memory_usage_bytes(), 0);
        assert_eq!(store.tombstone_bytes(), 0);
    }

    #[test]
    fn range_snapshot_is_sorted_bounded_and_tombstone_aware() {
        let vals = values(120);
        let refs: Vec<&[u8]> = vals[..64].iter().map(|v| v.as_slice()).collect();
        let store = TierStore::new(ValueCodec::train_pbc_f(&refs, &PbcConfig::small()));
        for (i, v) in vals.iter().enumerate() {
            store.set(format!("rng:{i:04}").as_bytes(), v);
        }
        store.record_tombstone(b"rng:0050-gone");
        // A key both stored and tombstoned reports its stored value,
        // matching get().
        store.record_tombstone(b"rng:0007");

        let snap = store
            .range_snapshot(b"rng:0005", Some(b"rng:0051"))
            .unwrap();
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "sorted, unique");
        assert!(snap.iter().all(|(k, _)| {
            k.as_slice() >= b"rng:0005".as_slice() && k.as_slice() <= b"rng:0051".as_slice()
        }));
        // 47 stored keys (0005..=0051) + 1 pure tombstone.
        assert_eq!(snap.len(), 48);
        let by_key: std::collections::BTreeMap<_, _> = snap.into_iter().collect();
        assert_eq!(
            by_key.get(b"rng:0007".as_slice()),
            Some(&Some(vals[7].clone()))
        );
        assert_eq!(by_key.get(b"rng:0050-gone".as_slice()), Some(&None));
        // Unbounded tail.
        let tail = store.range_snapshot(b"rng:0118", None).unwrap();
        assert_eq!(tail.len(), 2);
        // Empty interval.
        assert!(store.range_snapshot(b"zzz", None).unwrap().is_empty());
    }

    /// Unique temp path with a drop-guard, so failing tests don't leak
    /// segment files (and parallel tests can't collide on a tag).
    fn temp_segment(tag: &str) -> (std::path::PathBuf, TempSegment) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "pbc-store-test-{}-{tag}-{}.seg",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        (path.clone(), TempSegment(path))
    }

    struct TempSegment(std::path::PathBuf);

    impl Drop for TempSegment {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn snapshot_and_restore_preserve_every_entry() {
        use pbc_archive::{SegmentConfig, SegmentReader};
        let vals = values(400);
        let refs: Vec<&[u8]> = vals[..128].iter().map(|v| v.as_slice()).collect();
        let store = TierStore::new(ValueCodec::train_pbc_f(&refs, &PbcConfig::small()));
        for (i, v) in vals.iter().enumerate() {
            store.set(format!("sess:{i:06}").as_bytes(), v);
        }

        let (path, _guard) = temp_segment("roundtrip");
        let summary = store
            .snapshot_to_segment(&path, SegmentConfig::default())
            .unwrap();
        assert_eq!(summary.record_count, 400);

        // The segment itself is key-searchable (snapshot sorts by key).
        let reader = SegmentReader::open(&path).unwrap();
        assert!(reader.is_sorted());
        assert_eq!(
            reader.get(b"sess:000123").unwrap().as_deref(),
            Some(vals[123].as_slice())
        );
        drop(reader);

        // Restoring into a different codec still yields identical values.
        let restored = TierStore::restore_from_segment(&path, ValueCodec::None).unwrap();
        assert_eq!(restored.len(), 400);
        for (i, v) in vals.iter().enumerate().step_by(29) {
            let key = format!("sess:{i:06}");
            assert_eq!(
                restored.get(key.as_bytes()).unwrap().as_deref(),
                Some(v.as_slice())
            );
        }
    }

    #[test]
    fn snapshots_are_deterministic_across_stores() {
        use pbc_archive::SegmentConfig;
        let vals = values(200);
        let a = TierStore::new(ValueCodec::None);
        let b = TierStore::new(ValueCodec::None);
        // Insert in different orders; sorted snapshot must erase the
        // difference.
        for (i, v) in vals.iter().enumerate() {
            a.set(format!("k:{i:05}").as_bytes(), v);
        }
        for (i, v) in vals.iter().enumerate().rev() {
            b.set(format!("k:{i:05}").as_bytes(), v);
        }
        let (path_a, _guard_a) = temp_segment("det-a");
        let (path_b, _guard_b) = temp_segment("det-b");
        a.snapshot_to_segment(&path_a, SegmentConfig::default())
            .unwrap();
        b.snapshot_to_segment(&path_b, SegmentConfig::default())
            .unwrap();
        assert_eq!(
            std::fs::read(&path_a).unwrap(),
            std::fs::read(&path_b).unwrap()
        );
    }

    #[test]
    fn restore_surfaces_archive_errors_with_source_chain() {
        use std::error::Error;
        let (missing, _guard) = temp_segment("missing-never-written");
        let err = TierStore::restore_from_segment(&missing, ValueCodec::None).unwrap_err();
        let StoreError::Archive(archive) = &err else {
            panic!("expected StoreError::Archive, got {err:?}");
        };
        assert!(matches!(**archive, pbc_archive::ArchiveError::Io(_)));
        // The chain stays non-lossy: StoreError -> ArchiveError -> io::Error.
        let source = err.source().expect("archive source");
        assert!(source.source().is_some(), "io::Error should be chained");
    }
}
