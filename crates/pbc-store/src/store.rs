//! The sharded in-memory key-value store.
//!
//! A deliberately small model of TierBase's storage engine: keys are hashed
//! onto a fixed number of shards, each protected by a `parking_lot` RwLock,
//! and values pass through the configured [`ValueCodec`] on SET/GET. Memory
//! accounting counts stored key and value bytes, which is what Table 8's
//! "Memory Usage (%)" compares across codecs.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::engine::{StoreError, ValueCodec};

/// Number of shards (power of two).
const SHARDS: usize = 16;

/// A TierBase-like sharded key-value store with value compression.
pub struct TierStore {
    shards: Vec<RwLock<HashMap<Vec<u8>, Vec<u8>>>>,
    codec: ValueCodec,
    stored_value_bytes: AtomicU64,
    stored_key_bytes: AtomicU64,
    raw_value_bytes: AtomicU64,
}

impl TierStore {
    /// Create a store with the given value codec.
    pub fn new(codec: ValueCodec) -> Self {
        TierStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            codec,
            stored_value_bytes: AtomicU64::new(0),
            stored_key_bytes: AtomicU64::new(0),
            raw_value_bytes: AtomicU64::new(0),
        }
    }

    /// The codec this store was configured with.
    pub fn codec(&self) -> &ValueCodec {
        &self.codec
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % SHARDS
    }

    /// Store a value under a key (Redis `SET`). Returns the stored
    /// (compressed) size in bytes.
    pub fn set(&self, key: &[u8], value: &[u8]) -> usize {
        let encoded = self.codec.encode(value);
        let encoded_len = encoded.len();
        let mut shard = self.shards[self.shard_of(key)].write();
        let previous = shard.insert(key.to_vec(), encoded);
        drop(shard);
        match previous {
            Some(old) => {
                // Replace: adjust value accounting only.
                self.stored_value_bytes
                    .fetch_sub(old.len() as u64, Ordering::Relaxed);
            }
            None => {
                self.stored_key_bytes
                    .fetch_add(key.len() as u64, Ordering::Relaxed);
            }
        }
        self.stored_value_bytes
            .fetch_add(encoded_len as u64, Ordering::Relaxed);
        self.raw_value_bytes
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        encoded_len
    }

    /// Fetch and decompress a value (Redis `GET`).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let shard = self.shards[self.shard_of(key)].read();
        match shard.get(key) {
            Some(stored) => {
                let stored = stored.clone();
                drop(shard);
                self.codec.decode(&stored).map(Some)
            }
            None => Ok(None),
        }
    }

    /// Remove a key. Returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        let mut shard = self.shards[self.shard_of(key)].write();
        match shard.remove(key) {
            Some(old) => {
                self.stored_value_bytes
                    .fetch_sub(old.len() as u64, Ordering::Relaxed);
                self.stored_key_bytes
                    .fetch_sub(key.len() as u64, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of stored (compressed) values plus keys — the store's data
    /// memory footprint.
    pub fn memory_usage_bytes(&self) -> u64 {
        self.stored_value_bytes.load(Ordering::Relaxed)
            + self.stored_key_bytes.load(Ordering::Relaxed)
    }

    /// Memory usage relative to storing the same data uncompressed
    /// (Table 8's "Memory Usage (%)", uncompressed = 100%).
    pub fn memory_usage_ratio(&self) -> f64 {
        let raw = self.raw_value_bytes.load(Ordering::Relaxed)
            + self.stored_key_bytes.load(Ordering::Relaxed);
        if raw == 0 {
            return 1.0;
        }
        self.memory_usage_bytes() as f64 / raw as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_core::PbcConfig;

    fn values(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                // Spread ids/timestamps over their digit range so a training
                // prefix of the corpus is representative of the rest.
                format!(
                    "sess|{:016x}|uid={}|dev=android-13|ip=10.0.{}.{}|exp={}",
                    (i as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    10_000_000 + (i * 9_700_417) % 89_999_999,
                    i % 256,
                    (i * 7) % 256,
                    1_686_000_000 + (i * 86_413) % 9_999_999
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn set_get_delete_roundtrip_uncompressed() {
        let store = TierStore::new(ValueCodec::None);
        let vals = values(100);
        for (i, v) in vals.iter().enumerate() {
            store.set(format!("key:{i}").as_bytes(), v);
        }
        assert_eq!(store.len(), 100);
        assert_eq!(store.get(b"key:42").unwrap().as_deref(), Some(vals[42].as_slice()));
        assert_eq!(store.get(b"key:999").unwrap(), None);
        assert!(store.delete(b"key:42"));
        assert!(!store.delete(b"key:42"));
        assert_eq!(store.get(b"key:42").unwrap(), None);
        assert_eq!(store.len(), 99);
    }

    #[test]
    fn pbc_codec_reduces_memory_usage() {
        let vals = values(500);
        let refs: Vec<&[u8]> = vals[..128].iter().map(|v| v.as_slice()).collect();
        let compressed = TierStore::new(ValueCodec::train_pbc_f(&refs, &PbcConfig::small()));
        let uncompressed = TierStore::new(ValueCodec::None);
        for (i, v) in vals.iter().enumerate() {
            let key = format!("user_session:{i:08}");
            compressed.set(key.as_bytes(), v);
            uncompressed.set(key.as_bytes(), v);
        }
        assert!(compressed.memory_usage_bytes() < uncompressed.memory_usage_bytes());
        assert!(compressed.memory_usage_ratio() < 0.75);
        assert!((uncompressed.memory_usage_ratio() - 1.0).abs() < 1e-9);
        // Values read back identical.
        for (i, v) in vals.iter().enumerate().step_by(37) {
            let key = format!("user_session:{i:08}");
            assert_eq!(compressed.get(key.as_bytes()).unwrap().as_deref(), Some(v.as_slice()));
        }
    }

    #[test]
    fn overwriting_a_key_updates_accounting() {
        let store = TierStore::new(ValueCodec::None);
        store.set(b"k", b"0123456789");
        let after_first = store.memory_usage_bytes();
        store.set(b"k", b"01234");
        let after_second = store.memory_usage_bytes();
        assert!(after_second < after_first);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(b"01234".as_slice()));
    }

    #[test]
    fn concurrent_readers_and_writers_are_safe() {
        use std::sync::Arc;
        let store = Arc::new(TierStore::new(ValueCodec::None));
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let key = format!("t{t}:k{i}");
                    store.set(key.as_bytes(), format!("value-{t}-{i}").as_bytes());
                    let got = store.get(key.as_bytes()).unwrap().unwrap();
                    assert_eq!(got, format!("value-{t}-{i}").into_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 2000);
    }

    #[test]
    fn empty_store_reports_neutral_ratio() {
        let store = TierStore::new(ValueCodec::None);
        assert!(store.is_empty());
        assert_eq!(store.memory_usage_ratio(), 1.0);
        assert_eq!(store.memory_usage_bytes(), 0);
    }
}
