//! The sharded in-memory key-value store.
//!
//! A deliberately small model of TierBase's storage engine: keys are hashed
//! onto a fixed number of shards, each protected by a `parking_lot` RwLock,
//! and values pass through the configured [`ValueCodec`] on SET/GET. Memory
//! accounting counts stored key and value bytes, which is what Table 8's
//! "Memory Usage (%)" compares across codecs.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::engine::{StoreError, ValueCodec};

/// Number of shards (power of two).
const SHARDS: usize = 16;

/// A TierBase-like sharded key-value store with value compression.
pub struct TierStore {
    shards: Vec<RwLock<HashMap<Vec<u8>, Vec<u8>>>>,
    codec: ValueCodec,
    stored_value_bytes: AtomicU64,
    stored_key_bytes: AtomicU64,
    raw_value_bytes: AtomicU64,
}

impl std::fmt::Debug for TierStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierStore")
            .field("len", &self.len())
            .field("codec", &self.codec)
            .field("memory_usage_bytes", &self.memory_usage_bytes())
            .finish()
    }
}

impl TierStore {
    /// Create a store with the given value codec.
    pub fn new(codec: ValueCodec) -> Self {
        TierStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            codec,
            stored_value_bytes: AtomicU64::new(0),
            stored_key_bytes: AtomicU64::new(0),
            raw_value_bytes: AtomicU64::new(0),
        }
    }

    /// The codec this store was configured with.
    pub fn codec(&self) -> &ValueCodec {
        &self.codec
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % SHARDS
    }

    /// Store a value under a key (Redis `SET`). Returns the stored
    /// (compressed) size in bytes.
    pub fn set(&self, key: &[u8], value: &[u8]) -> usize {
        let encoded = self.codec.encode(value);
        let encoded_len = encoded.len();
        let mut shard = self.shards[self.shard_of(key)].write();
        let previous = shard.insert(key.to_vec(), encoded);
        drop(shard);
        match previous {
            Some(old) => {
                // Replace: adjust value accounting only.
                self.stored_value_bytes
                    .fetch_sub(old.len() as u64, Ordering::Relaxed);
            }
            None => {
                self.stored_key_bytes
                    .fetch_add(key.len() as u64, Ordering::Relaxed);
            }
        }
        self.stored_value_bytes
            .fetch_add(encoded_len as u64, Ordering::Relaxed);
        self.raw_value_bytes
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        encoded_len
    }

    /// Fetch and decompress a value (Redis `GET`).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let shard = self.shards[self.shard_of(key)].read();
        match shard.get(key) {
            Some(stored) => {
                let stored = stored.clone();
                drop(shard);
                self.codec.decode(&stored).map(Some)
            }
            None => Ok(None),
        }
    }

    /// Remove a key. Returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        let mut shard = self.shards[self.shard_of(key)].write();
        match shard.remove(key) {
            Some(old) => {
                self.stored_value_bytes
                    .fetch_sub(old.len() as u64, Ordering::Relaxed);
                self.stored_key_bytes
                    .fetch_sub(key.len() as u64, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of stored (compressed) values plus keys — the store's data
    /// memory footprint.
    pub fn memory_usage_bytes(&self) -> u64 {
        self.stored_value_bytes.load(Ordering::Relaxed)
            + self.stored_key_bytes.load(Ordering::Relaxed)
    }

    /// Spill the whole store to a durable `pbc-archive` segment at `path`.
    ///
    /// Values are decoded to raw bytes first, so the segment is independent
    /// of this store's [`ValueCodec`] (the segment writer re-compresses
    /// blocks with its own codec choice). Entries are written in sorted key
    /// order, which keeps the segment key-searchable via
    /// [`pbc_archive::SegmentReader::get`] and makes snapshots of the same
    /// contents byte-identical regardless of shard layout.
    ///
    /// The snapshot materializes all entries in memory before writing; at
    /// this store's scale (an in-memory cache) that is at most a 2x
    /// transient overhead.
    pub fn snapshot_to_segment(
        &self,
        path: impl AsRef<std::path::Path>,
        config: pbc_archive::SegmentConfig,
    ) -> Result<pbc_archive::SegmentSummary, StoreError> {
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.read();
            for (key, stored) in shard.iter() {
                entries.push((key.clone(), self.codec.decode(stored)?));
            }
        }
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut writer = pbc_archive::SegmentWriter::create(path, config)?;
        for (key, value) in &entries {
            writer.append(key, value)?;
        }
        Ok(writer.finish()?)
    }

    /// Load a segment written by [`TierStore::snapshot_to_segment`] into a
    /// fresh store using the given value codec.
    pub fn restore_from_segment(
        path: impl AsRef<std::path::Path>,
        codec: ValueCodec,
    ) -> Result<TierStore, StoreError> {
        let reader = pbc_archive::SegmentReader::open(path)?;
        let store = TierStore::new(codec);
        for entry in reader.scan() {
            let (key, value) = entry?;
            store.set(&key, &value);
        }
        Ok(store)
    }

    /// Memory usage relative to storing the same data uncompressed
    /// (Table 8's "Memory Usage (%)", uncompressed = 100%).
    pub fn memory_usage_ratio(&self) -> f64 {
        let raw = self.raw_value_bytes.load(Ordering::Relaxed)
            + self.stored_key_bytes.load(Ordering::Relaxed);
        if raw == 0 {
            return 1.0;
        }
        self.memory_usage_bytes() as f64 / raw as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_core::PbcConfig;

    fn values(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                // Spread ids/timestamps over their digit range so a training
                // prefix of the corpus is representative of the rest.
                format!(
                    "sess|{:016x}|uid={}|dev=android-13|ip=10.0.{}.{}|exp={}",
                    (i as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    10_000_000 + (i * 9_700_417) % 89_999_999,
                    i % 256,
                    (i * 7) % 256,
                    1_686_000_000 + (i * 86_413) % 9_999_999
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn set_get_delete_roundtrip_uncompressed() {
        let store = TierStore::new(ValueCodec::None);
        let vals = values(100);
        for (i, v) in vals.iter().enumerate() {
            store.set(format!("key:{i}").as_bytes(), v);
        }
        assert_eq!(store.len(), 100);
        assert_eq!(
            store.get(b"key:42").unwrap().as_deref(),
            Some(vals[42].as_slice())
        );
        assert_eq!(store.get(b"key:999").unwrap(), None);
        assert!(store.delete(b"key:42"));
        assert!(!store.delete(b"key:42"));
        assert_eq!(store.get(b"key:42").unwrap(), None);
        assert_eq!(store.len(), 99);
    }

    #[test]
    fn pbc_codec_reduces_memory_usage() {
        let vals = values(500);
        let refs: Vec<&[u8]> = vals[..128].iter().map(|v| v.as_slice()).collect();
        let compressed = TierStore::new(ValueCodec::train_pbc_f(&refs, &PbcConfig::small()));
        let uncompressed = TierStore::new(ValueCodec::None);
        for (i, v) in vals.iter().enumerate() {
            let key = format!("user_session:{i:08}");
            compressed.set(key.as_bytes(), v);
            uncompressed.set(key.as_bytes(), v);
        }
        assert!(compressed.memory_usage_bytes() < uncompressed.memory_usage_bytes());
        assert!(compressed.memory_usage_ratio() < 0.75);
        assert!((uncompressed.memory_usage_ratio() - 1.0).abs() < 1e-9);
        // Values read back identical.
        for (i, v) in vals.iter().enumerate().step_by(37) {
            let key = format!("user_session:{i:08}");
            assert_eq!(
                compressed.get(key.as_bytes()).unwrap().as_deref(),
                Some(v.as_slice())
            );
        }
    }

    #[test]
    fn overwriting_a_key_updates_accounting() {
        let store = TierStore::new(ValueCodec::None);
        store.set(b"k", b"0123456789");
        let after_first = store.memory_usage_bytes();
        store.set(b"k", b"01234");
        let after_second = store.memory_usage_bytes();
        assert!(after_second < after_first);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.get(b"k").unwrap().as_deref(),
            Some(b"01234".as_slice())
        );
    }

    #[test]
    fn concurrent_readers_and_writers_are_safe() {
        use std::sync::Arc;
        let store = Arc::new(TierStore::new(ValueCodec::None));
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let key = format!("t{t}:k{i}");
                    store.set(key.as_bytes(), format!("value-{t}-{i}").as_bytes());
                    let got = store.get(key.as_bytes()).unwrap().unwrap();
                    assert_eq!(got, format!("value-{t}-{i}").into_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 2000);
    }

    #[test]
    fn empty_store_reports_neutral_ratio() {
        let store = TierStore::new(ValueCodec::None);
        assert!(store.is_empty());
        assert_eq!(store.memory_usage_ratio(), 1.0);
        assert_eq!(store.memory_usage_bytes(), 0);
    }

    /// Unique temp path with a drop-guard, so failing tests don't leak
    /// segment files (and parallel tests can't collide on a tag).
    fn temp_segment(tag: &str) -> (std::path::PathBuf, TempSegment) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "pbc-store-test-{}-{tag}-{}.seg",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        (path.clone(), TempSegment(path))
    }

    struct TempSegment(std::path::PathBuf);

    impl Drop for TempSegment {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn snapshot_and_restore_preserve_every_entry() {
        use pbc_archive::{SegmentConfig, SegmentReader};
        let vals = values(400);
        let refs: Vec<&[u8]> = vals[..128].iter().map(|v| v.as_slice()).collect();
        let store = TierStore::new(ValueCodec::train_pbc_f(&refs, &PbcConfig::small()));
        for (i, v) in vals.iter().enumerate() {
            store.set(format!("sess:{i:06}").as_bytes(), v);
        }

        let (path, _guard) = temp_segment("roundtrip");
        let summary = store
            .snapshot_to_segment(&path, SegmentConfig::default())
            .unwrap();
        assert_eq!(summary.record_count, 400);

        // The segment itself is key-searchable (snapshot sorts by key).
        let reader = SegmentReader::open(&path).unwrap();
        assert!(reader.is_sorted());
        assert_eq!(
            reader.get(b"sess:000123").unwrap().as_deref(),
            Some(vals[123].as_slice())
        );
        drop(reader);

        // Restoring into a different codec still yields identical values.
        let restored = TierStore::restore_from_segment(&path, ValueCodec::None).unwrap();
        assert_eq!(restored.len(), 400);
        for (i, v) in vals.iter().enumerate().step_by(29) {
            let key = format!("sess:{i:06}");
            assert_eq!(
                restored.get(key.as_bytes()).unwrap().as_deref(),
                Some(v.as_slice())
            );
        }
    }

    #[test]
    fn snapshots_are_deterministic_across_stores() {
        use pbc_archive::SegmentConfig;
        let vals = values(200);
        let a = TierStore::new(ValueCodec::None);
        let b = TierStore::new(ValueCodec::None);
        // Insert in different orders; sorted snapshot must erase the
        // difference.
        for (i, v) in vals.iter().enumerate() {
            a.set(format!("k:{i:05}").as_bytes(), v);
        }
        for (i, v) in vals.iter().enumerate().rev() {
            b.set(format!("k:{i:05}").as_bytes(), v);
        }
        let (path_a, _guard_a) = temp_segment("det-a");
        let (path_b, _guard_b) = temp_segment("det-b");
        a.snapshot_to_segment(&path_a, SegmentConfig::default())
            .unwrap();
        b.snapshot_to_segment(&path_b, SegmentConfig::default())
            .unwrap();
        assert_eq!(
            std::fs::read(&path_a).unwrap(),
            std::fs::read(&path_b).unwrap()
        );
    }

    #[test]
    fn restore_surfaces_archive_errors_with_source_chain() {
        use std::error::Error;
        let (missing, _guard) = temp_segment("missing-never-written");
        let err = TierStore::restore_from_segment(&missing, ValueCodec::None).unwrap_err();
        let StoreError::Archive(archive) = &err else {
            panic!("expected StoreError::Archive, got {err:?}");
        };
        assert!(matches!(**archive, pbc_archive::ArchiveError::Io(_)));
        // The chain stays non-lossy: StoreError -> ArchiveError -> io::Error.
        let source = err.source().expect("archive source");
        assert!(source.source().is_some(), "io::Error should be chained");
    }
}
