//! # pbc-store — a TierBase-like in-memory key-value store
//!
//! The paper's production case study (Section 7.5, Table 8) integrates PBC
//! into TierBase, Ant Group's Redis-compatible distributed in-memory
//! database, and measures memory usage and single-instance SET/GET
//! throughput under three value-compression options: uncompressed,
//! dictionary-trained Zstd (TierBase's previous solution), and `PBC_F`.
//! The random-access experiment (Figure 5) additionally contrasts
//! block-wise compression with per-record compression.
//!
//! This crate reproduces the storage-engine side of those experiments:
//!
//! * [`store`] — a sharded in-memory key-value store with pluggable value
//!   compression and memory accounting;
//! * [`engine`] — the value codecs (none / Zstd with a trained dictionary /
//!   PBC / PBC_F) and the retraining monitor;
//! * [`block`] — block-wise storage used by the Figure 5 lookup experiment;
//! * [`workload`] — a single-threaded SET/GET driver measuring throughput.

#![forbid(unsafe_code)]

pub mod block;
pub mod engine;
pub mod store;
pub mod workload;

pub use block::{BlockStore, PerRecordStore};
pub use engine::{StoreError, ValueCodec};
pub use store::{RangeEntry, ShardDrain, TierStore};
pub use workload::{WorkloadReport, WorkloadSpec};
