//! Single-instance SET/GET workload driver (Table 8).
//!
//! The paper measures "the throughput of both SET and GET commands ... for
//! each single-threaded instance". The driver here loads a record corpus
//! into a [`TierStore`] (measuring SET throughput), then reads keys back in
//! a pseudo-random order (measuring GET throughput), and reports the memory
//! footprint relative to uncompressed storage.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::engine::ValueCodec;
use crate::store::TierStore;

/// Parameters of a workload run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Name shown in reports ("Workload A", "Workload B", ...).
    pub name: String,
    /// Number of GET operations to issue (keys are drawn uniformly from the
    /// loaded key space, with wrap-around if larger than the corpus).
    pub get_ops: usize,
    /// Seed for the access order.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec issuing one GET per record.
    pub fn new(name: impl Into<String>, get_ops: usize, seed: u64) -> Self {
        WorkloadSpec {
            name: name.into(),
            get_ops,
            seed,
        }
    }
}

/// Result of one workload run under one value codec.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Workload name.
    pub workload: String,
    /// Codec name ("Uncompressed", "Zstd(dict)", "PBC_F", ...).
    pub codec: &'static str,
    /// Memory usage relative to uncompressed (1.0 = 100%).
    pub memory_ratio: f64,
    /// SET operations per second.
    pub set_qps: f64,
    /// GET operations per second.
    pub get_qps: f64,
    /// Number of records loaded.
    pub records: usize,
}

/// Run one workload: load all records, then issue GETs, timing both phases.
pub fn run_workload(spec: &WorkloadSpec, codec: ValueCodec, records: &[Vec<u8>]) -> WorkloadReport {
    let store = TierStore::new(codec);
    let keys: Vec<Vec<u8>> = (0..records.len())
        .map(|i| format!("{}:{:010}", spec.name, i).into_bytes())
        .collect();

    let set_start = Instant::now();
    for (key, value) in keys.iter().zip(records.iter()) {
        store.set(key, value);
    }
    let set_elapsed = set_start.elapsed().as_secs_f64();

    // Pseudo-random GET order over the key space.
    let mut order: Vec<usize> = (0..records.len()).collect();
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    order.shuffle(&mut rng);
    let get_start = Instant::now();
    let mut checksum = 0usize;
    for op in 0..spec.get_ops {
        let idx = order[op % order.len().max(1)];
        if let Ok(Some(value)) = store.get(&keys[idx]) {
            checksum = checksum.wrapping_add(value.len());
        }
    }
    let get_elapsed = get_start.elapsed().as_secs_f64();
    // Keep the checksum alive so the reads are not optimised away.
    std::hint::black_box(checksum);

    WorkloadReport {
        workload: spec.name.clone(),
        codec: store.codec().name(),
        memory_ratio: store.memory_usage_ratio(),
        set_qps: if set_elapsed > 0.0 {
            records.len() as f64 / set_elapsed
        } else {
            f64::INFINITY
        },
        get_qps: if get_elapsed > 0.0 {
            spec.get_ops as f64 / get_elapsed
        } else {
            f64::INFINITY
        },
        records: records.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_core::PbcConfig;

    fn corpus(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                format!(
                    "cache:user:{:08}:profile={{\"plan\":\"pro\",\"score\":{},\"region\":\"ap-{}\"}}",
                    (i * 12_345_701) % 100_000_000,
                    (i * 37 + 5) % 1000,
                    i % 4
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn workload_reports_throughput_and_memory() {
        let records = corpus(500);
        let spec = WorkloadSpec::new("Workload T", 500, 42);
        let report = run_workload(&spec, ValueCodec::None, &records);
        assert_eq!(report.records, 500);
        assert!(report.set_qps > 0.0);
        assert!(report.get_qps > 0.0);
        assert!((report.memory_ratio - 1.0).abs() < 1e-9);
        assert_eq!(report.codec, "Uncompressed");
    }

    #[test]
    fn pbc_workload_reduces_memory_and_still_serves_reads() {
        let records = corpus(800);
        let sample: Vec<&[u8]> = records[..128].iter().map(|r| r.as_slice()).collect();
        let codec = ValueCodec::train_pbc_f(&sample, &PbcConfig::small());
        let spec = WorkloadSpec::new("Workload A", 800, 7);
        let report = run_workload(&spec, codec, &records);
        assert!(
            report.memory_ratio < 0.8,
            "memory ratio {:.3}",
            report.memory_ratio
        );
        assert_eq!(report.codec, "PBC_F");
        assert!(report.get_qps > 0.0);
    }

    #[test]
    fn get_ops_can_exceed_corpus_size() {
        let records = corpus(50);
        let spec = WorkloadSpec::new("Wrap", 200, 3);
        let report = run_workload(&spec, ValueCodec::None, &records);
        assert!(report.get_qps > 0.0);
    }
}
