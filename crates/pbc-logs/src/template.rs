//! Log tokenisation and templates.
//!
//! A log line is split into whitespace-delimited tokens; a template is the
//! same token sequence with the varying positions replaced by `<*>`
//! wildcards. This is the representation both the Drain-style miner and the
//! LogReducer-style compressor operate on.

/// One token of a template: either a constant string or a variable slot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Token {
    /// A token identical across the lines of the template.
    Constant(String),
    /// A varying token (`<*>`).
    Variable,
}

/// Split a log line into whitespace-delimited tokens, preserving the exact
/// separator layout by splitting on single spaces (runs of spaces produce
/// empty tokens, so the original line can be reconstructed).
pub fn tokenize(line: &str) -> Vec<&str> {
    line.split(' ').collect()
}

/// A mined log template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// The token sequence.
    pub tokens: Vec<Token>,
}

impl Template {
    /// Build an all-constant template from a line's tokens.
    pub fn from_tokens(tokens: &[&str]) -> Self {
        Template {
            tokens: tokens
                .iter()
                .map(|t| Token::Constant((*t).to_string()))
                .collect(),
        }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the template has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of constant tokens.
    pub fn constant_count(&self) -> usize {
        self.tokens
            .iter()
            .filter(|t| matches!(t, Token::Constant(_)))
            .count()
    }

    /// Similarity to a tokenised line: the fraction of positions whose
    /// constant token matches (Drain's `simSeq`). Returns 0 for length
    /// mismatches.
    pub fn similarity(&self, tokens: &[&str]) -> f64 {
        if tokens.len() != self.tokens.len() || self.tokens.is_empty() {
            return 0.0;
        }
        let matching = self
            .tokens
            .iter()
            .zip(tokens.iter())
            .filter(|(t, s)| matches!(t, Token::Constant(c) if c == *s))
            .count();
        matching as f64 / self.tokens.len() as f64
    }

    /// Merge a new line into the template: positions whose constant differs
    /// become variables. Panics if the token counts differ (callers group by
    /// token count first).
    pub fn absorb(&mut self, tokens: &[&str]) {
        assert_eq!(tokens.len(), self.tokens.len(), "token count mismatch");
        for (slot, tok) in self.tokens.iter_mut().zip(tokens.iter()) {
            if let Token::Constant(c) = slot {
                if c != tok {
                    *slot = Token::Variable;
                }
            }
        }
    }

    /// Extract the variable values of a line under this template. Returns
    /// `None` if the line does not fit (length or constant mismatch).
    pub fn extract<'a>(&self, tokens: &[&'a str]) -> Option<Vec<&'a str>> {
        if tokens.len() != self.tokens.len() {
            return None;
        }
        let mut vars = Vec::new();
        for (slot, tok) in self.tokens.iter().zip(tokens.iter()) {
            match slot {
                Token::Constant(c) => {
                    if c != tok {
                        return None;
                    }
                }
                Token::Variable => vars.push(*tok),
            }
        }
        Some(vars)
    }

    /// Reconstruct a line from variable values (inverse of
    /// [`Template::extract`]).
    pub fn reconstruct(&self, vars: &[&str]) -> String {
        let mut out = String::new();
        let mut vi = 0;
        for (i, slot) in self.tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match slot {
                Token::Constant(c) => out.push_str(c),
                Token::Variable => {
                    out.push_str(vars[vi]);
                    vi += 1;
                }
            }
        }
        out
    }

    /// Number of variable slots.
    pub fn variable_count(&self) -> usize {
        self.len() - self.constant_count()
    }

    /// Display form, e.g. `Received block <*> of size <*>`.
    pub fn display(&self) -> String {
        self.tokens
            .iter()
            .map(|t| match t {
                Token::Constant(c) => c.as_str(),
                Token::Variable => "<*>",
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_preserves_layout() {
        let line = "INFO  double space and trailing ";
        let tokens = tokenize(line);
        assert_eq!(tokens.join(" "), line);
    }

    #[test]
    fn absorb_turns_differences_into_variables() {
        let a = tokenize("Received block blk_1 of size 67108864");
        let b = tokenize("Received block blk_2 of size 1048576");
        let mut t = Template::from_tokens(&a);
        t.absorb(&b);
        assert_eq!(t.display(), "Received block <*> of size <*>");
        assert_eq!(t.constant_count(), 4);
        assert_eq!(t.variable_count(), 2);
    }

    #[test]
    fn extract_and_reconstruct_are_inverse() {
        let mut t = Template::from_tokens(&tokenize("user alice logged in from 10.0.0.1"));
        t.absorb(&tokenize("user bob logged in from 10.0.0.7"));
        let line = "user carol logged in from 192.168.1.9";
        let vars = t.extract(&tokenize(line)).expect("line fits template");
        assert_eq!(vars, vec!["carol", "192.168.1.9"]);
        assert_eq!(t.reconstruct(&vars), line);
    }

    #[test]
    fn extract_rejects_mismatched_lines() {
        let t = Template::from_tokens(&tokenize("a b c"));
        assert!(t.extract(&tokenize("a b")).is_none());
        assert!(t.extract(&tokenize("a x c")).is_none());
        assert!(t.extract(&tokenize("a b c")).is_some());
    }

    #[test]
    fn similarity_counts_matching_constants() {
        let t = Template::from_tokens(&tokenize("GET /index.html 200"));
        assert!((t.similarity(&tokenize("GET /index.html 200")) - 1.0).abs() < 1e-12);
        assert!((t.similarity(&tokenize("GET /other.html 200")) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.similarity(&tokenize("GET /index.html")), 0.0);
    }

    #[test]
    fn empty_template_is_harmless() {
        let t = Template::from_tokens(&[]);
        assert!(t.is_empty());
        assert_eq!(t.similarity(&[]), 0.0);
    }
}
