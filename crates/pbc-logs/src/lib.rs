//! # pbc-logs — log substrate and the LogReducer-like baseline
//!
//! The PBC paper compares against LogReducer (Wei et al., FAST 2021), a
//! parser-based log compressor (Table 5). This crate provides the substrate
//! needed to reproduce that comparison without external dependencies:
//!
//! * [`template`] — tokenisation and log templates (constant tokens plus
//!   `<*>` variable slots);
//! * [`drain`] — a Drain-style online template miner (fixed-depth parse
//!   tree, token-similarity threshold), the "log parser" LogReducer depends
//!   on;
//! * [`logreducer`] — a LogReducer-style corpus compressor: lines are parsed
//!   into template ids + variables, timestamps are delta-encoded, numeric
//!   variables are varint-encoded, the separated streams are compressed with
//!   the heavy LZMA-like backend from `pbc-codecs`.
//!
//! Like the original, the compressor here is corpus-(block-)oriented and
//! parser-dependent, which is exactly the contrast with PBC the paper draws:
//! comparable ratio on logs, but no random access and no applicability to
//! non-log data.

#![forbid(unsafe_code)]

pub mod drain;
pub mod logreducer;
pub mod template;

pub use drain::{DrainConfig, DrainMiner};
pub use logreducer::LogReducer;
pub use template::{tokenize, Template, Token};
