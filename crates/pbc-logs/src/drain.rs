//! Drain-style online log template mining.
//!
//! Drain (He et al., ICWS 2017) groups log lines with a fixed-depth parse
//! tree: lines are first bucketed by token count, then by their first few
//! tokens (treating tokens containing digits as wildcards), and finally
//! matched against the bucket's templates with a token-similarity threshold.
//! LogReducer and Logzip both rely on a parser of this family; this is the
//! from-scratch substitute used by [`crate::logreducer`].

use std::collections::HashMap;

use crate::template::{tokenize, Template};

/// Parameters of the miner.
#[derive(Debug, Clone)]
pub struct DrainConfig {
    /// Number of leading tokens used as tree keys.
    pub tree_depth: usize,
    /// Similarity threshold above which a line joins an existing template.
    pub similarity_threshold: f64,
    /// Maximum number of templates per leaf bucket.
    pub max_templates_per_bucket: usize,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            tree_depth: 2,
            similarity_threshold: 0.5,
            max_templates_per_bucket: 16,
        }
    }
}

/// The online miner: feed lines, get template ids back.
#[derive(Debug)]
pub struct DrainMiner {
    config: DrainConfig,
    /// All templates, indexed by id.
    templates: Vec<Template>,
    /// Leaf buckets: key → template ids.
    buckets: HashMap<String, Vec<usize>>,
}

impl DrainMiner {
    /// Create a miner with the given configuration.
    pub fn new(config: DrainConfig) -> Self {
        DrainMiner {
            config,
            templates: Vec::new(),
            buckets: HashMap::new(),
        }
    }

    /// Create a miner with default parameters.
    pub fn with_defaults() -> Self {
        Self::new(DrainConfig::default())
    }

    /// All mined templates.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Number of mined templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Bucket key of a line: token count plus the first `tree_depth` tokens,
    /// with digit-bearing tokens generalised to `<*>` (Drain's heuristic that
    /// tokens containing digits are likely variables).
    fn bucket_key(&self, tokens: &[&str]) -> String {
        let mut key = format!("{}|", tokens.len());
        for tok in tokens.iter().take(self.config.tree_depth) {
            if tok.chars().any(|c| c.is_ascii_digit()) {
                key.push_str("<*>|");
            } else {
                key.push_str(tok);
                key.push('|');
            }
        }
        key
    }

    /// Process one line and return the id of the template it was assigned to.
    pub fn observe(&mut self, line: &str) -> usize {
        let tokens = tokenize(line);
        let key = self.bucket_key(&tokens);
        let bucket = self.buckets.entry(key).or_default();

        // Find the most similar template in the bucket.
        let mut best: Option<(usize, f64)> = None;
        for &id in bucket.iter() {
            let sim = self.templates[id].similarity(&tokens);
            if best.is_none_or(|(_, b)| sim > b) {
                best = Some((id, sim));
            }
        }
        match best {
            Some((id, sim)) if sim >= self.config.similarity_threshold => {
                self.templates[id].absorb(&tokens);
                id
            }
            _ if bucket.len() >= self.config.max_templates_per_bucket => {
                // Bucket full: absorb into the closest template anyway.
                // pbc-allow(panic): a full bucket has at least one template, so one was scored
                let id = best.map(|(id, _)| id).expect("bucket is non-empty");
                self.templates[id].absorb(&tokens);
                id
            }
            _ => {
                let id = self.templates.len();
                self.templates.push(Template::from_tokens(&tokens));
                bucket.push(id);
                id
            }
        }
    }

    /// Mine templates from a corpus, returning the per-line template ids.
    pub fn mine(lines: &[String], config: DrainConfig) -> (Self, Vec<usize>) {
        let mut miner = DrainMiner::new(config);
        let assignments = lines.iter().map(|l| miner.observe(l)).collect();
        (miner, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdfs_like_lines(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| match i % 3 {
                0 => format!(
                    "081109 203518 143 INFO dfs.DataNode$DataXceiver: Receiving block blk_{} src: /10.250.{}.{}:54106",
                    -1608999687 + i as i64,
                    i % 255,
                    (i * 7) % 255
                ),
                1 => format!(
                    "081109 203518 35 INFO dfs.FSNamesystem: BLOCK* NameSystem.allocateBlock: /mnt/hadoop/mapred/system/job_{}/job.jar. blk_{}",
                    200811092030 + i as i64,
                    -1608999687 + i as i64
                ),
                _ => format!(
                    "081109 203519 143 INFO dfs.DataNode$PacketResponder: PacketResponder {} for block blk_{} terminating",
                    i % 3,
                    -1608999687 + i as i64
                ),
            })
            .collect()
    }

    #[test]
    fn mining_recovers_a_small_template_set() {
        let lines = hdfs_like_lines(300);
        let (miner, assignments) = DrainMiner::mine(&lines, DrainConfig::default());
        assert!(
            miner.template_count() <= 10,
            "300 lines from 3 formats should give few templates, got {}",
            miner.template_count()
        );
        assert_eq!(assignments.len(), lines.len());
        // Lines of the same format map to the same template.
        assert_eq!(assignments[0], assignments[3]);
        assert_eq!(assignments[1], assignments[4]);
        assert_eq!(assignments[2], assignments[5]);
    }

    #[test]
    fn templates_reconstruct_their_lines() {
        let lines = hdfs_like_lines(90);
        let (miner, assignments) = DrainMiner::mine(&lines, DrainConfig::default());
        for (line, &tid) in lines.iter().zip(assignments.iter()) {
            let template = &miner.templates()[tid];
            let tokens = tokenize(line);
            let vars = template
                .extract(&tokens)
                .unwrap_or_else(|| panic!("line must fit its template: {line}"));
            assert_eq!(&template.reconstruct(&vars), line);
        }
    }

    #[test]
    fn variable_positions_are_detected() {
        let lines = hdfs_like_lines(60);
        let (miner, _) = DrainMiner::mine(&lines, DrainConfig::default());
        // Every mined template should contain both constants and variables.
        for t in miner.templates() {
            assert!(
                t.constant_count() > 0,
                "template lost all constants: {}",
                t.display()
            );
            assert!(
                t.variable_count() > 0,
                "template has no variables: {}",
                t.display()
            );
        }
    }

    #[test]
    fn dissimilar_lines_get_separate_templates() {
        let mut miner = DrainMiner::with_defaults();
        let a = miner.observe("ERROR disk /dev/sda1 is full");
        let b = miner.observe("user login from 10.0.0.1 succeeded after 2 attempts");
        assert_ne!(a, b);
        assert_eq!(miner.template_count(), 2);
    }

    #[test]
    fn bucket_capacity_is_respected() {
        let config = DrainConfig {
            max_templates_per_bucket: 2,
            similarity_threshold: 0.99,
            ..DrainConfig::default()
        };
        let mut miner = DrainMiner::new(config);
        // Same token count and prefix, but all-different tails → would want
        // many templates; capacity forces absorption.
        for i in 0..20 {
            miner.observe(&format!("svc call endpoint{} latency{}", i, i * 3));
        }
        assert!(miner.template_count() <= 3);
    }

    #[test]
    fn empty_line_is_handled() {
        let mut miner = DrainMiner::with_defaults();
        let id = miner.observe("");
        assert_eq!(miner.template_count(), 1);
        let id2 = miner.observe("");
        assert_eq!(id, id2);
    }
}
