//! LogReducer-style log compression.
//!
//! LogReducer (Wei et al., FAST 2021) builds on a log parser: every line is
//! split into a template id and its variable values, then the variables are
//! specialised — timestamps are delta-encoded, numeric variables are stored
//! as integers — and the separated streams are compressed with a heavy
//! general-purpose backend. This module reproduces that pipeline on top of
//! the [`crate::drain`] miner and the LZMA-like codec:
//!
//! ```text
//! lines ──parse──▶ template dictionary
//!                  per-line template ids      ──┐
//!                  numeric-variable stream      ├─▶ LZMA-like ─▶ archive
//!                  timestamp-delta stream       │
//!                  text-variable stream       ──┘
//! ```
//!
//! The compressor is corpus-oriented (no random access) and only works on
//! line-structured text — the two limitations the paper contrasts PBC
//! against in Section 7.4.1.

use pbc_codecs::traits::Codec;
use pbc_codecs::varint;
use pbc_codecs::LzmaLike;

use crate::drain::{DrainConfig, DrainMiner};
use crate::template::tokenize;

/// Errors produced when unpacking a LogReducer archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogArchiveError {
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for LogArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt log archive: {}", self.message)
    }
}

impl std::error::Error for LogArchiveError {}

impl From<pbc_codecs::CodecError> for LogArchiveError {
    fn from(e: pbc_codecs::CodecError) -> Self {
        LogArchiveError {
            message: e.to_string(),
        }
    }
}

/// The LogReducer-like corpus compressor.
#[derive(Debug, Clone)]
pub struct LogReducer {
    drain: DrainConfig,
    backend_level: i32,
}

impl Default for LogReducer {
    fn default() -> Self {
        LogReducer {
            drain: DrainConfig::default(),
            backend_level: 9,
        }
    }
}

/// Classification of one variable value in the specialised streams.
fn classify(value: &str) -> VarClass {
    if !value.is_empty()
        && value.bytes().all(|b| b.is_ascii_digit())
        && value.parse::<i64>().is_ok()
    {
        // All-digit tokens in machine logs are usually timestamps or
        // counters; both benefit from integer/delta coding. Values that
        // overflow an i64 stay textual so the round trip is lossless.
        VarClass::Numeric
    } else {
        VarClass::Text
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarClass {
    Numeric,
    Text,
}

impl LogReducer {
    /// Create a compressor with a custom backend level (1–9).
    pub fn new(backend_level: i32) -> Self {
        LogReducer {
            drain: DrainConfig::default(),
            backend_level,
        }
    }

    /// Compress a corpus of log lines into a single archive.
    pub fn compress_lines(&self, lines: &[String]) -> Vec<u8> {
        let (miner, assignments) = DrainMiner::mine(lines, self.drain.clone());

        // Stream 1: template dictionary (text form, one per line).
        let mut template_stream = String::new();
        for t in miner.templates() {
            template_stream.push_str(&t.display());
            template_stream.push('\n');
        }
        // Stream 2: per-line template ids.
        let mut id_stream = Vec::new();
        varint::write_usize(&mut id_stream, lines.len());
        for &id in &assignments {
            varint::write_usize(&mut id_stream, id);
        }
        // Streams 3–4: variables, split into numeric (delta-coded per
        // template+slot) and text.
        let mut numeric_stream = Vec::new();
        let mut text_stream = Vec::new();
        // Last numeric value per (template, slot) for delta coding; sized
        // lazily.
        let mut last_numeric: std::collections::HashMap<(usize, usize), i64> =
            std::collections::HashMap::new();
        for (line, &tid) in lines.iter().zip(assignments.iter()) {
            let tokens = tokenize(line);
            let vars = miner.templates()[tid]
                .extract(&tokens)
                // pbc-allow(panic): assignments come from the miner that built these templates
                .expect("line fits the template it was assigned to");
            for (slot, value) in vars.iter().enumerate() {
                match classify(value) {
                    VarClass::Numeric => {
                        // Tag byte 1 = numeric (with digit-width so leading
                        // zeros survive), then the delta to the previous
                        // value in the same (template, slot).
                        text_stream.push(1);
                        text_stream.push(value.len() as u8);
                        let parsed: i64 = value.parse().unwrap_or(0);
                        let key = (tid, slot);
                        let prev = last_numeric.get(&key).copied().unwrap_or(0);
                        varint::write_i64(&mut numeric_stream, parsed - prev);
                        last_numeric.insert(key, parsed);
                    }
                    VarClass::Text => {
                        text_stream.push(0);
                        varint::write_usize(&mut text_stream, value.len());
                        text_stream.extend_from_slice(value.as_bytes());
                    }
                }
            }
        }

        // Pack the four streams and compress with the heavy backend.
        let mut packed = Vec::new();
        for stream in [
            template_stream.as_bytes(),
            &id_stream,
            &numeric_stream,
            &text_stream,
        ] {
            varint::write_usize(&mut packed, stream.len());
            packed.extend_from_slice(stream);
        }
        LzmaLike::new(self.backend_level).compress(&packed)
    }

    /// Decompress an archive back into the original lines.
    pub fn decompress_lines(&self, archive: &[u8]) -> Result<Vec<String>, LogArchiveError> {
        let packed = LzmaLike::new(self.backend_level).decompress(archive)?;
        let mut pos = 0usize;
        let mut streams: Vec<&[u8]> = Vec::with_capacity(4);
        for _ in 0..4 {
            let (len, p) = varint::read_usize(&packed, pos)?;
            pos = p;
            if pos + len > packed.len() {
                return Err(LogArchiveError {
                    message: "stream length out of range".to_string(),
                });
            }
            streams.push(&packed[pos..pos + len]);
            pos += len;
        }
        let (template_stream, id_stream, numeric_stream, text_stream) =
            (streams[0], streams[1], streams[2], streams[3]);

        // Rebuild templates.
        let template_text = std::str::from_utf8(template_stream).map_err(|_| LogArchiveError {
            message: "template dictionary is not UTF-8".to_string(),
        })?;
        let templates: Vec<Vec<&str>> = template_text
            .lines()
            .map(|l| l.split(' ').collect())
            .collect();

        // Rebuild lines.
        let (line_count, mut id_pos) = varint::read_usize(id_stream, 0)?;
        let mut numeric_pos = 0usize;
        let mut text_pos = 0usize;
        let mut last_numeric: std::collections::HashMap<(usize, usize), i64> =
            std::collections::HashMap::new();
        let mut lines = Vec::with_capacity(line_count);
        for _ in 0..line_count {
            let (tid, p) = varint::read_usize(id_stream, id_pos)?;
            id_pos = p;
            let template = templates.get(tid).ok_or_else(|| LogArchiveError {
                message: format!("template id {tid} out of range"),
            })?;
            let mut line = String::new();
            let mut slot = 0usize;
            for (i, token) in template.iter().enumerate() {
                if i > 0 {
                    line.push(' ');
                }
                if *token == "<*>" {
                    // Pull the next variable.
                    let tag = *text_stream.get(text_pos).ok_or_else(|| LogArchiveError {
                        message: "truncated variable stream".to_string(),
                    })?;
                    text_pos += 1;
                    match tag {
                        1 => {
                            let width =
                                *text_stream.get(text_pos).ok_or_else(|| LogArchiveError {
                                    message: "truncated numeric width".to_string(),
                                })? as usize;
                            text_pos += 1;
                            let (delta, p) = varint::read_i64(numeric_stream, numeric_pos)?;
                            numeric_pos = p;
                            let key = (tid, slot);
                            let value = last_numeric.get(&key).copied().unwrap_or(0) + delta;
                            last_numeric.insert(key, value);
                            line.push_str(&format!("{value:0width$}"));
                        }
                        0 => {
                            let (len, p) = varint::read_usize(text_stream, text_pos)?;
                            text_pos = p;
                            if text_pos + len > text_stream.len() {
                                return Err(LogArchiveError {
                                    message: "truncated text variable".to_string(),
                                });
                            }
                            line.push_str(
                                std::str::from_utf8(&text_stream[text_pos..text_pos + len])
                                    .map_err(|_| LogArchiveError {
                                        message: "text variable is not UTF-8".to_string(),
                                    })?,
                            );
                            text_pos += len;
                        }
                        other => {
                            return Err(LogArchiveError {
                                message: format!("unknown variable tag {other}"),
                            })
                        }
                    }
                    slot += 1;
                } else {
                    line.push_str(token);
                }
            }
            lines.push(line);
        }
        Ok(lines)
    }

    /// Compression ratio over a corpus (compressed / raw, raw includes the
    /// newline separators).
    pub fn corpus_ratio(&self, lines: &[String]) -> f64 {
        let raw: usize = lines.iter().map(|l| l.len() + 1).sum();
        if raw == 0 {
            return 1.0;
        }
        self.compress_lines(lines).len() as f64 / raw as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apache_like(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "[Mon Jun 12 10:{:02}:{:02} 2023] [notice] workerEnv.init() ok /etc/httpd/conf/workers2.properties request {}",
                    (i / 60) % 60,
                    i % 60,
                    10000 + i
                )
            })
            .collect()
    }

    #[test]
    fn corpus_roundtrip_is_lossless() {
        let lines = apache_like(300);
        let lr = LogReducer::default();
        let archive = lr.compress_lines(&lines);
        let restored = lr.decompress_lines(&archive).unwrap();
        assert_eq!(restored, lines);
    }

    #[test]
    fn ratio_is_strong_on_templated_logs() {
        let lines = apache_like(500);
        let lr = LogReducer::default();
        let ratio = lr.corpus_ratio(&lines);
        assert!(
            ratio < 0.15,
            "templated logs should compress >6x, got {ratio:.3}"
        );
    }

    #[test]
    fn beats_plain_lzma_on_logs_with_numeric_noise() {
        // Lines whose only variation is numeric: the template + delta
        // pipeline should beat plain LZMA-like on the raw text.
        let lines: Vec<String> = (0..400)
            .map(|i| {
                format!(
                    "metric cpu_usage host=web-{:02} value={} ts={}",
                    i % 16,
                    37 + (i * 13) % 60,
                    1_686_000_000 + i * 15
                )
            })
            .collect();
        let raw: Vec<u8> = lines.join("\n").into_bytes();
        let lzma = LzmaLike::new(9).compress(&raw).len();
        let lr = LogReducer::default().compress_lines(&lines).len();
        assert!(
            lr < lzma,
            "LogReducer-like ({lr}) should beat plain LZMA-like ({lzma})"
        );
    }

    #[test]
    fn mixed_corpora_with_multiple_formats_roundtrip() {
        let mut lines = apache_like(100);
        for i in 0..100 {
            lines.push(format!(
                "081109 2035{:02} 143 INFO dfs.DataNode$DataXceiver: Receiving block blk_{} size {}",
                i % 60,
                -1_608_999_687i64 + i as i64,
                67_108_864 - i
            ));
        }
        for i in 0..50 {
            lines.push(format!(
                "panic at worker {} restarting in {}s",
                i,
                (i * 3) % 30
            ));
        }
        let lr = LogReducer::default();
        let restored = lr.decompress_lines(&lr.compress_lines(&lines)).unwrap();
        assert_eq!(restored, lines);
    }

    #[test]
    fn leading_zero_numerics_survive() {
        let lines: Vec<String> = (0..50)
            .map(|i| format!("event code {:06} processed", i * 37))
            .collect();
        let lr = LogReducer::default();
        let restored = lr.decompress_lines(&lr.compress_lines(&lines)).unwrap();
        assert_eq!(restored, lines);
    }

    #[test]
    fn corrupt_archives_are_rejected() {
        let lines = apache_like(30);
        let lr = LogReducer::default();
        let mut archive = lr.compress_lines(&lines);
        archive.truncate(archive.len() / 3);
        assert!(lr.decompress_lines(&archive).is_err());
        assert!(lr.decompress_lines(&[0, 1, 2, 3]).is_err());
    }

    #[test]
    fn empty_corpus_roundtrips() {
        let lr = LogReducer::default();
        let archive = lr.compress_lines(&[]);
        assert!(lr.decompress_lines(&archive).unwrap().is_empty());
        assert_eq!(lr.corpus_ratio(&[]), 1.0);
    }
}
