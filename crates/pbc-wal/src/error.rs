//! Typed errors for the write-ahead log.

use std::fmt;
use std::io;

/// Everything that can go wrong appending to or recovering a [`crate::Wal`].
#[derive(Debug)]
pub enum WalError {
    /// Filesystem work failed (append, fsync, rotation, unlink).
    Io(io::Error),
    /// A log segment decoded to something impossible *before* its tail — a
    /// bad CRC or malformed payload in a position that cannot be a torn
    /// write. Torn tails are handled silently (truncated at recovery);
    /// this variant means real corruption.
    Corrupt {
        /// Description of what was found and where.
        context: String,
    },
    /// The directory holds logs written with a different shard count
    /// (recorded in its `wal.meta` file). The shard a key maps to must be
    /// stable across reopens (same-key records live in one shard so their
    /// LSN order is their replay order), so an initialized log refuses to
    /// open under a different count. A shard with no surviving segment
    /// files is *not* a count change — it recovers as empty.
    ShardCountMismatch {
        /// Shard count recorded on disk (from `wal.meta`, or inferred
        /// from segment files for pre-meta directories).
        on_disk: usize,
        /// Shard count the caller configured.
        configured: usize,
    },
    /// An fsync on this shard failed earlier. The failure may have
    /// dropped the dirty pages and cleared the fd's error flag, so a
    /// retried `sync_data` could falsely report success (fsyncgate); the
    /// shard therefore refuses all further appends, syncs, and
    /// checkpoints until the log is reopened — recovery then replays
    /// exactly what actually reached disk.
    Poisoned {
        /// Index of the failed shard.
        shard: usize,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o failed: {e}"),
            WalError::Corrupt { context } => write!(f, "wal corrupt: {context}"),
            WalError::ShardCountMismatch {
                on_disk,
                configured,
            } => write!(
                f,
                "wal on disk uses {on_disk} shards but {configured} were configured; \
                 reopen with the original count (or checkpoint and remove the log first)"
            ),
            WalError::Poisoned { shard } => write!(
                f,
                "wal shard {shard} is disabled after a failed fsync; reopen the store to \
                 recover what reached disk (writes acknowledged at durability levels below \
                 PerBatch/PerWrite since the last successful sync may be lost)"
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WalError>;
