//! WAL tuning knobs: durability level, shard count, segment sizing.

use std::path::PathBuf;
use std::time::Duration;

/// When an acknowledged write is actually durable.
///
/// Every level writes the record into the log file before returning; the
/// levels differ only in when `sync_data` runs relative to the
/// acknowledgment. See the crate docs for the full guarantee table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Never fsync on the write path. Acknowledged writes live in the OS
    /// page cache: they survive a process kill (the kernel still holds
    /// them) but **not** a power failure or kernel crash. Checkpoint
    /// markers are still fsynced — the log stays well-formed.
    None,
    /// Fsync at most once per interval, driven by the write path and the
    /// owner's maintenance tick. Writes acknowledge immediately; on power
    /// loss up to one interval of acknowledged writes may be lost.
    Periodic(Duration),
    /// Group commit: the write acknowledges only after a `sync_data`
    /// covering its record completes, but concurrent writers share one
    /// fsync per batch. Full durability at a fraction of `PerWrite`'s
    /// cost under concurrency. The default.
    #[default]
    PerBatch,
    /// One `sync_data` per record, serialized under the shard lock. The
    /// strictest — and slowest — level; exists mostly as the baseline
    /// group commit is measured against.
    PerWrite,
}

/// Configuration for [`crate::Wal::open`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files. Created if absent.
    pub dir: PathBuf,
    /// Number of independent log shards. Keys are hashed to a shard with
    /// a format-stable function, so this must not change for a non-empty
    /// log ([`crate::WalError::ShardCountMismatch`] otherwise).
    pub shards: usize,
    /// Rotate the active segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// When acknowledged writes become durable.
    pub durability: Durability,
}

impl WalConfig {
    /// Defaults: 4 shards, 4 MiB segments, [`Durability::PerBatch`].
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            shards: 4,
            segment_bytes: 4 * 1024 * 1024,
            durability: Durability::default(),
        }
    }

    /// Set the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Set the segment rotation threshold in bytes.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Set the durability level.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }
}
