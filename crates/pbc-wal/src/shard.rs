//! One log shard: an active append segment, sealed predecessors, and the
//! group-commit core.
//!
//! ## Group commit
//!
//! Under [`Durability::PerBatch`], concurrent writers form an implicit
//! commit queue on the shard's mutex: each appends its frame (cheap — a
//! positioned write into the OS page cache), then waits until
//! `synced_lsn` covers its record. The first waiter to find no sync in
//! flight elects itself **leader**, yields briefly while appends keep
//! arriving (the batching window), snapshots the current `appended_lsn`
//! as its target, and runs `sync_data` *outside the lock* — so while the
//! leader's fsync is in flight, more writers keep appending and queue up
//! behind the next sync. When the leader returns it publishes the new
//! `synced_lsn` and wakes everyone; writers whose records the batch
//! covered return, and one of the rest becomes the next leader. N writers
//! therefore share one `sync_data` per batch instead of paying one each —
//! the difference between `PerBatch` and `PerWrite` throughput under
//! concurrency.
//!
//! ## Positioned writes
//!
//! Frames are written at an explicit offset (`file_bytes`), not through
//! the fd cursor. If an append fails partway, the shard's offset does not
//! advance, so the next append overwrites the partial frame — a failed
//! write can never strand valid later frames behind a bad one. A crash at
//! that point leaves a torn tail, which recovery truncates.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use pbc_obs::Event;

use crate::config::Durability;
use crate::error::{Result, WalError};
use crate::format;
use crate::obs::WalObs;

/// `wal-<shard>-<seq>.log`, zero-padded so lexical order is replay order.
pub(crate) fn segment_file_name(shard: usize, seq: u64) -> String {
    format!("wal-{shard:03}-{seq:010}.log")
}

/// Parse a segment file name back into `(shard, seq)`.
pub(crate) fn parse_segment_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    let (shard, seq) = rest.split_once('-')?;
    if shard.len() != 3 || seq.len() != 10 {
        return None;
    }
    Some((shard.parse().ok()?, seq.parse().ok()?))
}

fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(buf)
    }
}

/// Fsync a directory so file creations/deletions inside it are durable.
/// Without this, a power loss can lose a freshly created segment's
/// directory entry even though its (fsynced) data blocks are on disk —
/// acknowledged records gone with no torn tail to show for it.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        // Directory handles cannot be fsynced portably off unix; metadata
        // ordering is left to the filesystem there.
        let _ = dir;
        Ok(())
    }
}

/// A sealed (rotated-out) segment: immutable, fully synced, deletable as
/// soon as a checkpoint mark covers its highest LSN.
#[derive(Debug, Clone)]
pub(crate) struct SealedSegment {
    pub(crate) seq: u64,
    /// Highest record LSN in the file (markers included).
    pub(crate) max_lsn: u64,
    pub(crate) bytes: u64,
}

#[derive(Debug)]
pub(crate) struct ShardState {
    /// Active segment. `Arc` so a group-commit leader can `sync_data`
    /// outside the lock while rotation swaps in a successor.
    file: Arc<File>,
    seq: u64,
    /// Bytes of complete frames in the active segment — the next append
    /// offset.
    file_bytes: u64,
    /// Highest LSN written to the active segment (0 = none yet).
    active_max_lsn: u64,
    /// Next LSN to assign (monotonic per shard, starts at 1).
    next_lsn: u64,
    /// Highest LSN whose frame write completed.
    appended_lsn: u64,
    /// Highest LSN covered by a completed `sync_data`.
    synced_lsn: u64,
    /// A group-commit leader is fsyncing outside the lock.
    sync_in_flight: bool,
    last_sync: Instant,
    /// Highest mark any checkpoint marker on this shard has recorded —
    /// lets an idle shard skip appending redundant markers.
    last_mark: u64,
    /// Set when an fsync on the active segment failed. On Linux a failed
    /// fsync can drop the dirty pages *and clear the error flag*, so a
    /// retry on the same fd may report success without the data being
    /// durable (fsyncgate). Once set, every append/sync/checkpoint on
    /// this shard fails with [`crate::WalError::Poisoned`] until the log
    /// is reopened (recovery reads what actually reached disk).
    poisoned: bool,
    sealed: Vec<SealedSegment>,
}

#[derive(Debug)]
pub(crate) struct WalShard {
    index: usize,
    dir: PathBuf,
    durability: Durability,
    segment_bytes: u64,
    obs: WalObs,
    state: Mutex<ShardState>,
    synced: Condvar,
}

impl WalShard {
    /// Open the shard with a fresh active segment at `seq`, continuing
    /// LSNs after `max_lsn_seen`, over recovered `sealed` predecessors.
    #[allow(clippy::too_many_arguments)] // internal constructor; fields mirror ShardState
    pub(crate) fn open(
        index: usize,
        dir: &Path,
        durability: Durability,
        segment_bytes: u64,
        obs: WalObs,
        seq: u64,
        max_lsn_seen: u64,
        last_mark: u64,
        sealed: Vec<SealedSegment>,
    ) -> Result<WalShard> {
        let file = create_segment(dir, index, seq)?;
        Ok(WalShard {
            index,
            dir: dir.to_path_buf(),
            durability,
            segment_bytes: segment_bytes.max(64),
            obs,
            state: Mutex::new(ShardState {
                file: Arc::new(file),
                seq,
                file_bytes: 0,
                active_max_lsn: 0,
                next_lsn: max_lsn_seen + 1,
                appended_lsn: max_lsn_seen,
                synced_lsn: max_lsn_seen,
                sync_in_flight: false,
                last_sync: Instant::now(),
                last_mark,
                poisoned: false,
                sealed,
            }),
            synced: Condvar::new(),
        })
    }

    // lock-wrapper: lock = shard.state
    fn lock(&self) -> MutexGuard<'_, ShardState> {
        // pbc-allow(panic): shard mutex poisoning only follows a panic elsewhere; WAL state is then undefined
        self.state.lock().expect("wal shard poisoned")
    }

    fn check_usable(&self, state: &ShardState) -> Result<()> {
        if state.poisoned {
            return Err(WalError::Poisoned { shard: self.index });
        }
        Ok(())
    }

    /// Mark the shard unusable after a failed fsync and wake every
    /// group-commit waiter so it observes the poison instead of electing
    /// itself leader and retrying `sync_data` on the same fd.
    fn poison(&self, state: &mut ShardState) {
        state.poisoned = true;
        self.synced.notify_all();
    }

    /// Run the caller's mutation and append its record as one atomic
    /// step under the shard lock, then honor the shard's durability
    /// level before returning. `apply` returns `(result, log)`; when
    /// `log` is false nothing is appended (no LSN assigned, no
    /// durability wait).
    ///
    /// Running `apply` under the same lock that assigns the LSN is what
    /// makes a caller's store-application order equal LSN order for
    /// same-key operations — the property replay relies on (a key maps
    /// to exactly one shard). Returns `(result, Some(lsn))` when a
    /// record was logged.
    pub(crate) fn append_with<T>(
        &self,
        apply: impl FnOnce() -> (T, bool),
        encode: impl FnOnce(u64) -> Vec<u8>,
    ) -> Result<(T, Option<u64>)> {
        let mut state = self.lock();
        self.check_usable(&state)?;
        if state.file_bytes >= self.segment_bytes {
            self.rotate(&mut state)?;
        }
        let (result, log) = apply();
        if !log {
            return Ok((result, None));
        }
        let lsn = state.next_lsn;
        let frame = encode(lsn);
        write_all_at(&state.file, &frame, state.file_bytes)?;
        state.file_bytes += frame.len() as u64;
        state.next_lsn += 1;
        state.appended_lsn = lsn;
        state.active_max_lsn = lsn;
        self.obs.appends.inc();
        match self.durability {
            Durability::None => {}
            Durability::PerWrite => {
                // Deliberately naive — one fsync per record, serialized
                // under the shard lock. This is the baseline group commit
                // is measured against.
                self.sync_locked(&mut state)?;
            }
            Durability::PerBatch => {
                self.group_commit(state, lsn)?;
                return Ok((result, Some(lsn)));
            }
            Durability::Periodic(interval) => {
                if !state.sync_in_flight
                    && state.synced_lsn < state.appended_lsn
                    && state.last_sync.elapsed() >= interval
                {
                    // Leader-style sync, but nobody waits on the result:
                    // Periodic acknowledges before durability.
                    drop(self.lead_sync(state)?);
                    return Ok((result, Some(lsn)));
                }
            }
        }
        Ok((result, Some(lsn)))
    }

    /// `sync_data` while holding the lock; publishes `synced_lsn`. A
    /// failure poisons the shard (see [`ShardState::poisoned`]).
    fn sync_locked(&self, state: &mut ShardState) -> Result<()> {
        let timer = self.obs.fsync_ns.start_timer();
        let outcome = state.file.sync_data();
        timer.observe();
        self.obs.fsyncs.inc();
        if let Err(e) = outcome {
            self.poison(state);
            return Err(e.into());
        }
        self.obs
            .batch_records
            .record(state.appended_lsn - state.synced_lsn);
        state.synced_lsn = state.appended_lsn;
        state.last_sync = Instant::now();
        self.synced.notify_all();
        Ok(())
    }

    /// Group commit: wait until `my_lsn` is durable, electing a leader to
    /// batch the fsync whenever none is in flight (see the module docs).
    fn group_commit<'a>(
        &'a self,
        mut state: MutexGuard<'a, ShardState>,
        my_lsn: u64,
    ) -> Result<()> {
        loop {
            if state.synced_lsn >= my_lsn {
                // A completed sync covered us — a truthful ack even if a
                // later fsync failed and poisoned the shard.
                return Ok(());
            }
            // A leader's fsync failed while we waited: our record may or
            // may not have hit disk, and retrying the fsync could falsely
            // succeed (fsyncgate) — report the failure instead.
            self.check_usable(&state)?;
            if state.sync_in_flight {
                // pbc-allow(panic): condvar re-locks the same shard mutex; poisoning only follows a panic elsewhere
                state = self.synced.wait(state).expect("wal shard poisoned");
                continue;
            }
            state = self.lead_sync(state)?;
        }
    }

    /// Become the sync leader: snapshot the target, fsync outside the
    /// lock, publish, wake waiters. Returns with the lock re-held.
    fn lead_sync<'a>(
        &'a self,
        mut state: MutexGuard<'a, ShardState>,
    ) -> Result<MutexGuard<'a, ShardState>> {
        state.sync_in_flight = true;
        if self.durability == Durability::PerBatch {
            // Batching window: with the leader elected (no second sync can
            // start), release the lock and yield so writers already racing
            // for the shard append their frames before the target is
            // snapshotted — they ride this fsync instead of the next.
            // Scheduler yields while appends keep arriving (bounded), not
            // a timed delay: a lone writer breaks out on the first probe.
            let mut seen = state.appended_lsn;
            for _ in 0..4 {
                drop(state);
                std::thread::yield_now();
                state = self.lock();
                if state.appended_lsn == seen {
                    break;
                }
                seen = state.appended_lsn;
            }
        }
        let target = state.appended_lsn;
        let batch = target - state.synced_lsn;
        let file = Arc::clone(&state.file);
        drop(state);
        let timer = self.obs.fsync_ns.start_timer();
        let outcome = file.sync_data();
        timer.observe();
        self.obs.fsyncs.inc();
        let mut state = self.lock();
        state.sync_in_flight = false;
        match outcome {
            Ok(()) => {
                self.obs.batch_records.record(batch);
                state.synced_lsn = state.synced_lsn.max(target);
                state.last_sync = Instant::now();
                self.synced.notify_all();
                Ok(state)
            }
            Err(e) => {
                // A failed fsync may have dropped the dirty pages and
                // cleared the fd's error flag (fsyncgate): a waiter
                // retrying `sync_data` here could report success without
                // the data being durable. Poison the shard — waiters and
                // all future appends fail until reopen.
                self.poison(&mut state);
                Err(e.into())
            }
        }
    }

    /// Seal the active segment (fsync — so its max LSN is final and every
    /// group-commit waiter is satisfied) and open a successor.
    fn rotate(&self, state: &mut ShardState) -> Result<()> {
        // Seal *before* the successor exists: recovery only truncates a
        // torn tail in the newest non-empty segment, so the old tail must
        // be durably complete before a newer segment can appear on disk.
        self.sync_locked(state)?;
        let next_seq = state.seq + 1;
        let next_file = create_segment(&self.dir, self.index, next_seq)?;
        let sealed = SealedSegment {
            seq: state.seq,
            max_lsn: state.active_max_lsn,
            bytes: state.file_bytes,
        };
        self.obs.trace(Event::WalRotated {
            shard: self.index,
            sealed_seq: sealed.seq,
            sealed_bytes: sealed.bytes,
        });
        state.sealed.push(sealed);
        state.file = Arc::new(next_file);
        state.seq = next_seq;
        state.file_bytes = 0;
        state.active_max_lsn = 0;
        self.obs.rotations.inc();
        Ok(())
    }

    /// The highest LSN assigned so far — every record at or below it has
    /// already been applied to the hot tier (writers insert before they
    /// append), which is what makes this a safe checkpoint mark to flush
    /// against.
    pub(crate) fn mark(&self) -> u64 {
        self.lock().next_lsn - 1
    }

    /// Append a checkpoint marker `(mark, generation)`, fsync it (markers
    /// are always durable — they are what recovery skips by), and return
    /// the sealed segments the mark fully covers, for the caller to
    /// unlink. Skips the marker when `mark` adds nothing over the last one
    /// and no segment is deletable.
    pub(crate) fn checkpoint(&self, mark: u64, generation: u64) -> Result<Vec<(PathBuf, u64)>> {
        let mut state = self.lock();
        self.check_usable(&state)?;
        let covered_any = state.sealed.iter().any(|s| s.max_lsn <= mark);
        if mark <= state.last_mark && !covered_any {
            return Ok(Vec::new());
        }
        if state.file_bytes >= self.segment_bytes {
            self.rotate(&mut state)?;
        }
        if mark > state.last_mark {
            let lsn = state.next_lsn;
            let frame = format::encode_checkpoint(lsn, mark, generation);
            write_all_at(&state.file, &frame, state.file_bytes)?;
            state.file_bytes += frame.len() as u64;
            state.next_lsn += 1;
            state.appended_lsn = lsn;
            state.active_max_lsn = lsn;
            state.last_mark = mark;
            self.sync_locked(&mut state)?;
        }
        let (covered, kept): (Vec<_>, Vec<_>) = std::mem::take(&mut state.sealed)
            .into_iter()
            .partition(|s| s.max_lsn <= mark);
        state.sealed = kept;
        Ok(covered
            .into_iter()
            .map(|s| (self.dir.join(segment_file_name(self.index, s.seq)), s.bytes))
            .collect())
    }

    /// Force everything appended so far durable (clean shutdown, tests).
    pub(crate) fn sync(&self) -> Result<()> {
        let mut state = self.lock();
        self.check_usable(&state)?;
        if state.synced_lsn < state.appended_lsn && !state.sync_in_flight {
            self.sync_locked(&mut state)?;
        }
        Ok(())
    }

    /// Periodic-durability tick: fsync if the interval elapsed with dirty
    /// records. A no-op for every other durability level.
    pub(crate) fn tick(&self) -> Result<()> {
        let Durability::Periodic(interval) = self.durability else {
            return Ok(());
        };
        let mut state = self.lock();
        self.check_usable(&state)?;
        if state.synced_lsn < state.appended_lsn
            && !state.sync_in_flight
            && state.last_sync.elapsed() >= interval
        {
            self.sync_locked(&mut state)?;
        }
        Ok(())
    }

    /// `(total bytes, segment files, highest LSN, highest checkpoint
    /// mark)` for this shard.
    pub(crate) fn snapshot(&self) -> (u64, usize, u64, u64) {
        let state = self.lock();
        let bytes = state.file_bytes + state.sealed.iter().map(|s| s.bytes).sum::<u64>();
        (
            bytes,
            1 + state.sealed.len(),
            state.next_lsn - 1,
            state.last_mark,
        )
    }
}

fn create_segment(dir: &Path, shard: usize, seq: u64) -> Result<File> {
    let path = dir.join(segment_file_name(shard, seq));
    let file = OpenOptions::new()
        .create(true)
        .read(true)
        .write(true)
        .truncate(true)
        .open(path)?;
    // The directory entry must be durable before any acknowledged record
    // lands in this file — `sync_data` on the file does not cover it.
    sync_dir(dir)?;
    Ok(file)
}
