//! Sharded group-commit write-ahead log for the tiered store.
//!
//! `pbc-wal` makes acknowledged writes survive a crash before they are
//! spilled to compressed segments. Keys hash (format-stably) to one of N
//! independent **shards**; each shard is a sequence of append-only
//! segment files of CRC-framed records (`put` / `delete` / `checkpoint
//! marker`) with monotonically increasing LSNs. Durability is a dial
//! ([`Durability`]): from `None` (page cache only) through
//! `Periodic` and the default **group commit** (`PerBatch` — N
//! concurrent writers share one `sync_data`) to `PerWrite` (one fsync
//! per record).
//!
//! On [`Wal::open`] the log is recovered: each shard's newest non-empty
//! segment has its torn tail truncated at the first bad CRC, and every
//! record past the last *visible* checkpoint mark (one whose manifest
//! generation actually committed) is replayed through a caller closure.
//! After the owning store flushes, [`Wal::checkpoint`] appends durable
//! markers and deletes the sealed segments they cover, keeping the log
//! bounded.
//!
//! Three durability details worth knowing: segment creations and
//! deletions are made durable with directory fsyncs (a power loss never
//! loses a rotated-in file's directory entry); a failed fsync
//! **poisons** its shard — every later append/sync errors with
//! [`WalError::Poisoned`] until reopen, because retrying `sync_data` on
//! the same fd can falsely succeed (fsyncgate); and the shard count is
//! recorded in a `wal.meta` file, so a shard whose segment files are all
//! gone recovers as empty instead of tripping the
//! [`WalError::ShardCountMismatch`] guard. Callers that mirror the log
//! into a store of their own should mutate through
//! [`Wal::append_put_with`] / [`Wal::append_delete_with`], which run the
//! mutation under the same lock that assigns the LSN — making replay
//! order identical to application order for same-key operations.
//!
//! ```
//! use pbc_wal::{Durability, ReplayOp, Wal, WalConfig, WalObs};
//!
//! let dir = std::env::temp_dir().join(format!("pbc-wal-doc-{}", std::process::id()));
//! let config = WalConfig::new(&dir).with_shards(2).with_durability(Durability::PerBatch);
//!
//! // First open: empty log, nothing to replay.
//! let (wal, report) = Wal::open(config.clone(), WalObs::default(), 0, |_op| {}).unwrap();
//! assert_eq!(report.records_replayed, 0);
//! wal.append_put(b"k1", b"v1").unwrap();
//! wal.append_delete(b"k0").unwrap();
//! drop(wal);
//!
//! // Reopen: both acknowledged records come back, in order per key.
//! let mut replayed = Vec::new();
//! let (_wal, report) = Wal::open(config, WalObs::default(), 0, |op| {
//!     replayed.push(match op {
//!         ReplayOp::Put { key, .. } => (key.to_vec(), true),
//!         ReplayOp::Delete { key } => (key.to_vec(), false),
//!     });
//! })
//! .unwrap();
//! assert_eq!(report.records_replayed, 2);
//! assert!(replayed.contains(&(b"k1".to_vec(), true)));
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod error;
mod format;
mod obs;
mod shard;
mod wal;

pub use config::{Durability, WalConfig};
pub use error::{Result, WalError};
pub use format::shard_of;
pub use obs::WalObs;
pub use wal::{CheckpointSummary, RecoveryReport, ReplayOp, Wal, WalStats};

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pbc-wal-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn replay_into(map: &mut BTreeMap<Vec<u8>, Vec<u8>>) -> impl FnMut(ReplayOp<'_>) + '_ {
        move |op| match op {
            ReplayOp::Put { key, value } => {
                map.insert(key.to_vec(), value.to_vec());
            }
            ReplayOp::Delete { key } => {
                map.remove(key);
            }
        }
    }

    #[test]
    fn reopen_replays_acknowledged_writes() {
        let dir = temp_dir("replay");
        let config = WalConfig::new(&dir).with_shards(3);
        let (wal, _) = Wal::open(config.clone(), WalObs::default(), 0, |_| {}).unwrap();
        for i in 0..50u32 {
            wal.append_put(format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        wal.append_delete(b"k007").unwrap();
        drop(wal);

        let mut state = BTreeMap::new();
        let (_wal, report) =
            Wal::open(config, WalObs::default(), 0, replay_into(&mut state)).unwrap();
        assert_eq!(report.records_replayed, 51);
        assert_eq!(state.len(), 49);
        assert!(!state.contains_key(b"k007".as_slice()));
        assert_eq!(state.get(b"k001".as_slice()).unwrap(), b"v1");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncates_to_committed_prefix() {
        let dir = temp_dir("torn");
        let config = WalConfig::new(&dir).with_shards(1);
        let (wal, _) = Wal::open(config.clone(), WalObs::default(), 0, |_| {}).unwrap();
        for i in 0..10u32 {
            wal.append_put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        drop(wal);

        // Corrupt the final bytes of the only segment: flip one byte in
        // the last record's payload so its CRC no longer matches.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|ext| ext == "log"))
            .unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&seg, &bytes).unwrap();

        let mut state = BTreeMap::new();
        let (_wal, report) =
            Wal::open(config, WalObs::default(), 0, replay_into(&mut state)).unwrap();
        assert_eq!(report.records_replayed, 9);
        assert!(report.truncated_bytes > 0);
        assert_eq!(state.len(), 9);
        assert!(!state.contains_key(b"k9".as_slice()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_bounds_the_log_and_skips_covered_records() {
        let dir = temp_dir("ckpt");
        // Tiny segments so rotation happens constantly.
        let config = WalConfig::new(&dir).with_shards(2).with_segment_bytes(256);
        let (wal, _) = Wal::open(config.clone(), WalObs::default(), 0, |_| {}).unwrap();
        for i in 0..100u32 {
            wal.append_put(format!("k{i:04}").as_bytes(), &[0u8; 32])
                .unwrap();
        }
        let before = wal.stats();
        assert!(
            before.segments > 4,
            "expected many segments, got {}",
            before.segments
        );

        let marks = wal.capture_marks();
        let summary = wal.checkpoint(&marks, 7).unwrap();
        assert!(summary.segments_deleted > 0);
        let after = wal.stats();
        assert!(after.bytes < before.bytes);
        drop(wal);

        // Manifest generation 7 is visible, so nothing replays; writes
        // made after the checkpoint do.
        let (wal, report) = Wal::open(config.clone(), WalObs::default(), 7, |_| {
            panic!("checkpointed records must not replay");
        })
        .unwrap();
        assert_eq!(report.records_replayed, 0);
        for i in 0..5u32 {
            wal.append_put(format!("post{i}").as_bytes(), b"v").unwrap();
        }
        drop(wal);
        let mut state = BTreeMap::new();
        let (_wal, report) =
            Wal::open(config, WalObs::default(), 7, replay_into(&mut state)).unwrap();
        assert_eq!(report.records_replayed, 5);
        assert_eq!(state.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_count_change_is_rejected() {
        let dir = temp_dir("shards");
        let config = WalConfig::new(&dir).with_shards(4);
        let (wal, _) = Wal::open(config, WalObs::default(), 0, |_| {}).unwrap();
        wal.append_put(b"k", b"v").unwrap();
        drop(wal);

        let err = Wal::open(
            WalConfig::new(&dir).with_shards(2),
            WalObs::default(),
            0,
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(
            err,
            WalError::ShardCountMismatch {
                on_disk: 4,
                configured: 2
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_shard_files_recover_as_empty() {
        // A crash during `Wal::open` (or a recovery sweep of a shard's
        // empty segments) can leave a shard with no files at all. The
        // shard count in wal.meta is authoritative: the shard recovers
        // as empty instead of tripping ShardCountMismatch forever.
        let dir = temp_dir("missing-shard");
        let config = WalConfig::new(&dir).with_shards(4);
        let (wal, _) = Wal::open(config.clone(), WalObs::default(), 0, |_| {}).unwrap();
        for i in 0..64u32 {
            wal.append_put(format!("k{i:03}").as_bytes(), b"v").unwrap();
        }
        drop(wal);

        // Simulate the crash window: every file of the highest shard
        // index is gone.
        let mut removed = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if name.starts_with("wal-003-") {
                std::fs::remove_file(&path).unwrap();
                removed += 1;
            }
        }
        assert!(removed > 0, "shard 3 held at least its active segment");

        let mut state = BTreeMap::new();
        let (wal, report) = Wal::open(
            config.clone(),
            WalObs::default(),
            0,
            replay_into(&mut state),
        )
        .unwrap();
        assert!(report.records_replayed > 0);
        // The empty shard accepts fresh appends and a further reopen
        // still agrees on the count.
        wal.append_put(b"post", b"v").unwrap();
        drop(wal);
        let (_wal, _) = Wal::open(config, WalObs::default(), 0, |_| {}).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn growing_the_shard_count_is_rejected_too() {
        let dir = temp_dir("grow-shards");
        let (wal, _) = Wal::open(
            WalConfig::new(&dir).with_shards(2),
            WalObs::default(),
            0,
            |_| {},
        )
        .unwrap();
        wal.append_put(b"k", b"v").unwrap();
        drop(wal);
        let err = Wal::open(
            WalConfig::new(&dir).with_shards(8),
            WalObs::default(),
            0,
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(
            err,
            WalError::ShardCountMismatch {
                on_disk: 2,
                configured: 8
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_before_an_empty_successor_segment_truncates() {
        // Rotation fsyncs the active tail before creating its successor,
        // so a tear can only exist in the newest *non-empty* segment.
        // Recovery must accept exactly that shape — a torn segment
        // followed only by empty files — rather than calling it corrupt.
        let dir = temp_dir("torn-rotate");
        let config = WalConfig::new(&dir).with_shards(1);
        let (wal, _) = Wal::open(config.clone(), WalObs::default(), 0, |_| {}).unwrap();
        for i in 0..10u32 {
            wal.append_put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        drop(wal);

        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|ext| ext == "log"))
            .unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 3).unwrap(); // tear the last frame
        drop(file);
        // The empty successor a crashed rotation would have left behind.
        std::fs::File::create(dir.join("wal-000-0000000001.log")).unwrap();

        let mut state = BTreeMap::new();
        let (_wal, report) =
            Wal::open(config, WalObs::default(), 0, replay_into(&mut state)).unwrap();
        assert_eq!(report.records_replayed, 9);
        assert!(report.truncated_bytes > 0);
        assert!(!state.contains_key(b"k9".as_slice()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_under_the_shard_lock_returns_results_and_skips_unlogged_ops() {
        let dir = temp_dir("apply");
        let config = WalConfig::new(&dir).with_shards(2);
        let (wal, _) = Wal::open(config.clone(), WalObs::default(), 0, |_| {}).unwrap();
        let (stored, lsn) = wal.append_put_with(b"k", b"v", || 42usize).unwrap();
        assert_eq!(stored, 42);
        assert_eq!(lsn, 1);
        // A delete that found nothing logs nothing and assigns no LSN.
        let (existed, lsn) = wal.append_delete_with(b"ghost", || (false, false)).unwrap();
        assert!(!existed);
        assert_eq!(lsn, None);
        let (existed, lsn) = wal.append_delete_with(b"k", || (true, true)).unwrap();
        assert!(existed);
        assert!(lsn.is_some());
        drop(wal);

        let mut state = BTreeMap::new();
        let (_wal, report) =
            Wal::open(config, WalObs::default(), 0, replay_into(&mut state)).unwrap();
        assert_eq!(
            report.records_replayed, 2,
            "the ghost delete never hit the log"
        );
        assert!(state.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_batches_concurrent_writers() {
        let dir = temp_dir("group");
        let config = WalConfig::new(&dir)
            .with_shards(1)
            .with_durability(Durability::PerBatch);
        let (wal, _) = Wal::open(config.clone(), WalObs::default(), 0, |_| {}).unwrap();
        let wal = Arc::new(wal);
        let per_thread = 40u32;
        let threads = 8usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        wal.append_put(format!("t{t}-{i}").as_bytes(), b"v")
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(wal);

        let mut count = 0u64;
        let (_wal, report) = Wal::open(config, WalObs::default(), 0, |_| count += 1).unwrap();
        assert_eq!(report.records_replayed, threads as u64 * per_thread as u64);
        assert_eq!(count, report.records_replayed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durability_none_still_recovers_after_clean_drop() {
        let dir = temp_dir("none");
        let config = WalConfig::new(&dir)
            .with_shards(2)
            .with_durability(Durability::None);
        let (wal, _) = Wal::open(config.clone(), WalObs::default(), 0, |_| {}).unwrap();
        wal.append_put(b"a", b"1").unwrap();
        wal.append_put(b"b", b"2").unwrap();
        drop(wal);
        let mut state = BTreeMap::new();
        let (_wal, report) =
            Wal::open(config, WalObs::default(), 0, replay_into(&mut state)).unwrap();
        assert_eq!(report.records_replayed, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
