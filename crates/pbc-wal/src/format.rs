//! On-disk record framing: length + CRC32 header, little-endian payload.
//!
//! A segment file is a plain concatenation of frames:
//!
//! ```text
//! | payload_len u32 | crc32(payload) u32 | payload (payload_len bytes) |
//! ```
//!
//! and every payload starts with `lsn u64, op u8`:
//!
//! ```text
//! put:        lsn u64 | 0x01 | key_len u32 | key | value_len u32 | value
//! delete:     lsn u64 | 0x02 | key_len u32 | key
//! checkpoint: lsn u64 | 0x03 | mark u64 | generation u64
//! ```
//!
//! The framing is what makes torn tails detectable: a crash mid-append
//! leaves a frame whose length header runs past the end of the file, or
//! whose CRC does not match — recovery stops at the first such frame and
//! truncates the file there (only legal in the *last* segment of a shard;
//! anywhere else it is reported as corruption). There is no compression
//! and no training pass: append-time framing costs two fixed-size header
//! writes and one CRC over the payload, so the WAL never stalls a write
//! on codec work.

/// Op byte for a put record.
pub const OP_PUT: u8 = 0x01;
/// Op byte for a delete record.
pub const OP_DELETE: u8 = 0x02;
/// Op byte for a checkpoint marker.
pub const OP_CHECKPOINT: u8 = 0x03;

/// Bytes of frame header (`payload_len u32` + `crc32 u32`) before the
/// payload.
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound a frame's declared payload length is sanity-checked
/// against. A torn length header can decode to anything; without a bound,
/// recovery would treat "4 GiB payload" as an incomplete frame instead of
/// garbage. Generous enough for any real record (keys + values are store
/// entries, not blobs).
pub const MAX_PAYLOAD_LEN: usize = 256 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected — the same polynomial zlib and
/// `pbc-archive` use), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xff) as usize];
    }
    !crc
}

/// One decoded WAL record, borrowing its key/value from the frame buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record<'a> {
    /// A stored value.
    Put {
        /// Shard-monotonic sequence number.
        lsn: u64,
        /// The key, verbatim.
        key: &'a [u8],
        /// The value, verbatim (uncompressed — hot-tier codecs apply
        /// above the WAL).
        value: &'a [u8],
    },
    /// A deletion.
    Delete {
        /// Shard-monotonic sequence number.
        lsn: u64,
        /// The deleted key.
        key: &'a [u8],
    },
    /// A checkpoint marker: every record with `lsn <= mark` was durable in
    /// the cold tier when the manifest generation was `generation`.
    Checkpoint {
        /// Shard-monotonic sequence number of the marker itself.
        lsn: u64,
        /// Highest LSN the covering spill made durable.
        mark: u64,
        /// Manifest generation of that spill's commit. Recovery honors the
        /// marker only if the live manifest is at or past this generation —
        /// the cross-check that makes replay idempotent against
        /// already-spilled data.
        generation: u64,
    },
}

impl Record<'_> {
    /// The record's shard-monotonic sequence number.
    pub fn lsn(&self) -> u64 {
        match self {
            Record::Put { lsn, .. }
            | Record::Delete { lsn, .. }
            | Record::Checkpoint { lsn, .. } => *lsn,
        }
    }
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Encode a put record as one complete frame.
pub fn encode_put(lsn: u64, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + 1 + 4 + key.len() + 4 + value.len());
    payload.extend_from_slice(&lsn.to_le_bytes());
    payload.push(OP_PUT);
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(key);
    payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
    payload.extend_from_slice(value);
    frame(payload)
}

/// Encode a delete record as one complete frame.
pub fn encode_delete(lsn: u64, key: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + 1 + 4 + key.len());
    payload.extend_from_slice(&lsn.to_le_bytes());
    payload.push(OP_DELETE);
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(key);
    frame(payload)
}

/// Encode a checkpoint marker as one complete frame.
pub fn encode_checkpoint(lsn: u64, mark: u64, generation: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + 1 + 8 + 8);
    payload.extend_from_slice(&lsn.to_le_bytes());
    payload.push(OP_CHECKPOINT);
    payload.extend_from_slice(&mark.to_le_bytes());
    payload.extend_from_slice(&generation.to_le_bytes());
    frame(payload)
}

/// What [`decode_frame`] found at the front of a buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeOutcome<'a> {
    /// A complete, CRC-valid record occupying `frame_len` bytes.
    Frame {
        /// The decoded record (borrowing from the buffer).
        record: Record<'a>,
        /// Total frame size — advance the cursor by this much.
        frame_len: usize,
    },
    /// The buffer ends mid-frame (or is empty): a clean end of log or a
    /// torn tail, depending on whether any bytes remain.
    Incomplete,
    /// The frame is structurally present but invalid — CRC mismatch,
    /// unreasonable length, unknown op, or truncated fields. A torn tail
    /// when it is the last thing in a shard's last segment; corruption
    /// anywhere else.
    Corrupt,
}

fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(buf.get(at..at + 4)?.try_into().ok()?))
}

fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(buf.get(at..at + 8)?.try_into().ok()?))
}

/// Decode the frame at the front of `buf`. Never panics on garbage input:
/// anything that does not parse to a CRC-valid record comes back as
/// [`DecodeOutcome::Incomplete`] or [`DecodeOutcome::Corrupt`].
pub fn decode_frame(buf: &[u8]) -> DecodeOutcome<'_> {
    if buf.is_empty() {
        return DecodeOutcome::Incomplete;
    }
    if buf.len() < FRAME_HEADER_LEN {
        return DecodeOutcome::Incomplete;
    }
    // pbc-allow(panic): offset 0 of a buffer checked >= FRAME_HEADER_LEN
    let payload_len = read_u32(buf, 0).expect("checked len") as usize;
    if !(9..=MAX_PAYLOAD_LEN).contains(&payload_len) {
        // A real payload carries at least lsn + op. A wild length is a
        // torn header, not a short buffer.
        return DecodeOutcome::Corrupt;
    }
    // pbc-allow(panic): offset 4 of a buffer checked >= FRAME_HEADER_LEN
    let expected_crc = read_u32(buf, 4).expect("checked len");
    let Some(payload) = buf.get(FRAME_HEADER_LEN..FRAME_HEADER_LEN + payload_len) else {
        return DecodeOutcome::Incomplete;
    };
    if crc32(payload) != expected_crc {
        return DecodeOutcome::Corrupt;
    }
    // pbc-allow(panic): payload_len was range-checked to hold lsn + op
    let lsn = read_u64(payload, 0).expect("payload_len >= 9");
    let op = payload[8];
    let body = &payload[9..];
    let record = match op {
        OP_PUT => {
            let Some(key_len) = read_u32(body, 0).map(|n| n as usize) else {
                return DecodeOutcome::Corrupt;
            };
            let Some(key) = body.get(4..4 + key_len) else {
                return DecodeOutcome::Corrupt;
            };
            let Some(value_len) = read_u32(body, 4 + key_len).map(|n| n as usize) else {
                return DecodeOutcome::Corrupt;
            };
            let value_at = 4 + key_len + 4;
            let Some(value) = body.get(value_at..value_at + value_len) else {
                return DecodeOutcome::Corrupt;
            };
            if value_at + value_len != body.len() {
                return DecodeOutcome::Corrupt;
            }
            Record::Put { lsn, key, value }
        }
        OP_DELETE => {
            let Some(key_len) = read_u32(body, 0).map(|n| n as usize) else {
                return DecodeOutcome::Corrupt;
            };
            let Some(key) = body.get(4..4 + key_len) else {
                return DecodeOutcome::Corrupt;
            };
            if 4 + key_len != body.len() {
                return DecodeOutcome::Corrupt;
            }
            Record::Delete { lsn, key }
        }
        OP_CHECKPOINT => {
            let (Some(mark), Some(generation)) = (read_u64(body, 0), read_u64(body, 8)) else {
                return DecodeOutcome::Corrupt;
            };
            if body.len() != 16 {
                return DecodeOutcome::Corrupt;
            }
            Record::Checkpoint {
                lsn,
                mark,
                generation,
            }
        }
        _ => return DecodeOutcome::Corrupt,
    };
    DecodeOutcome::Frame {
        record,
        frame_len: FRAME_HEADER_LEN + payload_len,
    }
}

/// FNV-1a over the key — the **format-stable** shard hash. Same-key
/// records must land in the same shard across process restarts (their LSN
/// order within the shard is their replay order), so this must never
/// change for on-disk logs to stay replayable.
pub fn shard_of(key: &[u8], shards: usize) -> usize {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in key {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    (hash % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn put_delete_checkpoint_round_trip() {
        let frames = [
            encode_put(7, b"user:1", b"v|alpha"),
            encode_delete(8, b"user:1"),
            encode_checkpoint(9, 8, 42),
        ];
        let buf: Vec<u8> = frames.concat();
        let mut at = 0usize;
        let mut records = Vec::new();
        loop {
            match decode_frame(&buf[at..]) {
                DecodeOutcome::Frame { record, frame_len } => {
                    records.push(format!("{record:?}"));
                    at += frame_len;
                }
                DecodeOutcome::Incomplete => break,
                DecodeOutcome::Corrupt => panic!("valid stream decoded as corrupt"),
            }
        }
        assert_eq!(at, buf.len());
        assert_eq!(records.len(), 3);
        assert!(records[0].contains("Put") && records[0].contains("lsn: 7"));
        assert!(records[1].contains("Delete"));
        assert!(records[2].contains("mark: 8") && records[2].contains("generation: 42"));
    }

    #[test]
    fn every_truncation_of_a_valid_stream_is_incomplete_or_corrupt() {
        let buf = [
            encode_put(1, b"k", b"some value bytes"),
            encode_delete(2, b"k"),
        ]
        .concat();
        for cut in 0..buf.len() {
            let outcome = decode_frame(&buf[..cut]);
            if cut >= buf.len() - 1 {
                continue;
            }
            // Cutting inside the first frame must never yield a frame.
            let first_len = match decode_frame(&buf) {
                DecodeOutcome::Frame { frame_len, .. } => frame_len,
                _ => unreachable!(),
            };
            if cut < first_len {
                assert!(
                    !matches!(outcome, DecodeOutcome::Frame { .. }),
                    "cut {cut} inside first frame decoded as a frame"
                );
            }
        }
    }

    #[test]
    fn bit_flips_are_caught_by_the_crc() {
        let clean = encode_put(3, b"key", b"value");
        for bit in 0..clean.len() * 8 {
            let mut flipped = clean.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            match decode_frame(&flipped) {
                DecodeOutcome::Frame { record, .. } => {
                    panic!("bit flip {bit} still decoded: {record:?}")
                }
                DecodeOutcome::Incomplete | DecodeOutcome::Corrupt => {}
            }
        }
    }

    #[test]
    fn shard_hash_is_stable_and_spreads() {
        // Format-stable: these exact values are what old logs were
        // sharded with. If this test ever fails, on-disk logs written by
        // earlier builds would replay same-key records across shards in
        // undefined order.
        assert_eq!(shard_of(b"user:000001", 4), shard_of(b"user:000001", 4));
        assert_eq!(shard_of(b"", 16), 0xcbf2_9ce4_8422_2325u64 as usize % 16);
        let hits: std::collections::BTreeSet<usize> = (0..64)
            .map(|i| shard_of(format!("k{i}").as_bytes(), 4))
            .collect();
        assert_eq!(hits.len(), 4, "64 keys must touch all 4 shards");
    }
}
