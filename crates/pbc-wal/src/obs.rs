//! Observability handles the WAL records through.
//!
//! Mirrors the `TierObs` bundle pattern: every metric name is defined in
//! one place, handles are created eagerly, and the hot paths record
//! through clones without any name lookup. [`WalObs::default`] hands out
//! no-op handles (and no trace ring), so the WAL can run un-instrumented
//! at zero cost.

use std::sync::Arc;

use pbc_obs::{Counter, Event, Gauge, Histogram, MetricsRegistry, TraceRing};

/// Metric handles and the (optional, shared) trace ring for one
/// [`crate::Wal`].
#[derive(Clone)]
pub struct WalObs {
    /// Records appended (puts + deletes; markers are not counted).
    pub appends: Counter,
    /// `sync_data` calls issued, across all shards and reasons.
    pub fsyncs: Counter,
    /// Checkpoints taken (one per [`crate::Wal::checkpoint`] call).
    pub checkpoints: Counter,
    /// Active segments sealed and rotated out.
    pub rotations: Counter,
    /// Sealed segments deleted because a checkpoint fully covered them.
    pub segments_deleted: Counter,
    /// Records replayed into the store at recovery.
    pub records_replayed: Counter,
    /// Torn tail bytes truncated at recovery.
    pub truncated_bytes: Counter,
    /// Total log bytes on disk (sealed + active), refreshed on rotation,
    /// checkpoint, recovery, and every [`crate::Wal::stats`] call.
    pub wal_bytes: Gauge,
    /// Segment files on disk, refreshed on the same cadence.
    pub wal_segments: Gauge,
    /// Highest LSN assigned across all shards.
    pub wal_lsn: Gauge,
    /// `sync_data` latency in nanoseconds.
    pub fsync_ns: Histogram,
    /// Records each group-commit fsync made durable — the batch size N
    /// writers shared one `sync_data` across. Meaningful under
    /// [`crate::Durability::PerBatch`]; under `PerWrite` it records 1.
    pub batch_records: Histogram,
    /// Structured trace ring (rotation, checkpoint, recovery events).
    /// `None` disables tracing without disabling metrics.
    pub trace: Option<Arc<TraceRing>>,
}

impl WalObs {
    /// Build the bundle against `registry` (pass a disabled registry for
    /// no-op metrics), sharing `trace` with whoever owns the ring.
    pub fn new(registry: &MetricsRegistry, trace: Option<Arc<TraceRing>>) -> WalObs {
        WalObs {
            appends: registry.counter("pbc_wal_appends_total"),
            fsyncs: registry.counter("pbc_wal_fsyncs_total"),
            checkpoints: registry.counter("pbc_wal_checkpoints_total"),
            rotations: registry.counter("pbc_wal_rotations_total"),
            segments_deleted: registry.counter("pbc_wal_segments_deleted_total"),
            records_replayed: registry.counter("pbc_wal_records_replayed_total"),
            truncated_bytes: registry.counter("pbc_wal_truncated_tail_bytes_total"),
            wal_bytes: registry.gauge("pbc_wal_bytes"),
            wal_segments: registry.gauge("pbc_wal_segments"),
            wal_lsn: registry.gauge("pbc_wal_lsn"),
            fsync_ns: registry.histogram("pbc_wal_fsync_ns"),
            batch_records: registry.histogram("pbc_wal_commit_batch_records"),
            trace,
        }
    }

    /// Record a structured trace event, if a ring is attached.
    pub(crate) fn trace(&self, event: Event) {
        if let Some(ring) = &self.trace {
            ring.record(event);
        }
    }
}

impl Default for WalObs {
    /// All-no-op handles: nothing is counted, timed, or traced.
    fn default() -> Self {
        WalObs {
            appends: Counter::noop(),
            fsyncs: Counter::noop(),
            checkpoints: Counter::noop(),
            rotations: Counter::noop(),
            segments_deleted: Counter::noop(),
            records_replayed: Counter::noop(),
            truncated_bytes: Counter::noop(),
            wal_bytes: Gauge::noop(),
            wal_segments: Gauge::noop(),
            wal_lsn: Gauge::noop(),
            fsync_ns: Histogram::noop(),
            batch_records: Histogram::noop(),
            trace: None,
        }
    }
}

impl std::fmt::Debug for WalObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalObs")
            .field("traced", &self.trace.is_some())
            .finish()
    }
}
