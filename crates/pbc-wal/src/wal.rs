//! The sharded log: open/recover, append, checkpoint, stats.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use pbc_obs::Event;

use crate::config::WalConfig;
use crate::error::{Result, WalError};
use crate::format::{self, DecodeOutcome, Record};
use crate::obs::WalObs;
use crate::shard::{parse_segment_name, sync_dir, SealedSegment, WalShard};

/// Meta file recording the directory's shard count. Written (atomically,
/// via rename) before the first segment is created, so a crash during
/// `Wal::open` — after some shards created segments, or after recovery
/// swept a shard's empty segments — cannot make the count look smaller
/// than it is: a shard with no surviving files simply recovers as empty.
const META_FILE: &str = "wal.meta";

/// Read the shard count from `wal.meta`, `None` when the file does not
/// exist (fresh directory, or one written before the meta file existed).
fn read_shard_meta(dir: &Path) -> Result<Option<usize>> {
    let raw = match fs::read_to_string(dir.join(META_FILE)) {
        Ok(raw) => raw,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    match raw.trim().parse::<usize>() {
        Ok(count) if count > 0 => Ok(Some(count)),
        _ => Err(WalError::Corrupt {
            context: format!("{META_FILE} does not hold a shard count: {raw:?}"),
        }),
    }
}

/// Durably record the shard count: write + fsync a temp file, rename it
/// over `wal.meta`, fsync the directory.
fn write_shard_meta(dir: &Path, shards: usize) -> Result<()> {
    let tmp = dir.join("wal.meta.tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(format!("{shards}\n").as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, dir.join(META_FILE))?;
    sync_dir(dir)?;
    Ok(())
}

/// A logical operation handed back to the caller during replay, in the
/// order it must be applied. Same-key operations replay in LSN order (a
/// key maps to one shard, and a shard replays in LSN order) — and when
/// the caller mirrors writes into its own store through
/// [`Wal::append_put_with`] / [`Wal::append_delete_with`], LSN order
/// *is* the order the store applied them in, so replay reproduces
/// exactly the acknowledged pre-crash state.
#[derive(Debug)]
pub enum ReplayOp<'a> {
    /// Re-apply a put.
    Put {
        /// The key.
        key: &'a [u8],
        /// The value.
        value: &'a [u8],
    },
    /// Re-apply a delete.
    Delete {
        /// The key.
        key: &'a [u8],
    },
}

/// What [`Wal::open`] found and did while recovering.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Put/delete records replayed into the caller's store.
    pub records_replayed: u64,
    /// Put/delete records skipped because a checkpoint already covered
    /// them (their effects are in spilled segments).
    pub records_skipped: u64,
    /// Torn tail bytes truncated off the newest segment(s).
    pub truncated_bytes: u64,
    /// Segment files scanned.
    pub segments: usize,
}

/// What one [`Wal::checkpoint`] freed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSummary {
    /// Sealed segment files deleted.
    pub segments_deleted: u64,
    /// Bytes those files held.
    pub bytes_deleted: u64,
}

/// Point-in-time size/progress numbers, also published to the gauges.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Log bytes on disk across all shards (sealed + active segments).
    pub bytes: u64,
    /// Segment files across all shards.
    pub segments: usize,
    /// Highest LSN assigned on any shard.
    pub max_lsn: u64,
}

/// A sharded, group-committing write-ahead log. See the crate docs for
/// the format and protocol; see [`WalConfig`] for the knobs.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    shards: Vec<WalShard>,
    obs: WalObs,
}

impl Wal {
    /// Open (and recover) the log at `config.dir`.
    ///
    /// Existing segments are scanned front to back: the newest non-empty
    /// segment's torn tail — anything from the first bad frame on — is
    /// truncated, a bad frame anywhere *earlier* is reported as
    /// [`WalError::Corrupt`], and every put/delete past the last
    /// checkpoint mark whose generation is visible in the caller's
    /// manifest (`manifest_generation`) is handed to `apply` in order.
    /// Records at or below a visible mark are skipped: their effects
    /// were spilled before the marker was written, so replaying them
    /// would be redundant (the generation check is what makes replay
    /// idempotent against already-spilled data).
    pub fn open(
        config: WalConfig,
        obs: WalObs,
        manifest_generation: u64,
        mut apply: impl FnMut(ReplayOp<'_>),
    ) -> Result<(Wal, RecoveryReport)> {
        fs::create_dir_all(&config.dir)?;
        let shards = config.shards.max(1);
        let mut files: Vec<Vec<(u64, PathBuf)>> = vec![Vec::new(); shards];
        let mut max_shard_seen: Option<usize> = None;
        for entry in fs::read_dir(&config.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((shard, seq)) = parse_segment_name(name) else {
                continue;
            };
            max_shard_seen = Some(max_shard_seen.map_or(shard, |m| m.max(shard)));
            if shard >= shards {
                continue; // counted above; the mismatch checks below fire
            }
            files[shard].push((seq, entry.path()));
        }
        // The shard count lives in `wal.meta`, written before the first
        // segment: a shard whose files are all gone (crash mid-open, or
        // recovery swept its empty segments) recovers as empty rather
        // than bricking the log with a count mismatch. Directories from
        // before the meta file fall back to inferring the count from the
        // segment files, where every shard index must be present.
        match read_shard_meta(&config.dir)? {
            Some(on_disk) => {
                if on_disk != shards {
                    return Err(WalError::ShardCountMismatch {
                        on_disk,
                        configured: shards,
                    });
                }
            }
            None => {
                if let Some(max_shard) = max_shard_seen {
                    let on_disk = max_shard + 1;
                    if on_disk != shards {
                        return Err(WalError::ShardCountMismatch {
                            on_disk,
                            configured: shards,
                        });
                    }
                }
                write_shard_meta(&config.dir, shards)?;
            }
        }
        if let Some(max_shard) = max_shard_seen {
            if max_shard >= shards {
                // Stray segments above the recorded count: refuse rather
                // than silently dropping their records.
                return Err(WalError::ShardCountMismatch {
                    on_disk: max_shard + 1,
                    configured: shards,
                });
            }
        }

        let mut report = RecoveryReport::default();
        let mut shard_handles = Vec::with_capacity(shards);
        let mut removed_any = false;
        for (index, mut shard_files) in files.into_iter().enumerate() {
            shard_files.sort_by_key(|(seq, _)| *seq);
            let recovered = recover_shard(
                index,
                &shard_files,
                manifest_generation,
                &mut apply,
                &mut report,
            )?;
            removed_any |= recovered.removed_any;
            shard_handles.push(WalShard::open(
                index,
                &config.dir,
                config.durability,
                config.segment_bytes,
                obs.clone(),
                recovered.next_seq,
                recovered.max_lsn,
                recovered.mark,
                recovered.sealed,
            )?);
        }
        if removed_any {
            // Make recovery's empty-segment deletions durable so the same
            // sweep does not repeat (and lexical order stays clean) after
            // a power loss.
            sync_dir(&config.dir)?;
        }

        obs.records_replayed.add(report.records_replayed);
        obs.truncated_bytes.add(report.truncated_bytes);
        obs.trace(Event::WalRecovered {
            records_replayed: report.records_replayed,
            records_skipped: report.records_skipped,
            truncated_bytes: report.truncated_bytes,
            segments: report.segments,
        });
        let wal = Wal {
            dir: config.dir.clone(),
            shards: shard_handles,
            obs,
        };
        wal.stats(); // publish the gauges with the recovered sizes
        Ok((wal, report))
    }

    /// Number of shards (stable for the life of the directory).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Log a put and honor the configured durability before returning.
    /// Returns the record's LSN on its shard.
    pub fn append_put(&self, key: &[u8], value: &[u8]) -> Result<u64> {
        let ((), lsn) = self.append_put_with(key, value, || ())?;
        Ok(lsn)
    }

    /// Log a delete and honor the configured durability before returning.
    pub fn append_delete(&self, key: &[u8]) -> Result<u64> {
        let ((), lsn) = self.append_delete_with(key, || ((), true))?;
        // pbc-allow(panic): the closure unconditionally logs, so an LSN is always assigned
        Ok(lsn.expect("unconditional delete is always logged"))
    }

    /// Run `apply` and log a put as one atomic step under the key's
    /// shard lock, then honor the configured durability before
    /// returning.
    ///
    /// Callers that mirror the log into a store of their own (the tiered
    /// store's hot tier) must perform the store mutation inside `apply`:
    /// the closure runs under the same lock that assigns the record's
    /// LSN, so same-key operations hit the store in exactly their LSN
    /// order — which is replay order. Mutating outside the closure lets
    /// a concurrent same-key writer apply in one order but log in the
    /// other, and recovery would then contradict acknowledged pre-crash
    /// state.
    pub fn append_put_with<T>(
        &self,
        key: &[u8],
        value: &[u8],
        apply: impl FnOnce() -> T,
    ) -> Result<(T, u64)> {
        let shard = &self.shards[format::shard_of(key, self.shards.len())];
        let (result, lsn) = shard.append_with(
            || (apply(), true),
            |lsn| format::encode_put(lsn, key, value),
        )?;
        // pbc-allow(panic): the closure unconditionally logs, so an LSN is always assigned
        Ok((result, lsn.expect("put is always logged")))
    }

    /// Conditional twin of [`Wal::append_put_with`] for deletes: `apply`
    /// returns `(result, log)`, and the delete record is appended (and
    /// made durable per the configured level) only when `log` is true —
    /// so a delete that removed nothing costs no log record. Returns the
    /// LSN when one was assigned.
    pub fn append_delete_with<T>(
        &self,
        key: &[u8],
        apply: impl FnOnce() -> (T, bool),
    ) -> Result<(T, Option<u64>)> {
        let shard = &self.shards[format::shard_of(key, self.shards.len())];
        shard.append_with(apply, |lsn| format::encode_delete(lsn, key))
    }

    /// Snapshot each shard's highest assigned LSN. Because callers apply
    /// a write to their store *before* logging it, every record at or
    /// below these marks is already in the store — flushing the store and
    /// then checkpointing at these marks can never drop a write.
    pub fn capture_marks(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.mark()).collect()
    }

    /// Durably record that everything at or below `marks` (one per
    /// shard, from [`Wal::capture_marks`]) is persisted in the caller's
    /// store as of manifest `generation`, then delete every sealed
    /// segment the marks fully cover.
    pub fn checkpoint(&self, marks: &[u64], generation: u64) -> Result<CheckpointSummary> {
        assert_eq!(
            marks.len(),
            self.shards.len(),
            "one mark per shard, from capture_marks()"
        );
        let mut summary = CheckpointSummary::default();
        for (shard, &mark) in self.shards.iter().zip(marks) {
            for (path, bytes) in shard.checkpoint(mark, generation)? {
                fs::remove_file(&path)?;
                summary.segments_deleted += 1;
                summary.bytes_deleted += bytes;
            }
        }
        if summary.segments_deleted > 0 {
            // Make the unlinks durable. Resurrected covered segments are
            // harmless to correctness (recovery skips them by the marker)
            // but would silently regress the bounded-log guarantee.
            sync_dir(&self.dir)?;
        }
        self.obs.checkpoints.inc();
        self.obs.segments_deleted.add(summary.segments_deleted);
        self.obs.trace(Event::WalCheckpointed {
            generation,
            segments_deleted: summary.segments_deleted,
            bytes_deleted: summary.bytes_deleted,
        });
        self.stats();
        Ok(summary)
    }

    /// Maintenance tick: under [`crate::Durability::Periodic`], fsync
    /// shards whose interval has elapsed with dirty records. No-op
    /// otherwise.
    pub fn tick(&self) -> Result<()> {
        for shard in &self.shards {
            shard.tick()?;
        }
        Ok(())
    }

    /// Force every appended record durable, regardless of durability
    /// level (clean shutdown, tests).
    pub fn sync(&self) -> Result<()> {
        for shard in &self.shards {
            shard.sync()?;
        }
        Ok(())
    }

    /// Current size/progress numbers; also refreshes the
    /// `pbc_wal_bytes` / `pbc_wal_segments` / `pbc_wal_lsn` gauges.
    pub fn stats(&self) -> WalStats {
        let mut stats = WalStats::default();
        for shard in &self.shards {
            let (bytes, segments, max_lsn, _) = shard.snapshot();
            stats.bytes += bytes;
            stats.segments += segments;
            stats.max_lsn = stats.max_lsn.max(max_lsn);
        }
        self.obs.wal_bytes.set(stats.bytes);
        self.obs.wal_segments.set(stats.segments as u64);
        self.obs.wal_lsn.set(stats.max_lsn);
        stats
    }
}

struct RecoveredShard {
    next_seq: u64,
    max_lsn: u64,
    mark: u64,
    sealed: Vec<SealedSegment>,
    /// Recovery deleted at least one empty segment file (the caller
    /// fsyncs the directory once when any shard did).
    removed_any: bool,
}

/// Scan one shard's segments oldest-first: find the effective checkpoint
/// mark, truncate the newest segment's torn tail, replay everything past
/// the mark, and describe what survives as sealed segments.
fn recover_shard(
    index: usize,
    shard_files: &[(u64, PathBuf)],
    manifest_generation: u64,
    apply: &mut impl FnMut(ReplayOp<'_>),
    report: &mut RecoveryReport,
) -> Result<RecoveredShard> {
    let mut recovered = RecoveredShard {
        next_seq: shard_files.last().map_or(0, |(seq, _)| seq + 1),
        max_lsn: 0,
        mark: 0,
        sealed: Vec::new(),
        removed_any: false,
    };

    // A torn tail is only legal in the newest segment that holds any
    // bytes: rotation fsyncs the old tail before its successor is
    // created, so a sealed segment followed by a non-empty one can never
    // tear. Segments *after* the last non-empty one (a successor created
    // by rotation that never received a record before the crash) are
    // legitimately empty and do not disqualify the tear.
    let last_nonempty = shard_files
        .iter()
        .rposition(|(_, path)| fs::metadata(path).map(|m| m.len()).unwrap_or(0) > 0);

    // Pass 1: validate frames, find the best visible checkpoint mark,
    // truncate the torn tail. Buffers are kept for pass 2.
    let mut scanned: Vec<(u64, &Path, Vec<u8>, u64)> = Vec::new(); // (seq, path, buf, max_lsn)
    for (pos, (seq, path)) in shard_files.iter().enumerate() {
        let mut buf = fs::read(path)?;
        let mut offset = 0usize;
        let mut file_max_lsn = 0u64;
        loop {
            match format::decode_frame(&buf[offset..]) {
                DecodeOutcome::Frame { record, frame_len } => {
                    file_max_lsn = file_max_lsn.max(record.lsn());
                    if let Record::Checkpoint {
                        mark, generation, ..
                    } = record
                    {
                        // Only trust markers whose spill generation the
                        // manifest actually committed; a marker "from the
                        // future" (manifest rolled back) must not cause
                        // records to be skipped.
                        if generation <= manifest_generation {
                            recovered.mark = recovered.mark.max(mark);
                        }
                    }
                    offset += frame_len;
                }
                DecodeOutcome::Incomplete | DecodeOutcome::Corrupt => {
                    if offset == buf.len() {
                        break; // clean end of file
                    }
                    if last_nonempty != Some(pos) {
                        return Err(WalError::Corrupt {
                            context: format!(
                                "shard {index} segment {seq} has a bad frame at byte {offset} \
                                 but a newer segment holds records (sealed segments are fully \
                                 synced before a successor is created)"
                            ),
                        });
                    }
                    // Torn tail on the newest segment: drop it.
                    let torn = (buf.len() - offset) as u64;
                    report.truncated_bytes += torn;
                    let file = fs::OpenOptions::new().write(true).open(path)?;
                    file.set_len(offset as u64)?;
                    file.sync_data()?;
                    buf.truncate(offset);
                    break;
                }
            }
        }
        recovered.max_lsn = recovered.max_lsn.max(file_max_lsn);
        report.segments += 1;
        scanned.push((*seq, path, buf, file_max_lsn));
    }

    // Pass 2: replay puts/deletes past the mark, in order; keep non-empty
    // files as sealed segments and delete empty ones.
    for (seq, path, buf, file_max_lsn) in scanned {
        let mut offset = 0usize;
        while let DecodeOutcome::Frame { record, frame_len } = format::decode_frame(&buf[offset..])
        {
            offset += frame_len;
            match record {
                Record::Put { lsn, key, value } => {
                    if lsn > recovered.mark {
                        apply(ReplayOp::Put { key, value });
                        report.records_replayed += 1;
                    } else {
                        report.records_skipped += 1;
                    }
                }
                Record::Delete { lsn, key } => {
                    if lsn > recovered.mark {
                        apply(ReplayOp::Delete { key });
                        report.records_replayed += 1;
                    } else {
                        report.records_skipped += 1;
                    }
                }
                Record::Checkpoint { .. } => {}
            }
        }
        if buf.is_empty() {
            fs::remove_file(path)?;
            recovered.removed_any = true;
        } else {
            recovered.sealed.push(SealedSegment {
                seq,
                max_lsn: file_max_lsn,
                bytes: buf.len() as u64,
            });
        }
    }

    Ok(recovered)
}
