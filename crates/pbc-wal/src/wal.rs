//! The sharded log: open/recover, append, checkpoint, stats.

use std::fs;
use std::path::{Path, PathBuf};

use pbc_obs::Event;

use crate::config::WalConfig;
use crate::error::{Result, WalError};
use crate::format::{self, DecodeOutcome, Record};
use crate::obs::WalObs;
use crate::shard::{parse_segment_name, SealedSegment, WalShard};

/// A logical operation handed back to the caller during replay, in the
/// order it must be applied. Same-key operations always replay in their
/// original order (a key maps to one shard, and a shard replays in LSN
/// order).
#[derive(Debug)]
pub enum ReplayOp<'a> {
    /// Re-apply a put.
    Put {
        /// The key.
        key: &'a [u8],
        /// The value.
        value: &'a [u8],
    },
    /// Re-apply a delete.
    Delete {
        /// The key.
        key: &'a [u8],
    },
}

/// What [`Wal::open`] found and did while recovering.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Put/delete records replayed into the caller's store.
    pub records_replayed: u64,
    /// Put/delete records skipped because a checkpoint already covered
    /// them (their effects are in spilled segments).
    pub records_skipped: u64,
    /// Torn tail bytes truncated off the newest segment(s).
    pub truncated_bytes: u64,
    /// Segment files scanned.
    pub segments: usize,
}

/// What one [`Wal::checkpoint`] freed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSummary {
    /// Sealed segment files deleted.
    pub segments_deleted: u64,
    /// Bytes those files held.
    pub bytes_deleted: u64,
}

/// Point-in-time size/progress numbers, also published to the gauges.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Log bytes on disk across all shards (sealed + active segments).
    pub bytes: u64,
    /// Segment files across all shards.
    pub segments: usize,
    /// Highest LSN assigned on any shard.
    pub max_lsn: u64,
}

/// A sharded, group-committing write-ahead log. See the crate docs for
/// the format and protocol; see [`WalConfig`] for the knobs.
#[derive(Debug)]
pub struct Wal {
    shards: Vec<WalShard>,
    obs: WalObs,
}

impl Wal {
    /// Open (and recover) the log at `config.dir`.
    ///
    /// Existing segments are scanned front to back: the newest segment's
    /// torn tail — anything from the first bad frame on — is truncated,
    /// a bad frame anywhere *earlier* is reported as
    /// [`WalError::Corrupt`], and every put/delete past the last
    /// checkpoint mark whose generation is visible in the caller's
    /// manifest (`manifest_generation`) is handed to `apply` in order.
    /// Records at or below a visible mark are skipped: their effects
    /// were spilled before the marker was written, so replaying them
    /// would be redundant (the generation check is what makes replay
    /// idempotent against already-spilled data).
    pub fn open(
        config: WalConfig,
        obs: WalObs,
        manifest_generation: u64,
        mut apply: impl FnMut(ReplayOp<'_>),
    ) -> Result<(Wal, RecoveryReport)> {
        fs::create_dir_all(&config.dir)?;
        let shards = config.shards.max(1);
        let mut files: Vec<Vec<(u64, PathBuf)>> = vec![Vec::new(); shards];
        let mut max_shard_seen: Option<usize> = None;
        for entry in fs::read_dir(&config.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((shard, seq)) = parse_segment_name(name) else {
                continue;
            };
            max_shard_seen = Some(max_shard_seen.map_or(shard, |m| m.max(shard)));
            if shard >= shards {
                continue; // counted above; the mismatch check below fires
            }
            files[shard].push((seq, entry.path()));
        }
        if let Some(max_shard) = max_shard_seen {
            let on_disk = max_shard + 1;
            if on_disk != shards {
                return Err(WalError::ShardCountMismatch {
                    on_disk,
                    configured: shards,
                });
            }
        }

        let mut report = RecoveryReport::default();
        let mut shard_handles = Vec::with_capacity(shards);
        for (index, mut shard_files) in files.into_iter().enumerate() {
            shard_files.sort_by_key(|(seq, _)| *seq);
            let recovered = recover_shard(
                index,
                &shard_files,
                manifest_generation,
                &mut apply,
                &mut report,
            )?;
            shard_handles.push(WalShard::open(
                index,
                &config.dir,
                config.durability,
                config.segment_bytes,
                obs.clone(),
                recovered.next_seq,
                recovered.max_lsn,
                recovered.mark,
                recovered.sealed,
            )?);
        }

        obs.records_replayed.add(report.records_replayed);
        obs.truncated_bytes.add(report.truncated_bytes);
        obs.trace(Event::WalRecovered {
            records_replayed: report.records_replayed,
            records_skipped: report.records_skipped,
            truncated_bytes: report.truncated_bytes,
            segments: report.segments,
        });
        let wal = Wal {
            shards: shard_handles,
            obs,
        };
        wal.stats(); // publish the gauges with the recovered sizes
        Ok((wal, report))
    }

    /// Number of shards (stable for the life of the directory).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Log a put and honor the configured durability before returning.
    /// Returns the record's LSN on its shard.
    pub fn append_put(&self, key: &[u8], value: &[u8]) -> Result<u64> {
        let shard = &self.shards[format::shard_of(key, self.shards.len())];
        shard.append_with(|lsn| format::encode_put(lsn, key, value))
    }

    /// Log a delete and honor the configured durability before returning.
    pub fn append_delete(&self, key: &[u8]) -> Result<u64> {
        let shard = &self.shards[format::shard_of(key, self.shards.len())];
        shard.append_with(|lsn| format::encode_delete(lsn, key))
    }

    /// Snapshot each shard's highest assigned LSN. Because callers apply
    /// a write to their store *before* logging it, every record at or
    /// below these marks is already in the store — flushing the store and
    /// then checkpointing at these marks can never drop a write.
    pub fn capture_marks(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.mark()).collect()
    }

    /// Durably record that everything at or below `marks` (one per
    /// shard, from [`Wal::capture_marks`]) is persisted in the caller's
    /// store as of manifest `generation`, then delete every sealed
    /// segment the marks fully cover.
    pub fn checkpoint(&self, marks: &[u64], generation: u64) -> Result<CheckpointSummary> {
        assert_eq!(
            marks.len(),
            self.shards.len(),
            "one mark per shard, from capture_marks()"
        );
        let mut summary = CheckpointSummary::default();
        for (shard, &mark) in self.shards.iter().zip(marks) {
            for (path, bytes) in shard.checkpoint(mark, generation)? {
                fs::remove_file(&path)?;
                summary.segments_deleted += 1;
                summary.bytes_deleted += bytes;
            }
        }
        self.obs.checkpoints.inc();
        self.obs.segments_deleted.add(summary.segments_deleted);
        self.obs.trace(Event::WalCheckpointed {
            generation,
            segments_deleted: summary.segments_deleted,
            bytes_deleted: summary.bytes_deleted,
        });
        self.stats();
        Ok(summary)
    }

    /// Maintenance tick: under [`crate::Durability::Periodic`], fsync
    /// shards whose interval has elapsed with dirty records. No-op
    /// otherwise.
    pub fn tick(&self) -> Result<()> {
        for shard in &self.shards {
            shard.tick()?;
        }
        Ok(())
    }

    /// Force every appended record durable, regardless of durability
    /// level (clean shutdown, tests).
    pub fn sync(&self) -> Result<()> {
        for shard in &self.shards {
            shard.sync()?;
        }
        Ok(())
    }

    /// Current size/progress numbers; also refreshes the
    /// `pbc_wal_bytes` / `pbc_wal_segments` / `pbc_wal_lsn` gauges.
    pub fn stats(&self) -> WalStats {
        let mut stats = WalStats::default();
        for shard in &self.shards {
            let (bytes, segments, max_lsn, _) = shard.snapshot();
            stats.bytes += bytes;
            stats.segments += segments;
            stats.max_lsn = stats.max_lsn.max(max_lsn);
        }
        self.obs.wal_bytes.set(stats.bytes);
        self.obs.wal_segments.set(stats.segments as u64);
        self.obs.wal_lsn.set(stats.max_lsn);
        stats
    }
}

struct RecoveredShard {
    next_seq: u64,
    max_lsn: u64,
    mark: u64,
    sealed: Vec<SealedSegment>,
}

/// Scan one shard's segments oldest-first: find the effective checkpoint
/// mark, truncate the newest segment's torn tail, replay everything past
/// the mark, and describe what survives as sealed segments.
fn recover_shard(
    index: usize,
    shard_files: &[(u64, PathBuf)],
    manifest_generation: u64,
    apply: &mut impl FnMut(ReplayOp<'_>),
    report: &mut RecoveryReport,
) -> Result<RecoveredShard> {
    let mut recovered = RecoveredShard {
        next_seq: shard_files.last().map_or(0, |(seq, _)| seq + 1),
        max_lsn: 0,
        mark: 0,
        sealed: Vec::new(),
    };

    // Pass 1: validate frames, find the best visible checkpoint mark,
    // truncate the torn tail. Buffers are kept for pass 2.
    let mut scanned: Vec<(u64, &Path, Vec<u8>, u64)> = Vec::new(); // (seq, path, buf, max_lsn)
    let last = shard_files.len().saturating_sub(1);
    for (pos, (seq, path)) in shard_files.iter().enumerate() {
        let mut buf = fs::read(path)?;
        let mut offset = 0usize;
        let mut file_max_lsn = 0u64;
        loop {
            match format::decode_frame(&buf[offset..]) {
                DecodeOutcome::Frame { record, frame_len } => {
                    file_max_lsn = file_max_lsn.max(record.lsn());
                    if let Record::Checkpoint {
                        mark, generation, ..
                    } = record
                    {
                        // Only trust markers whose spill generation the
                        // manifest actually committed; a marker "from the
                        // future" (manifest rolled back) must not cause
                        // records to be skipped.
                        if generation <= manifest_generation {
                            recovered.mark = recovered.mark.max(mark);
                        }
                    }
                    offset += frame_len;
                }
                DecodeOutcome::Incomplete | DecodeOutcome::Corrupt => {
                    if offset == buf.len() {
                        break; // clean end of file
                    }
                    if pos != last {
                        return Err(WalError::Corrupt {
                            context: format!(
                                "shard {index} segment {seq} has a bad frame at byte {offset} \
                                 but is not the newest segment (sealed segments are fully synced)"
                            ),
                        });
                    }
                    // Torn tail on the newest segment: drop it.
                    let torn = (buf.len() - offset) as u64;
                    report.truncated_bytes += torn;
                    let file = fs::OpenOptions::new().write(true).open(path)?;
                    file.set_len(offset as u64)?;
                    file.sync_data()?;
                    buf.truncate(offset);
                    break;
                }
            }
        }
        recovered.max_lsn = recovered.max_lsn.max(file_max_lsn);
        report.segments += 1;
        scanned.push((*seq, path, buf, file_max_lsn));
    }

    // Pass 2: replay puts/deletes past the mark, in order; keep non-empty
    // files as sealed segments and delete empty ones.
    for (seq, path, buf, file_max_lsn) in scanned {
        let mut offset = 0usize;
        while let DecodeOutcome::Frame { record, frame_len } = format::decode_frame(&buf[offset..])
        {
            offset += frame_len;
            match record {
                Record::Put { lsn, key, value } => {
                    if lsn > recovered.mark {
                        apply(ReplayOp::Put { key, value });
                        report.records_replayed += 1;
                    } else {
                        report.records_skipped += 1;
                    }
                }
                Record::Delete { lsn, key } => {
                    if lsn > recovered.mark {
                        apply(ReplayOp::Delete { key });
                        report.records_replayed += 1;
                    } else {
                        report.records_skipped += 1;
                    }
                }
                Record::Checkpoint { .. } => {}
            }
        }
        if buf.is_empty() {
            fs::remove_file(path)?;
        } else {
            recovered.sealed.push(SealedSegment {
                seq,
                max_lsn: file_max_lsn,
                bytes: buf.len() as u64,
            });
        }
    }

    Ok(recovered)
}
