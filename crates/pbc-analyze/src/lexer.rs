//! A minimal Rust lexer: just enough to walk real token boundaries.
//!
//! The passes only need identifiers, punctuation, and string-literal
//! values, with comments and literals reliably *excluded* from code
//! scans (so `"unwrap()"` inside a string or a doc comment can never
//! trip the panic-path audit). Comments are collected separately —
//! they carry the `pbc-allow(...)`, `lock-order:`, and `lock-wrapper:`
//! annotations.

/// What a token is. Literal *contents* are only retained for strings
/// (the obs-name pass reads registered metric names out of them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_` and raw `r#ident`s).
    Ident,
    /// A single punctuation character (`.`, `(`, `!`, ...).
    Punct,
    /// String literal (`"..."`, `r"..."`, `b"..."`, `r#"..."#`); the
    /// token text is the raw literal body, escapes unprocessed.
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Identifier/punct text, or the string literal's body.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// One comment (line or block) with the line it starts on. Doc
/// comments are included; the text excludes the comment markers.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body without `//`/`/*` markers.
    pub text: String,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Unterminated literals are tolerated (the rest of
/// the file is swallowed into the literal) — the checker must never
/// panic on weird input, it reports on what it could read.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    macro_rules! bump_lines {
        ($range:expr) => {
            line += b[$range].iter().filter(|&&c| c == b'\n').count() as u32
        };
    }
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].trim_start_matches(['/', '!']).to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..end].trim_start_matches(['*', '!']).to_string(),
                });
            }
            b'"' => {
                let (end, text) = cooked_string(b, src, i);
                bump_lines!(i..end);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                i = end;
            }
            b'b' | b'r' if string_prefix(b, i).is_some() => {
                let (delim, raw) = string_prefix(b, i).unwrap_or((i, false));
                let (end, text) = if raw {
                    raw_string(b, src, delim)
                } else {
                    cooked_string(b, src, delim)
                };
                bump_lines!(i..end);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = b.get(i + 1).copied().unwrap_or(0);
                let after = b.get(i + 2).copied().unwrap_or(0);
                if (next.is_ascii_alphabetic() || next == b'_') && after != b'\'' {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    let mut j = i + 1;
                    while j < b.len() && b[j] != b'\'' {
                        j += if b[j] == b'\\' { 2 } else { 1 };
                    }
                    let end = (j + 1).min(b.len());
                    bump_lines!(i..end);
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    i = end;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// If position `i` starts a prefixed string literal (`b"`, `r"`,
/// `br"`, `r#"`, `br#"`...), the index of the delimiter — the quote
/// for cooked strings, the first `#` (or the quote) for raw strings —
/// and whether the string is raw. `r#ident` (raw identifier) and plain
/// identifiers return `None`.
fn string_prefix(b: &[u8], i: usize) -> Option<(usize, bool)> {
    let mut j = i;
    let mut saw_r = false;
    for _ in 0..2 {
        match b.get(j) {
            Some(b'b') if !saw_r => j += 1,
            Some(b'r') => {
                saw_r = true;
                j += 1;
            }
            _ => break,
        }
    }
    match b.get(j) {
        Some(b'"') => Some((j, saw_r)),
        Some(b'#') if saw_r => {
            // `r#...#"` raw string vs `r#ident`: raw strings have only
            // `#`s between the `r` and the quote.
            let mut k = j;
            while b.get(k) == Some(&b'#') {
                k += 1;
            }
            (b.get(k) == Some(&b'"')).then_some((j, true))
        }
        _ => None,
    }
}

/// Lex a cooked (escaped) string starting at the opening quote.
/// Returns (index past the closing quote, body text).
fn cooked_string(b: &[u8], src: &str, quote: usize) -> (usize, String) {
    let mut j = quote + 1;
    while j < b.len() && b[j] != b'"' {
        j += if b[j] == b'\\' { 2 } else { 1 };
    }
    let end = (j + 1).min(b.len());
    (end, src[quote + 1..j.min(b.len())].to_string())
}

/// Lex a raw string starting at the first `#` or the quote. Returns
/// (index past the closing delimiter, body text).
fn raw_string(b: &[u8], src: &str, mut j: usize) -> (usize, String) {
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(b.get(j), Some(&b'"'));
    let body_start = j + 1;
    let mut k = body_start;
    'outer: while k < b.len() {
        if b[k] == b'"' {
            let mut h = 0;
            while h < hashes {
                if b.get(k + 1 + h) != Some(&b'#') {
                    k += 1;
                    continue 'outer;
                }
                h += 1;
            }
            return (k + 1 + hashes, src[body_start..k].to_string());
        }
        k += 1;
    }
    (b.len(), src[body_start.min(b.len())..].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // unwrap() in a comment
            /* unsafe in a block
               comment */
            let x = "unwrap() unsafe"; // trailing
            let y = r#"panic!("still a string")"#;
            let z = b"unsafe";
        "##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "unwrap" || i == "unsafe" || i == "panic"));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 3);
        assert!(lexed.comments[0].text.contains("unwrap()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }").tokens;
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let ids = idents("let r#type = 1;");
        assert!(ids.iter().any(|i| i == "type"));
    }

    #[test]
    fn string_values_and_lines_are_preserved() {
        let lexed = lex("let a = 1;\nlet m = counter(\"pbc_x_total\");\n");
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("string token");
        assert_eq!(s.text, "pbc_x_total");
        assert_eq!(s.line, 2);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let lexed = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(idents("/* a /* b */ c */ fn f() {}").contains(&"fn".to_string()));
    }
}
