//! Pass 4 — panic-path audit and dropped-`io::Result` audit.
//!
//! Production code (not tests, benches, or examples) must not reach a
//! panic on recoverable paths: `unwrap()` / `expect(...)` /
//! `panic!` / `todo!` / `unimplemented!` are flagged unless a
//! `// pbc-allow(panic): <reason>` justifies them. `unreachable!` is
//! deliberately exempt — it asserts impossibility rather than handling
//! failure, and converting it to an error would invent an unreachable
//! error path.
//!
//! The dropped-result audit flags `let _ = <expr>` where the
//! expression involves a filesystem call whose `io::Result` carries a
//! durability or correctness signal (the PR 7 "fsyncgate" class: a
//! dropped `sync_all` once turned a failed fsync into a silent ack).

use crate::diag::{Diagnostic, Lint};
use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// Methods whose `Result` must not be discarded via `let _ =`.
const IO_RESULT_CALLS: &[&str] = &[
    "sync_all",
    "sync_data",
    "sync_dir",
    "fsync",
    "flush",
    "write_all",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "create_dir",
    "create_dir_all",
    "rename",
    "set_len",
    "persist",
];

/// Run both audits over one production source file.
pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test_code(t.line) {
            continue;
        }
        match t.text.as_str() {
            // `.unwrap()` — method position only.
            "unwrap"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
                    && toks.get(i + 2).is_some_and(|a| a.is_punct(')')) =>
            {
                flag(
                    file,
                    t.line,
                    "`unwrap()` in production code; return a typed error (or justify with `// pbc-allow(panic): <reason>`)",
                    diags,
                );
            }
            // `.expect(...)` — method position only.
            "expect"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|a| a.is_punct('(')) =>
            {
                flag(
                    file,
                    t.line,
                    "`expect()` in production code; return a typed error (or justify with `// pbc-allow(panic): <reason>`)",
                    diags,
                );
            }
            // `panic!` / `todo!` / `unimplemented!` macro invocations.
            "panic" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|a| a.is_punct('!'))
                    && !toks.get(i.wrapping_sub(1)).is_some_and(|a| a.is_punct('.')) =>
            {
                flag(
                    file,
                    t.line,
                    &format!(
                        "`{}!` in production code; return a typed error (or justify with `// pbc-allow(panic): <reason>`)",
                        t.text
                    ),
                    diags,
                );
            }
            // `let _ = <expr involving an io::Result call>;`
            "let"
                if toks.get(i + 1).is_some_and(|a| a.is_ident("_"))
                    && toks.get(i + 2).is_some_and(|a| a.is_punct('=')) =>
            {
                let mut j = i + 3;
                let mut depth = 0i32;
                let mut culprit: Option<String> = None;
                while let Some(tok) = toks.get(j) {
                    if tok.is_punct('(') || tok.is_punct('{') || tok.is_punct('[') {
                        depth += 1;
                    } else if tok.is_punct(')') || tok.is_punct('}') || tok.is_punct(']') {
                        depth -= 1;
                    } else if tok.is_punct(';') && depth <= 0 {
                        break;
                    } else if tok.kind == TokKind::Ident
                        && culprit.is_none()
                        && IO_RESULT_CALLS.contains(&tok.text.as_str())
                        && toks.get(j + 1).is_some_and(|a| a.is_punct('('))
                    {
                        culprit = Some(tok.text.clone());
                    }
                    j += 1;
                }
                if let Some(call) = culprit {
                    if !file.suppressed(Lint::DropResult, t.line) {
                        diags.push(Diagnostic::new(
                            Lint::DropResult,
                            &file.rel,
                            t.line,
                            format!(
                                "`let _ =` discards the io::Result of `{call}` (fsyncgate class); handle it, propagate it, or justify with `// pbc-allow(drop-result): <reason>`"
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
}

fn flag(file: &SourceFile, line: u32, message: &str, diags: &mut Vec<Diagnostic>) {
    if !file.suppressed(Lint::Panic, line) {
        diags.push(Diagnostic::new(Lint::Panic, &file.rel, line, message));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::collect_suppressions;
    use std::path::PathBuf;

    fn check_src(src: &str) -> Vec<Diagnostic> {
        let mut f = SourceFile::new(
            PathBuf::from("x.rs"),
            "crates/x/src/io.rs".into(),
            "x".into(),
            src,
        );
        let mut diags = Vec::new();
        collect_suppressions(&mut f, &mut diags);
        check(&f, &mut diags);
        diags
    }

    #[test]
    fn unwrap_expect_and_panic_are_flagged_in_prod() {
        let diags =
            check_src("fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n    panic!(\"no\");\n}\n");
        assert_eq!(diags.len(), 3, "{diags:?}");
    }

    #[test]
    fn unwrap_or_variants_and_unreachable_are_not_flagged() {
        let diags = check_src(
            "fn f() {\n    x.unwrap_or(0);\n    x.unwrap_or_else(|| 0);\n    x.unwrap_or_default();\n    unreachable!(\"loop returns\");\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dropped_sync_result_is_flagged_but_fmt_writes_are_not() {
        let diags = check_src(
            "fn f(file: &File, out: &mut String) {\n    let _ = file.sync_all();\n    let _ = writeln!(out, \"ok\");\n}\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, Lint::DropResult);
        assert!(diags[0].message.contains("sync_all"));
    }

    #[test]
    fn suppressed_sites_pass() {
        let diags = check_src(
            "fn f() {\n    // pbc-allow(panic): poisoned lock means a writer already panicked\n    m.lock().unwrap();\n    // pbc-allow(drop-result): best-effort cleanup of debris\n    let _ = fs::remove_file(p);\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn field_access_named_panic_is_not_a_macro() {
        let diags = check_src("fn f() { let x = stats.panic; g(x); }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
