//! Pass 3 — lock-order analysis.
//!
//! Extracts every lock acquisition site (`.lock()` / `.read()` /
//! `.write()` with no arguments, plus annotated wrapper methods) per
//! function in the configured crates, tracks which guards are still
//! held when another lock is taken (intra-procedurally: let-bound
//! guards live to the end of their block or an explicit `drop`;
//! un-bound temporaries live to the end of their statement, or through
//! the following block for `if`/`while`/`match`/`for` condition
//! temporaries), and checks the resulting nested-acquisition graph
//! against the declared partial order.
//!
//! Annotations (in `//` comments anywhere in the configured crates):
//!
//! * `lock-order: a < b < c` — declares `a` may be held while taking
//!   `b`, and `b` while taking `c`. Ids are `<file-stem>.<field>`
//!   (e.g. `store.commit_lock`), optionally `<crate>/`-qualified for
//!   cross-crate declarations; unqualified ids bind to the crate the
//!   annotation lives in.
//! * `lock-wrapper: method = <lock-id>` — `self.method()` in that
//!   crate acquires `<lock-id>` (for helpers like pbc-wal's
//!   `WalShard::lock`).
//!
//! Failures: a cycle anywhere in declared ∪ observed edges (potential
//! deadlock), an observed nesting that contradicts or is missing from
//! the declared order, nested re-acquisition of the same lock name,
//! and acquisitions whose lock cannot be named (fix with a
//! `lock-wrapper` annotation or suppress).

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Diagnostic, Lint};
use crate::lexer::{TokKind, Token};
use crate::scan::SourceFile;

/// Collected state across every scanned file.
#[derive(Debug, Default)]
pub struct LockOrder {
    /// Declared `a < b` pairs with their annotation site.
    declared: Vec<(String, String, String, u32)>,
    /// Observed nested acquisitions: (held, acquired, file, line).
    observed: Vec<(String, String, String, u32)>,
    /// `(crate, method) -> lock id` wrapper table.
    wrappers: BTreeMap<(String, String), String>,
}

/// A guard currently held while scanning a function body.
#[derive(Debug)]
struct Guard {
    id: String,
    /// Variable name for let-bound guards (releasable via `drop`).
    var: Option<String>,
    /// Block depth the guard is tied to; released when it closes.
    depth: i32,
    /// Statement-scoped temporary: also released at the next `;` at
    /// its depth.
    stmt_temp: bool,
    /// Condition temporary awaiting its block (`if`/`match`/...):
    /// adopts the next opened block's depth.
    pending_block: bool,
}

/// What the current statement's prefix looked like.
#[derive(Debug, Clone, Default)]
struct StmtCtx {
    /// `let [mut] NAME =` binding target.
    binding: Option<String>,
    /// Statement starts with `if`/`while`/`match`/`for`/`else`.
    condition_like: bool,
}

impl LockOrder {
    /// Parse `lock-order:` / `lock-wrapper:` annotations from a file's
    /// comments. Runs for every file of the configured crates.
    pub fn collect_annotations(&mut self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        for comment in &file.comments {
            let text = comment.text.trim();
            if let Some(spec) = text.strip_prefix("lock-order:") {
                let ids: Vec<String> = spec.split('<').map(|s| s.trim().to_string()).collect();
                if ids.len() < 2 || ids.iter().any(|i| i.is_empty() || i.contains(' ')) {
                    diags.push(Diagnostic::new(
                        Lint::Suppression,
                        &file.rel,
                        comment.line,
                        "malformed lock-order annotation: expected `lock-order: a < b [< c]`",
                    ));
                    continue;
                }
                for pair in ids.windows(2) {
                    self.declared.push((
                        qualify(&pair[0], &file.crate_name),
                        qualify(&pair[1], &file.crate_name),
                        file.rel.clone(),
                        comment.line,
                    ));
                }
            } else if let Some(spec) = text.strip_prefix("lock-wrapper:") {
                let Some((method, id)) = spec.split_once('=') else {
                    diags.push(Diagnostic::new(
                        Lint::Suppression,
                        &file.rel,
                        comment.line,
                        "malformed lock-wrapper annotation: expected `lock-wrapper: method = <lock-id>`",
                    ));
                    continue;
                };
                self.wrappers.insert(
                    (file.crate_name.clone(), method.trim().to_string()),
                    qualify(id.trim(), &file.crate_name),
                );
            }
        }
    }

    /// Scan one file's functions for nested acquisitions.
    pub fn scan_file(&mut self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        let stem = file
            .path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("file")
            .to_string();
        let toks = &file.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
                // Find the body's opening brace (or `;` for a bodyless
                // trait signature).
                let mut j = i + 2;
                while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('{') {
                    let end = self.scan_function(file, &stem, j, diags);
                    i = end;
                    continue;
                }
                i = j;
            }
            i += 1;
        }
    }

    /// Scan one function body starting at its `{`; returns the index
    /// just past the matching `}`.
    fn scan_function(
        &mut self,
        file: &SourceFile,
        stem: &str,
        open: usize,
        diags: &mut Vec<Diagnostic>,
    ) -> usize {
        let toks = &file.tokens;
        let mut depth = 0i32;
        let mut held: Vec<Guard> = Vec::new();
        let mut ctx_stack: Vec<StmtCtx> = vec![StmtCtx::default()];
        let mut stmt_start = true;
        let mut i = open;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
                // Condition temporaries adopt this block: release them
                // when it closes.
                for g in held.iter_mut().filter(|g| g.pending_block) {
                    g.pending_block = false;
                    g.stmt_temp = false;
                    g.depth = depth;
                }
                ctx_stack.push(StmtCtx::default());
                stmt_start = true;
                i += 1;
                continue;
            }
            if t.is_punct('}') {
                held.retain(|g| g.depth < depth || g.pending_block);
                ctx_stack.pop();
                depth -= 1;
                stmt_start = true;
                if depth == 0 {
                    return i + 1;
                }
                i += 1;
                continue;
            }
            if t.is_punct(';') {
                held.retain(|g| !(g.stmt_temp && g.depth == depth && !g.pending_block));
                stmt_start = true;
                i += 1;
                continue;
            }
            if stmt_start && t.kind == TokKind::Ident {
                stmt_start = false;
                let ctx = self.statement_prefix(toks, i, &mut held);
                if let Some(slot) = ctx_stack.last_mut() {
                    *slot = ctx;
                }
            } else if stmt_start && !t.is_punct('#') {
                stmt_start = false;
                if let Some(slot) = ctx_stack.last_mut() {
                    *slot = StmtCtx::default();
                }
            }
            if let Some((id_or_err, line)) = self.acquisition_at(file, stem, i) {
                match id_or_err {
                    Ok(id) => {
                        let suppressed =
                            file.suppressed(Lint::LockOrder, line) || file.in_test_code(line);
                        for g in &held {
                            if g.id == id && !suppressed {
                                diags.push(Diagnostic::new(
                                    Lint::LockOrder,
                                    &file.rel,
                                    line,
                                    format!(
                                        "nested re-acquisition of `{id}` while a guard for it is already held (self-deadlock for exclusive locks)"
                                    ),
                                ));
                            } else if g.id != id && !suppressed {
                                self.observed.push((
                                    g.id.clone(),
                                    id.clone(),
                                    file.rel.clone(),
                                    line,
                                ));
                            }
                        }
                        let ctx = ctx_stack.last().cloned().unwrap_or_default();
                        held.push(Guard {
                            id,
                            var: ctx.binding.clone(),
                            depth,
                            stmt_temp: ctx.binding.is_none(),
                            pending_block: ctx.binding.is_none() && ctx.condition_like,
                        });
                    }
                    Err(method) => {
                        if !file.suppressed(Lint::LockOrder, line) && !file.in_test_code(line) {
                            diags.push(Diagnostic::new(
                                Lint::LockOrder,
                                &file.rel,
                                line,
                                format!(
                                    "cannot name the lock behind `.{method}()`; add `// lock-wrapper: {method} = <file>.<field>` or suppress with pbc-allow(lock-order)"
                                ),
                            ));
                        }
                    }
                }
                i += 3; // skip past `name ( )` / `name (`
                continue;
            }
            // `drop(var)` releases a let-bound guard early.
            if t.is_ident("drop")
                && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
                && toks.get(i + 2).is_some_and(|a| a.kind == TokKind::Ident)
                && toks.get(i + 3).is_some_and(|a| a.is_punct(')'))
            {
                let var = &toks[i + 2].text;
                held.retain(|g| g.var.as_deref() != Some(var));
            }
            i += 1;
        }
        toks.len()
    }

    /// Inspect a statement's first tokens: `let [mut] NAME =` bindings,
    /// condition-like openers, and `NAME = ...` reassignments (which
    /// release the previous guard bound to NAME).
    fn statement_prefix(&self, toks: &[Token], i: usize, held: &mut Vec<Guard>) -> StmtCtx {
        let mut ctx = StmtCtx::default();
        let first = &toks[i].text;
        if matches!(first.as_str(), "if" | "while" | "match" | "for" | "else") {
            ctx.condition_like = true;
            return ctx;
        }
        if first == "let" {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                && toks
                    .get(j + 1)
                    .is_some_and(|t| t.is_punct('=') || t.is_punct(':'))
            {
                ctx.binding = Some(toks[j].text.clone());
            }
            return ctx;
        }
        // `NAME = ...` (not `==`): the old guard bound to NAME drops.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('='))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            held.retain(|g| g.var.as_deref() != Some(first.as_str()));
            ctx.binding = Some(first.clone());
        }
        ctx
    }

    /// If token `i` is a lock-acquiring method name in call position,
    /// the resolved lock id (or the method name when unnameable) and
    /// the line.
    #[allow(clippy::type_complexity)]
    fn acquisition_at(
        &self,
        file: &SourceFile,
        stem: &str,
        i: usize,
    ) -> Option<(Result<String, String>, u32)> {
        let toks = &file.tokens;
        let t = &toks[i];
        if t.kind != TokKind::Ident || i == 0 || !toks[i - 1].is_punct('.') {
            return None;
        }
        // Zero-argument call: `.name()`.
        if !(toks.get(i + 1).is_some_and(|a| a.is_punct('('))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(')')))
        {
            return None;
        }
        let method = t.text.as_str();
        let is_primitive = matches!(method, "lock" | "read" | "write");
        let wrapper = self
            .wrappers
            .get(&(file.crate_name.clone(), method.to_string()));
        if !is_primitive && wrapper.is_none() {
            return None;
        }
        // Receiver: the identifier before the `.`.
        let recv = toks.get(i.wrapping_sub(2));
        match recv {
            Some(r) if r.kind == TokKind::Ident && r.text != "self" => Some((
                Ok(format!("{}/{}.{}", file.crate_name, stem, r.text)),
                t.line,
            )),
            _ => match wrapper {
                Some(id) => Some((Ok(id.clone()), t.line)),
                None => Some((Err(method.to_string()), t.line)),
            },
        }
    }

    /// Final checks: cycles across declared ∪ observed, observed
    /// nestings missing from (or contradicting) the declared order.
    pub fn finish(&self, diags: &mut Vec<Diagnostic>) {
        // Declared reachability (transitive closure).
        let mut nodes: BTreeSet<String> = BTreeSet::new();
        for (a, b, _, _) in &self.declared {
            nodes.insert(a.clone());
            nodes.insert(b.clone());
        }
        for (a, b, _, _) in &self.observed {
            nodes.insert(a.clone());
            nodes.insert(b.clone());
        }
        let declared_edges: BTreeSet<(String, String)> = self
            .declared
            .iter()
            .map(|(a, b, _, _)| (a.clone(), b.clone()))
            .collect();
        let reach = transitive_closure(&nodes, &declared_edges);

        for (held, acquired, file, line) in &self.observed {
            if reach.contains(&(held.clone(), acquired.clone())) {
                continue;
            }
            if reach.contains(&(acquired.clone(), held.clone())) {
                diags.push(Diagnostic::new(
                    Lint::LockOrder,
                    file,
                    *line,
                    format!(
                        "lock `{acquired}` taken while `{held}` is held, but the declared order requires `{acquired}` before `{held}` (deadlock risk)"
                    ),
                ));
            } else {
                diags.push(Diagnostic::new(
                    Lint::LockOrder,
                    file,
                    *line,
                    format!(
                        "undeclared lock nesting: `{acquired}` taken while `{held}` is held; declare it with `// lock-order: {held} < {acquired}` near the lock fields"
                    ),
                ));
            }
        }

        // Any cycle in the union graph is a potential deadlock even if
        // each edge looked locally fine.
        let mut union_edges = declared_edges;
        for (a, b, _, _) in &self.observed {
            union_edges.insert((a.clone(), b.clone()));
        }
        if let Some(cycle) = find_cycle(&nodes, &union_edges) {
            let (file, line) = self
                .declared
                .iter()
                .find(|(a, b, _, _)| cycle_has_edge(&cycle, a, b))
                .map(|(_, _, f, l)| (f.clone(), *l))
                .or_else(|| {
                    self.observed
                        .iter()
                        .find(|(a, b, _, _)| cycle_has_edge(&cycle, a, b))
                        .map(|(_, _, f, l)| (f.clone(), *l))
                })
                .unwrap_or_else(|| ("analyze.toml".to_string(), 0));
            diags.push(Diagnostic::new(
                Lint::LockOrder,
                &file,
                line,
                format!(
                    "lock-order cycle (potential deadlock): {}",
                    cycle.join(" -> ")
                ),
            ));
        }
    }
}

/// `<crate>/<id>` if unqualified, unchanged otherwise.
fn qualify(id: &str, crate_name: &str) -> String {
    if id.contains('/') {
        id.to_string()
    } else {
        format!("{crate_name}/{id}")
    }
}

/// All (a, b) pairs where b is reachable from a via `edges`.
fn transitive_closure(
    nodes: &BTreeSet<String>,
    edges: &BTreeSet<(String, String)>,
) -> BTreeSet<(String, String)> {
    let idx: BTreeMap<&String, usize> = nodes.iter().enumerate().map(|(n, s)| (s, n)).collect();
    let n = nodes.len();
    let mut reach = vec![false; n * n];
    for (a, b) in edges {
        reach[idx[a] * n + idx[b]] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i * n + k] {
                for j in 0..n {
                    if reach[k * n + j] {
                        reach[i * n + j] = true;
                    }
                }
            }
        }
    }
    let names: Vec<&String> = nodes.iter().collect();
    let mut out = BTreeSet::new();
    for i in 0..n {
        for j in 0..n {
            if reach[i * n + j] {
                out.insert((names[i].clone(), names[j].clone()));
            }
        }
    }
    out
}

/// DFS cycle detection; returns one cycle as a node path
/// `[a, b, ..., a]` if the graph has any.
pub fn find_cycle(
    nodes: &BTreeSet<String>,
    edges: &BTreeSet<(String, String)>,
) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut color: BTreeMap<&str, u8> = nodes.iter().map(|n| (n.as_str(), 0u8)).collect();
    let mut stack: Vec<&str> = Vec::new();

    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        color: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        color.insert(node, 1);
        stack.push(node);
        for &next in adj.get(node).into_iter().flatten() {
            match color.get(next).copied().unwrap_or(0) {
                1 => {
                    let start = stack.iter().position(|&s| s == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[start..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                0 => {
                    if let Some(cycle) = dfs(next, adj, color, stack) {
                        return Some(cycle);
                    }
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(node, 2);
        None
    }

    let names: Vec<&str> = nodes.iter().map(|s| s.as_str()).collect();
    for node in names {
        if color.get(node).copied().unwrap_or(0) == 0 {
            if let Some(cycle) = dfs(node, &adj, &mut color, &mut stack) {
                return Some(cycle);
            }
        }
    }
    None
}

/// Whether `a -> b` is one of the cycle's edges.
fn cycle_has_edge(cycle: &[String], a: &str, b: &str) -> bool {
    cycle.windows(2).any(|w| w[0] == a && w[1] == b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;
    use std::path::PathBuf;

    fn run(crate_name: &str, stem: &str, src: &str) -> (LockOrder, Vec<Diagnostic>) {
        let file = SourceFile::new(
            PathBuf::from(format!("/w/crates/{crate_name}/src/{stem}.rs")),
            format!("crates/{crate_name}/src/{stem}.rs"),
            crate_name.into(),
            src,
        );
        let mut lo = LockOrder::default();
        let mut diags = Vec::new();
        lo.collect_annotations(&file, &mut diags);
        lo.scan_file(&file, &mut diags);
        (lo, diags)
    }

    #[test]
    fn nested_letbound_guards_produce_an_edge() {
        let (lo, diags) = run(
            "t",
            "store",
            "// lock-order: store.a < store.b\nfn f(&self) {\n    let _g = self.a.lock();\n    let mut b = self.b.write();\n    b.push(1);\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(lo.observed.len(), 1);
        assert_eq!(lo.observed[0].0, "t/store.a");
        assert_eq!(lo.observed[0].1, "t/store.b");
        let mut out = Vec::new();
        lo.finish(&mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn undeclared_nesting_is_reported() {
        let (lo, _) = run(
            "t",
            "store",
            "fn f(&self) {\n    let _g = self.a.lock();\n    let _h = self.b.lock();\n}\n",
        );
        let mut out = Vec::new();
        lo.finish(&mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("undeclared lock nesting"));
    }

    #[test]
    fn contradicting_declared_order_is_reported() {
        let (lo, _) = run(
            "t",
            "store",
            "// lock-order: store.b < store.a\nfn f(&self) {\n    let _g = self.a.lock();\n    let _h = self.b.lock();\n}\n",
        );
        let mut out = Vec::new();
        lo.finish(&mut out);
        assert!(
            out.iter()
                .any(|d| d.message.contains("declared order requires")),
            "{out:?}"
        );
    }

    #[test]
    fn cycle_detection_finds_three_party_cycles() {
        let nodes: BTreeSet<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let edges: BTreeSet<(String, String)> = [("a", "b"), ("b", "c"), ("c", "a")]
            .iter()
            .map(|(x, y)| (x.to_string(), y.to_string()))
            .collect();
        let cycle = find_cycle(&nodes, &edges).expect("cycle exists");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 4, "{cycle:?}");

        let acyclic: BTreeSet<(String, String)> = [("a", "b"), ("b", "c"), ("a", "c")]
            .iter()
            .map(|(x, y)| (x.to_string(), y.to_string()))
            .collect();
        assert!(find_cycle(&nodes, &acyclic).is_none());
    }

    #[test]
    fn three_party_declared_observed_cycle_is_reported() {
        let (lo, _) = run(
            "t",
            "store",
            "// lock-order: store.a < store.b\n// lock-order: store.b < store.c\nfn f(&self) {\n    let _g = self.c.lock();\n    let _h = self.a.lock();\n}\n",
        );
        let mut out = Vec::new();
        lo.finish(&mut out);
        assert!(out.iter().any(|d| d.message.contains("cycle")), "{out:?}");
    }

    #[test]
    fn block_scoping_releases_guards() {
        let (lo, _) = run(
            "t",
            "store",
            "fn f(&self) {\n    {\n        let _g = self.a.lock();\n    }\n    let _h = self.b.lock();\n}\n",
        );
        assert!(lo.observed.is_empty(), "{:?}", lo.observed);
    }

    #[test]
    fn drop_and_reassignment_release_guards() {
        let (lo, _) = run(
            "t",
            "store",
            "fn f(&self) {\n    let mut g = self.a.lock();\n    drop(g);\n    let _h = self.b.lock();\n}\nfn g(&self) {\n    let mut s = self.a.lock();\n    s = self.a.lock();\n    s.touch();\n}\n",
        );
        assert!(lo.observed.is_empty(), "{:?}", lo.observed);
        let mut out = Vec::new();
        lo.finish(&mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn condition_temporaries_are_held_through_the_block() {
        let (lo, _) = run(
            "t",
            "store",
            "// lock-order: store.staging < store.cold\nfn f(&self) {\n    if let Some(x) = self.staging.read().get(k) {\n        let _c = self.cold.read();\n    }\n    let _after = self.cold.read();\n}\n",
        );
        assert_eq!(lo.observed.len(), 1, "{:?}", lo.observed);
        assert_eq!(lo.observed[0].0, "t/store.staging");
    }

    #[test]
    fn wrapper_annotation_names_self_lock() {
        let (lo, diags) = run(
            "t",
            "shard",
            "// lock-wrapper: lock = shard.state\nfn f(&self) {\n    let mut state = self.lock();\n    state.push(1);\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert!(lo.observed.is_empty());
    }

    #[test]
    fn unnameable_receiver_is_reported() {
        let (_, diags) = run(
            "t",
            "store",
            "fn f(&self) {\n    let _g = self.helper().lock();\n}\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("cannot name the lock"));
    }

    #[test]
    fn io_read_write_with_args_are_not_acquisitions() {
        let (lo, diags) = run(
            "t",
            "io",
            "fn f(file: &mut File, buf: &mut [u8]) {\n    file.read(buf).ok();\n    file.write(buf).ok();\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert!(lo.observed.is_empty());
    }
}
