//! The five analysis passes. Each is a pure function from lexed
//! source (plus config) to diagnostics; `lib.rs` orchestrates them
//! over the workspace.

pub mod determinism;
pub mod lockorder;
pub mod obsnames;
pub mod panics;
pub mod unsafe_pass;
