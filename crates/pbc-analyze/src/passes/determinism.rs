//! Pass 2 — determinism lints.
//!
//! In modules declared deterministic (`analyze.toml [determinism]
//! modules`) the output must be a pure function of the input bytes —
//! the PBC standing constraint is that pattern extraction, codec
//! training, planning, and segment writing are byte-identical across
//! writer thread counts and process runs. Flags, with `BTreeMap`/
//! explicit tie-breaks as the prescribed fix:
//!
//! * `HashMap` / `HashSet` — randomized iteration order. Flagged on
//!   every use (not just iteration — a lexical pass cannot prove a map
//!   never leaks its order), suppressible where the use is
//!   order-independent by construction.
//! * `SystemTime::now` / `Instant::now` — wall/monotonic-clock input.
//! * `thread::current` (thread-id-dependent ordering).
//! * `.as_ptr() as`-style address casts — allocator-address-dependent
//!   ordering.

use crate::diag::{Diagnostic, Lint};
use crate::scan::SourceFile;

/// Scan one deterministic module.
pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        // `use` statements are reported only via their usage sites: a
        // suppressed usage site should not re-fire on its import line.
        if t.is_ident("use") {
            in_use = true;
        } else if t.is_punct(';') {
            in_use = false;
        }
        if file.in_test_code(t.line) {
            continue;
        }
        let flag = |line: u32, what: &str, why: &str, diags: &mut Vec<Diagnostic>| {
            if !file.suppressed(Lint::Determinism, line) {
                diags.push(Diagnostic::new(
                    Lint::Determinism,
                    &file.rel,
                    line,
                    format!("{what} in a deterministic module: {why}"),
                ));
            }
        };
        if !in_use && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
            flag(
                t.line,
                &format!("`{}`", t.text),
                "iteration order is randomized per process; use BTreeMap/BTreeSet or sort with an explicit tie-break",
                diags,
            );
        }
        if (t.is_ident("SystemTime") || t.is_ident("Instant"))
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 3).is_some_and(|a| a.is_ident("now"))
        {
            flag(
                t.line,
                &format!("`{}::now`", t.text),
                "clock reads make output depend on timing",
                diags,
            );
        }
        if t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 3).is_some_and(|a| a.is_ident("current"))
        {
            flag(
                t.line,
                "`thread::current`",
                "thread identity must not influence output (byte-determinism across writer thread counts)",
                diags,
            );
        }
        if t.is_ident("as_ptr")
            && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(')'))
            && toks.get(i + 3).is_some_and(|a| a.is_ident("as"))
        {
            flag(
                t.line,
                "address cast (`as_ptr() as ...`)",
                "allocator addresses vary per run; order by value, not address",
                diags,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::collect_suppressions;
    use std::path::PathBuf;

    fn check_src(src: &str) -> Vec<Diagnostic> {
        let mut f = SourceFile::new(
            PathBuf::from("x.rs"),
            "crates/x/src/train.rs".into(),
            "x".into(),
            src,
        );
        let mut diags = Vec::new();
        collect_suppressions(&mut f, &mut diags);
        check(&f, &mut diags);
        diags
    }

    #[test]
    fn hash_collections_and_clocks_are_flagged() {
        let diags = check_src(
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); let t = Instant::now(); }\n",
        );
        // Two HashMap usage sites + the clock; the `use` line is free.
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.line == 2));
    }

    #[test]
    fn suppression_with_reason_is_honored() {
        let diags = check_src(
            "fn f() {\n    // pbc-allow(determinism): counts only, order never observed\n    let m = HashMap::new();\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let diags =
            check_src("#[cfg(test)]\nmod tests {\n    fn f() { let t = Instant::now(); }\n}\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
