//! Pass 1 — unsafe confinement.
//!
//! Two rules: (a) every workspace crate root carries
//! `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]` when listed
//! in `analyze.toml [unsafe] deny_roots` — needed by the one crate
//! whose audited module opts back in with `#[allow]`); (b) the
//! `unsafe` keyword appears nowhere outside `allowed_files`. The token
//! scan covers tests, benches, and examples too — those compile as
//! separate crates that the root attribute does not reach.

use crate::config::Config;
use crate::diag::{Diagnostic, Lint};
use crate::scan::SourceFile;

/// Scan one file for the `unsafe` keyword.
pub fn check_tokens(file: &SourceFile, config: &Config, diags: &mut Vec<Diagnostic>) {
    if config.unsafe_allowed_files.iter().any(|f| f == &file.rel) {
        return;
    }
    for token in &file.tokens {
        if token.is_ident("unsafe") && !file.suppressed(Lint::Unsafe, token.line) {
            diags.push(Diagnostic::new(
                Lint::Unsafe,
                &file.rel,
                token.line,
                format!(
                    "`unsafe` outside the audited allowlist ({}); move the code behind a safe API in an allowed module",
                    config.unsafe_allowed_files.join(", ")
                ),
            ));
        }
    }
}

/// Check one crate root for its `unsafe_code` lint attribute.
pub fn check_crate_root(file: &SourceFile, config: &Config, diags: &mut Vec<Diagnostic>) {
    let want_deny = config.unsafe_deny_roots.iter().any(|f| f == &file.rel);
    let required = if want_deny { "deny" } else { "forbid" };
    // `#![forbid(unsafe_code)]` → # ! [ forbid ( unsafe_code ) ]
    let found = file.tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(required)
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    });
    if !found {
        diags.push(Diagnostic::new(
            Lint::Unsafe,
            &file.rel,
            1,
            format!("crate root is missing `#![{required}(unsafe_code)]`"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from(rel), rel.into(), "x".into(), src)
    }

    fn config() -> Config {
        Config {
            unsafe_allowed_files: vec!["crates/x/src/mmap.rs".into()],
            unsafe_deny_roots: vec!["crates/x/src/lib.rs".into()],
            ..Config::default()
        }
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let mut diags = Vec::new();
        check_tokens(
            &file("crates/x/src/other.rs", "fn f() { unsafe { g() } }"),
            &config(),
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        check_tokens(
            &file("crates/x/src/mmap.rs", "fn f() { unsafe { g() } }"),
            &config(),
            &mut Vec::new(),
        );
    }

    #[test]
    fn crate_roots_need_their_attribute() {
        let mut diags = Vec::new();
        check_crate_root(
            &file("crates/y/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            &config(),
            &mut diags,
        );
        assert!(diags.is_empty());
        // The deny-listed root needs deny, not forbid.
        check_crate_root(
            &file("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            &config(),
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("deny"));
    }
}
