//! Pass 5 — metric-name consistency.
//!
//! Every metric registered through `pbc-obs` (a
//! `counter("pbc_...")` / `gauge("pbc_...")` / `histogram("pbc_...")`
//! call in production code) must appear in the README's observability
//! tables, and every `pbc_`-prefixed name in those tables must be
//! registered somewhere — the README is the contract dashboards are
//! built against, and an undocumented (or stale) name silently breaks
//! it. Table cells may use `{a,b}` brace shorthand
//! (`pbc_tier_cache_{hits,misses}_total` expands to both names).

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Lint};
use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// A registered or documented metric name and where it was seen.
pub type NameSites = BTreeMap<String, (String, u32)>;

/// Collect `pbc_`-prefixed registration literals from one file.
pub fn collect_registered(file: &SourceFile, registered: &mut NameSites) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        let is_ctor = t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "counter" | "gauge" | "histogram");
        if !is_ctor || file.in_test_code(t.line) {
            continue;
        }
        let Some(open) = toks.get(i + 1) else {
            continue;
        };
        let Some(arg) = toks.get(i + 2) else { continue };
        if open.is_punct('(') && arg.kind == TokKind::Str && arg.text.starts_with("pbc_") {
            registered
                .entry(arg.text.clone())
                .or_insert_with(|| (file.rel.clone(), arg.line));
        }
    }
}

/// Collect documented names from README table rows (`| \`pbc_...\` | ... |`).
pub fn collect_documented(readme_rel: &str, readme_text: &str, documented: &mut NameSites) {
    for (n, line) in readme_text.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            continue;
        }
        for raw in backticked(trimmed) {
            if !raw.starts_with("pbc_") {
                continue;
            }
            for name in expand_braces(&raw) {
                documented
                    .entry(name)
                    .or_insert_with(|| (readme_rel.to_string(), n as u32 + 1));
            }
        }
    }
}

/// Diff the two sets into diagnostics.
pub fn diff(registered: &NameSites, documented: &NameSites, diags: &mut Vec<Diagnostic>) {
    for (name, (file, line)) in registered {
        if !documented.contains_key(name) {
            diags.push(Diagnostic::new(
                Lint::ObsNames,
                file,
                *line,
                format!("metric `{name}` is registered but missing from the README metric tables"),
            ));
        }
    }
    for (name, (file, line)) in documented {
        if !registered.contains_key(name) {
            diags.push(Diagnostic::new(
                Lint::ObsNames,
                file,
                *line,
                format!("metric `{name}` is documented but never registered; drop the row or fix the name"),
            ));
        }
    }
}

/// The backtick-quoted spans of a line.
fn backticked(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('`') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('`') else { break };
        out.push(after[..end].to_string());
        rest = &after[end + 1..];
    }
    out
}

/// Expand `{a,b}` groups: `x_{a,b}_total` → `x_a_total`, `x_b_total`.
/// Multiple groups multiply out; no nesting.
fn expand_braces(name: &str) -> Vec<String> {
    let Some(open) = name.find('{') else {
        return vec![name.to_string()];
    };
    let Some(close) = name[open..].find('}').map(|c| open + c) else {
        return vec![name.to_string()];
    };
    let mut out = Vec::new();
    for alt in name[open + 1..close].split(',') {
        let candidate = format!("{}{}{}", &name[..open], alt.trim(), &name[close + 1..]);
        out.extend(expand_braces(&candidate));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn braces_expand_multiplicatively() {
        assert_eq!(
            expand_braces("pbc_{a,b}_x_{c,d}"),
            vec!["pbc_a_x_c", "pbc_a_x_d", "pbc_b_x_c", "pbc_b_x_d"]
        );
        assert_eq!(expand_braces("pbc_plain"), vec!["pbc_plain"]);
    }

    #[test]
    fn registration_and_tables_diff_both_ways() {
        let file = SourceFile::new(
            PathBuf::from("x.rs"),
            "crates/x/src/obs.rs".into(),
            "x".into(),
            "fn f(r: &R) { let c = r.counter(\"pbc_x_total\"); let g = r.gauge(\"pbc_y\"); }\n",
        );
        let mut registered = NameSites::new();
        collect_registered(&file, &mut registered);
        assert_eq!(registered.len(), 2);

        let mut documented = NameSites::new();
        collect_documented(
            "README.md",
            "| `pbc_x_total` | counter | things |\n| `pbc_ghost` | gauge | stale |\n",
            &mut documented,
        );
        let mut diags = Vec::new();
        diff(&registered, &documented, &mut diags);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("pbc_y")));
        assert!(diags.iter().any(|d| d.message.contains("pbc_ghost")));
    }

    #[test]
    fn prose_mentions_outside_tables_are_ignored() {
        let mut documented = NameSites::new();
        collect_documented(
            "README.md",
            "see `pbc_mentioned_in_prose` for details\n",
            &mut documented,
        );
        assert!(documented.is_empty());
    }
}
