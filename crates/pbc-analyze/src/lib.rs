//! pbc-analyze — the workspace invariant checker.
//!
//! A tidy-style static analyzer (hand-rolled lexer, no parser
//! dependencies — the build environment is offline) enforcing the
//! cross-crate invariants the compiler cannot: unsafe confinement,
//! byte-determinism hygiene in the designated deterministic modules,
//! a declared-and-checked lock acquisition order, panic-free
//! production paths, and README/metric-name consistency. Run it as
//!
//! ```text
//! cargo run -p pbc-analyze -- --workspace-root .
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage/config error. Scope and
//! allowlists live in `analyze.toml` at the workspace root; per-site
//! escapes use `// pbc-allow(<lint>): <reason>` with a mandatory
//! justification.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod passes;
pub mod scan;

use std::path::{Path, PathBuf};

use config::Config;
use diag::{Diagnostic, Lint};
use passes::lockorder::LockOrder;
use passes::obsnames;
use scan::{FileKind, SourceFile};

/// Everything one run produces.
#[derive(Debug)]
pub struct Report {
    /// Findings, sorted by file / line / lint.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Run every pass over the workspace at `root` with `config`.
pub fn run(root: &Path, config: &Config) -> Result<Report, String> {
    let files = collect_files(root, config)?;
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut files = files;

    for file in &mut files {
        scan::collect_suppressions(file, &mut diags);
    }

    let mut lock_order = LockOrder::default();
    let mut registered = obsnames::NameSites::new();
    for file in &files {
        // Pass 1: unsafe confinement (every file, including test code —
        // tests compile as their own crates outside the root attribute).
        passes::unsafe_pass::check_tokens(file, config, &mut diags);
        if file.rel.ends_with("src/lib.rs") {
            passes::unsafe_pass::check_crate_root(file, config, &mut diags);
        }

        // Pass 2: determinism, in the declared modules only.
        if config.determinism_modules.iter().any(|m| m == &file.rel) {
            passes::determinism::check(file, &mut diags);
        }

        // Pass 3: lock-order, over the configured crates. Annotations
        // are collected from every file; acquisitions only from
        // production sources.
        if config
            .lock_order_crates
            .iter()
            .any(|c| c == &file.crate_name)
        {
            lock_order.collect_annotations(file, &mut diags);
            if file.kind == FileKind::Src {
                lock_order.scan_file(file, &mut diags);
            }
        }

        // Pass 4: panic-path and dropped-result audits, production
        // sources only (abort-on-failure CLI drivers exempt by config).
        if file.kind == FileKind::Src
            && !config
                .panic_exempt_crates
                .iter()
                .any(|c| c == &file.crate_name)
        {
            passes::panics::check(file, &mut diags);
        }

        // Pass 5 (collection half): registered metric names.
        if !config
            .obs_exempt_crates
            .iter()
            .any(|c| c == &file.crate_name)
        {
            obsnames::collect_registered(file, &mut registered);
        }
    }

    lock_order.finish(&mut diags);

    let readme_path = root.join(&config.obs_readme);
    let readme_text = std::fs::read_to_string(&readme_path)
        .map_err(|e| format!("cannot read {}: {e}", readme_path.display()))?;
    let mut documented = obsnames::NameSites::new();
    obsnames::collect_documented(&config.obs_readme, &readme_text, &mut documented);
    obsnames::diff(&registered, &documented, &mut diags);

    diags.sort_by(|a, b| {
        (&a.file, a.line, a.lint, &a.message).cmp(&(&b.file, b.line, b.lint, &b.message))
    });
    diags.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.lint == b.lint && a.message == b.message
    });
    Ok(Report {
        diagnostics: diags,
        files_scanned: files.len(),
    })
}

/// Discover and lex every workspace `.rs` file: each member listed in
/// the root `Cargo.toml` (skipping `vendor/` shims and excluded
/// prefixes) plus the root facade package, over `src/`, `tests/`,
/// `benches/`, and `examples/`.
fn collect_files(root: &Path, config: &Config) -> Result<Vec<SourceFile>, String> {
    let manifest_path = root.join("Cargo.toml");
    let manifest = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let mut members = workspace_members(&manifest);
    if manifest.contains("[package]") {
        members.push(String::new()); // the root facade package
    }

    let mut files = Vec::new();
    for member in &members {
        let member_dir = if member.is_empty() {
            root.to_path_buf()
        } else {
            root.join(member)
        };
        let crate_name = if member.is_empty() {
            package_name(&manifest).unwrap_or_else(|| "root".to_string())
        } else {
            member
                .rsplit('/')
                .next()
                .unwrap_or(member.as_str())
                .to_string()
        };
        for sub in ["src", "tests", "benches", "examples"] {
            let dir = member_dir.join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut paths = Vec::new();
            walk_rs(&dir, &mut paths)?;
            paths.sort();
            for path in paths {
                let rel = rel_path(root, &path);
                if config
                    .exclude_paths
                    .iter()
                    .any(|p| rel.starts_with(p.as_str()))
                {
                    continue;
                }
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                files.push(SourceFile::new(path, rel, crate_name.clone(), &text));
            }
        }
    }
    Ok(files)
}

/// The `members = [...]` entries of the root manifest, minus `vendor/`
/// shims (offline stand-ins for third-party crates, not our code).
fn workspace_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let Some(at) = manifest.find("members") else {
        return members;
    };
    let rest = &manifest[at..];
    let Some(open) = rest.find('[') else {
        return members;
    };
    let Some(close) = rest.find(']') else {
        return members;
    };
    for part in rest[open + 1..close].split(',') {
        let part = part.trim().trim_matches('"');
        if !part.is_empty() && !part.starts_with("vendor/") {
            members.push(part.to_string());
        }
    }
    members
}

/// The `[package] name = "..."` of a manifest.
fn package_name(manifest: &str) -> Option<String> {
    let at = manifest.find("[package]")?;
    for line in manifest[at..].lines().skip(1) {
        let line = line.trim();
        if line.starts_with('[') {
            break;
        }
        if let Some(value) = line.strip_prefix("name") {
            let value = value.trim_start();
            if let Some(value) = value.strip_prefix('=') {
                return Some(value.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Recursively collect `.rs` files under `dir`.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative, `/`-separated path.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Render a usage-facing list of the lints for `--list-lints`.
pub fn lint_table() -> String {
    let mut out = String::new();
    for lint in Lint::all() {
        out.push_str(&format!("{}\n", lint.id()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse_and_vendor_is_skipped() {
        let members = workspace_members(
            "[workspace]\nmembers = [\n    \"crates/a\",\n    \"vendor/rand\",\n]\n",
        );
        assert_eq!(members, vec!["crates/a"]);
    }

    #[test]
    fn package_name_parses() {
        assert_eq!(
            package_name("[workspace]\n[package]\nname = \"pbc\"\nversion = \"1\"\n"),
            Some("pbc".to_string())
        );
    }
}
