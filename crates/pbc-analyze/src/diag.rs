//! Diagnostics: the lint identifiers, the finding record, and the
//! text / JSON renderings.

use std::fmt;

/// Every lint the checker can emit, by its stable id. The id doubles
/// as the suppression key: `// pbc-allow(<id>): <reason>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// `unsafe` outside the audited allowlist, or a crate root missing
    /// its `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]`.
    Unsafe,
    /// Nondeterministic construct in a declared deterministic module.
    Determinism,
    /// Undeclared or cyclic lock nesting.
    LockOrder,
    /// `unwrap()` / `expect()` / `panic!`-family in production code.
    Panic,
    /// `let _ =` discarding an `io::Result` (fsyncgate class).
    DropResult,
    /// Metric name registered but undocumented, or vice versa.
    ObsNames,
    /// Malformed `pbc-allow` / `lock-order` / `lock-wrapper` annotation.
    Suppression,
}

impl Lint {
    /// The stable string id (used in output and as the suppression key).
    pub fn id(self) -> &'static str {
        match self {
            Lint::Unsafe => "unsafe",
            Lint::Determinism => "determinism",
            Lint::LockOrder => "lock-order",
            Lint::Panic => "panic",
            Lint::DropResult => "drop-result",
            Lint::ObsNames => "obs-names",
            Lint::Suppression => "suppression",
        }
    }

    /// Parse a lint id (for `--lint` filters and `pbc-allow` keys).
    pub fn from_id(s: &str) -> Option<Lint> {
        Some(match s {
            "unsafe" => Lint::Unsafe,
            "determinism" => Lint::Determinism,
            "lock-order" => Lint::LockOrder,
            "panic" => Lint::Panic,
            "drop-result" => Lint::DropResult,
            "obs-names" => Lint::ObsNames,
            "suppression" => Lint::Suppression,
            _ => return None,
        })
    }

    /// Every lint, for `--list-lints` style output.
    pub fn all() -> &'static [Lint] {
        &[
            Lint::Unsafe,
            Lint::Determinism,
            Lint::LockOrder,
            Lint::Panic,
            Lint::DropResult,
            Lint::ObsNames,
            Lint::Suppression,
        ]
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding, anchored to a workspace-relative file and 1-based line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line (0 for whole-file findings).
    pub line: u32,
    /// Human-readable description, including the suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(lint: Lint, file: &str, line: u32, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            lint,
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }

    /// `file:line: [lint] message` — the text-mode rendering.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Render diagnostics (sorted by file, line, lint) as the machine
/// format: `{"diagnostics": [...], "summary": {...}}`.
pub fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (n, d) in diags.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_string(d.lint.id()),
            json_string(&d.file),
            d.line,
            json_string(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"summary\": {{\"files_scanned\": {}, \"diagnostics\": {}}}\n}}\n",
        files_scanned,
        diags.len()
    ));
    out
}

/// Minimal JSON string escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_ids_round_trip() {
        for lint in Lint::all() {
            assert_eq!(Lint::from_id(lint.id()), Some(*lint));
        }
        assert_eq!(Lint::from_id("nope"), None);
    }

    #[test]
    fn json_escapes_and_counts() {
        let diags = vec![Diagnostic::new(Lint::Panic, "a/b.rs", 3, "say \"hi\"\n")];
        let json = render_json(&diags, 7);
        assert!(json.contains("\"say \\\"hi\\\"\\n\""));
        assert!(json.contains("\"files_scanned\": 7"));
        assert!(json.contains("\"diagnostics\": 1"));
    }

    #[test]
    fn empty_json_is_clean() {
        let json = render_json(&[], 0);
        assert!(json.contains("\"diagnostics\": []"));
    }
}
