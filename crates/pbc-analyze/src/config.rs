//! `analyze.toml` — the checked-in, reviewable scope of every pass.
//!
//! Hand-rolled parser for the small TOML subset the config uses:
//! `[section]` headers, `key = "string"`, and `key = [ "a", "b" ]`
//! arrays (single- or multi-line). Anything else is a hard error — the
//! config is part of the invariant surface and must not silently rot.

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed `analyze.toml`.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Files allowed to contain the `unsafe` keyword.
    pub unsafe_allowed_files: Vec<String>,
    /// Crate roots carrying `#![deny(unsafe_code)]` instead of
    /// `#![forbid(unsafe_code)]` (needed when one audited module opts
    /// out via `#[allow]`, which `forbid` would reject).
    pub unsafe_deny_roots: Vec<String>,
    /// Modules under the determinism lint (workspace-relative paths).
    pub determinism_modules: Vec<String>,
    /// Crates whose sources feed the lock-order analysis.
    pub lock_order_crates: Vec<String>,
    /// Crates exempt from the panic-path and dropped-result audits
    /// (abort-on-failure CLI drivers, not library code).
    pub panic_exempt_crates: Vec<String>,
    /// README (workspace-relative) holding the metric-name tables.
    pub obs_readme: String,
    /// Crates exempt from the obs-names registration scan.
    pub obs_exempt_crates: Vec<String>,
    /// Path prefixes excluded from every pass (fixtures, vendored code).
    pub exclude_paths: Vec<String>,
}

/// Load and parse the config file.
pub fn load(path: &Path) -> Result<Config, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&text)
}

/// Parse the config from its text.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut sections: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
    let mut current = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((n, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            current = name.trim().to_string();
            sections.entry(current.clone()).or_default();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("analyze.toml:{}: expected `key = value`", n + 1))?;
        let key = key.trim().to_string();
        let mut value = value.trim().to_string();
        // Multi-line arrays: keep consuming until the closing bracket.
        while value.starts_with('[') && !value.ends_with(']') {
            let (_, next) = lines
                .next()
                .ok_or_else(|| format!("analyze.toml:{}: unterminated array", n + 1))?;
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let items = parse_value(&value).map_err(|e| format!("analyze.toml:{}: {e}", n + 1))?;
        if current.is_empty() {
            return Err(format!("analyze.toml:{}: key outside any [section]", n + 1));
        }
        sections
            .entry(current.clone())
            .or_default()
            .insert(key, items);
    }

    let mut config = Config::default();
    let mut take = |section: &str, key: &str| -> Vec<String> {
        sections
            .get_mut(section)
            .and_then(|s| s.remove(key))
            .unwrap_or_default()
    };
    config.unsafe_allowed_files = take("unsafe", "allowed_files");
    config.unsafe_deny_roots = take("unsafe", "deny_roots");
    config.determinism_modules = take("determinism", "modules");
    config.lock_order_crates = take("lock-order", "crates");
    config.panic_exempt_crates = take("panic", "exempt_crates");
    config.obs_readme = take("obs-names", "readme")
        .into_iter()
        .next()
        .unwrap_or_else(|| "README.md".to_string());
    config.obs_exempt_crates = take("obs-names", "exempt_crates");
    config.exclude_paths = take("workspace", "exclude_paths");

    // Reject unknown keys: a typo'd scope entry must fail loudly, not
    // silently exempt a module from its lint.
    for (section, keys) in &sections {
        if let Some(key) = keys.keys().next() {
            return Err(format!("analyze.toml: unknown key `{key}` in [{section}]"));
        }
        if !matches!(
            section.as_str(),
            "unsafe" | "determinism" | "lock-order" | "panic" | "obs-names" | "workspace"
        ) {
            return Err(format!("analyze.toml: unknown section [{section}]"));
        }
    }
    Ok(config)
}

/// `"a"` or `[ "a", "b" ]` → the string items.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(parse_string)
            .collect()
    } else {
        Ok(vec![parse_string(value)?])
    }
}

/// `"text"` → `text`.
fn parse_string(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{s}`"))
}

/// Drop a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let config = parse(
            r#"
            # top comment
            [unsafe]
            allowed_files = ["a/mmap.rs"] # trailing
            deny_roots = [
                "a/lib.rs",  # multi-line
                "b/lib.rs",
            ]
            [determinism]
            modules = []
            [obs-names]
            readme = "README.md"
            "#,
        )
        .expect("parses");
        assert_eq!(config.unsafe_allowed_files, vec!["a/mmap.rs"]);
        assert_eq!(config.unsafe_deny_roots, vec!["a/lib.rs", "b/lib.rs"]);
        assert!(config.determinism_modules.is_empty());
        assert_eq!(config.obs_readme, "README.md");
    }

    #[test]
    fn rejects_unknown_keys_and_sections() {
        assert!(parse("[unsafe]\nallowed = []\n").is_err());
        assert!(parse("[mystery]\nx = []\n").is_err());
        assert!(parse("key_without_section = []\n").is_err());
    }
}
