//! The per-file scanning model shared by every pass: lexed tokens,
//! comments, test-code ranges, and `pbc-allow` suppressions.

use std::path::PathBuf;

use crate::diag::{Diagnostic, Lint};
use crate::lexer::{lex, Comment, TokKind, Token};

/// How a file participates in the build — decides which passes apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library/binary source under `src/`.
    Src,
    /// Integration test, bench, or example — exempt from the
    /// production-code audits (panic, drop-result, determinism).
    TestLike,
}

/// One `pbc-allow(<lint>): <reason>` suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The suppressed lint.
    pub lint: Lint,
    /// 1-based line of the annotation comment.
    pub line: u32,
}

/// One lexed and classified source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path.
    pub path: PathBuf,
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Workspace member package the file belongs to.
    pub crate_name: String,
    /// Production source or test-like.
    pub kind: FileKind,
    /// Token stream (comments and literal bodies excluded).
    pub tokens: Vec<Token>,
    /// Every comment, for annotations.
    pub comments: Vec<Comment>,
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// Parsed `pbc-allow` annotations.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lex and classify `text`.
    pub fn new(path: PathBuf, rel: String, crate_name: String, text: &str) -> SourceFile {
        let lexed = lex(text);
        let kind = if rel.contains("/tests/")
            || rel.contains("/benches/")
            || rel.contains("/examples/")
            || rel.starts_with("tests/")
            || rel.starts_with("examples/")
        {
            FileKind::TestLike
        } else {
            FileKind::Src
        };
        let test_ranges = test_ranges(&lexed.tokens);
        SourceFile {
            path,
            rel,
            crate_name,
            kind,
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_ranges,
            suppressions: Vec::new(),
        }
    }

    /// Whether `line` falls inside test-only code.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.kind == FileKind::TestLike
            || self
                .test_ranges
                .iter()
                .any(|&(start, end)| line >= start && line <= end)
    }

    /// Whether a diagnostic of `lint` at `line` is suppressed by a
    /// `pbc-allow` annotation on the same line or the line above.
    pub fn suppressed(&self, lint: Lint, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.lint == lint && (s.line == line || s.line + 1 == line))
    }
}

/// Parse `pbc-allow(<lint>): <reason>` annotations out of a file's
/// comments, reporting malformed ones (unknown lint id, missing or
/// empty reason) — a typo must not silently disable a lint. Only
/// comments that *begin* with `pbc-allow` count; a mid-sentence
/// mention in prose (like this doc comment's) is not an annotation.
pub fn collect_suppressions(file: &mut SourceFile, diags: &mut Vec<Diagnostic>) {
    let comments = std::mem::take(&mut file.comments);
    for comment in &comments {
        let trimmed = comment.text.trim_start();
        if let Some(tail) = trimmed.strip_prefix("pbc-allow") {
            let mut rest = tail;
            let Some(inner) = rest.strip_prefix('(') else {
                diags.push(Diagnostic::new(
                    Lint::Suppression,
                    &file.rel,
                    comment.line,
                    "malformed pbc-allow: expected `pbc-allow(<lint>): <reason>`",
                ));
                continue;
            };
            let Some(close) = inner.find(')') else {
                diags.push(Diagnostic::new(
                    Lint::Suppression,
                    &file.rel,
                    comment.line,
                    "malformed pbc-allow: missing `)`",
                ));
                continue;
            };
            let key = inner[..close].trim();
            rest = &inner[close + 1..];
            let Some(lint) = Lint::from_id(key) else {
                diags.push(Diagnostic::new(
                    Lint::Suppression,
                    &file.rel,
                    comment.line,
                    format!("pbc-allow names unknown lint `{key}`"),
                ));
                continue;
            };
            let reason = rest.strip_prefix(':').map(str::trim).unwrap_or("");
            if reason.is_empty() {
                diags.push(Diagnostic::new(
                    Lint::Suppression,
                    &file.rel,
                    comment.line,
                    format!(
                        "pbc-allow({key}) requires a justification: `pbc-allow({key}): <reason>`"
                    ),
                ));
                continue;
            }
            file.suppressions.push(Suppression {
                lint,
                line: comment.line,
            });
        }
    }
    file.comments = comments;
}

/// Inclusive line ranges of items gated behind `#[cfg(test)]`-style
/// attributes or marked `#[test]`: the attribute line through the
/// closing brace of the item's body.
fn test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') || !tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let attr_start = i;
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut is_test_attr = false;
        let mut seen_cfg = false;
        // Paren depths at which a `not(` group opened: `cfg(not(test))`
        // gates *production* code and must not count as a test range.
        let mut paren_depth = 0i32;
        let mut not_depths: Vec<i32> = Vec::new();
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_punct('(') {
                paren_depth += 1;
                if tokens[j - 1].is_ident("not") {
                    not_depths.push(paren_depth);
                }
            } else if t.is_punct(')') {
                if not_depths.last() == Some(&paren_depth) {
                    not_depths.pop();
                }
                paren_depth -= 1;
            } else if t.kind == TokKind::Ident && t.text == "cfg" {
                seen_cfg = true;
            } else if t.kind == TokKind::Ident && t.text == "test" && not_depths.is_empty() {
                // `#[test]` directly, or `test` inside `#[cfg(...)]`
                // outside any `not(...)` group.
                is_test_attr = seen_cfg || j == attr_start + 2;
            }
            j += 1;
        }
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip over any further attributes, then the item header, to
        // the item's opening brace; range ends at its matching brace.
        let mut k = j + 1;
        while k < tokens.len() && tokens[k].is_punct('#') {
            let mut d = 0i32;
            k += 1;
            while k < tokens.len() {
                if tokens[k].is_punct('[') {
                    d += 1;
                } else if tokens[k].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
        let mut brace = None;
        while k < tokens.len() {
            if tokens[k].is_punct('{') {
                brace = Some(k);
                break;
            }
            if tokens[k].is_punct(';') {
                // Item without a body (`#[cfg(test)] use ...;`).
                break;
            }
            k += 1;
        }
        let Some(open) = brace else {
            ranges.push((
                tokens[attr_start].line,
                tokens[k.min(tokens.len() - 1)].line,
            ));
            i = k + 1;
            continue;
        };
        let mut d = 0i32;
        let mut end = open;
        for (n, t) in tokens.iter().enumerate().skip(open) {
            if t.is_punct('{') {
                d += 1;
            } else if t.is_punct('}') {
                d -= 1;
                if d == 0 {
                    end = n;
                    break;
                }
            }
        }
        ranges.push((tokens[attr_start].line, tokens[end].line));
        i = end + 1;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new(
            PathBuf::from("/x/src/lib.rs"),
            "crates/x/src/lib.rs".into(),
            "x".into(),
            src,
        )
    }

    #[test]
    fn cfg_test_modules_are_detected() {
        let f = file(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}\n",
        );
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(5));
        assert!(f.in_test_code(6));
        assert!(!f.in_test_code(7));
    }

    #[test]
    fn test_fn_outside_module_is_detected() {
        let f = file("#[test]\nfn t() {\n    boom();\n}\nfn prod() {}\n");
        assert!(f.in_test_code(3));
        assert!(!f.in_test_code(5));
    }

    #[test]
    fn non_test_cfg_is_not_a_test_range() {
        let f = file("#[cfg(unix)]\nfn unix_only() {\n    x();\n}\n");
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn suppressions_parse_and_reject_bad_forms() {
        let mut f = file(
            "// pbc-allow(panic): poisoning is fatal by design\nx.unwrap();\n// pbc-allow(panic):\ny();\n// pbc-allow(nonsense): hm\n",
        );
        let mut diags = Vec::new();
        collect_suppressions(&mut f, &mut diags);
        assert_eq!(f.suppressions.len(), 1);
        assert!(f.suppressed(Lint::Panic, 2));
        assert!(!f.suppressed(Lint::Panic, 4));
        assert_eq!(diags.len(), 2, "{diags:?}");
    }
}
