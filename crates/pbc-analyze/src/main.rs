//! CLI for the workspace invariant checker.
//!
//! ```text
//! pbc-analyze --workspace-root <dir> [--config <file>] [--format text|json] [--list-lints]
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage or configuration error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use pbc_analyze::{config, diag, lint_table, run};

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("pbc-analyze: {message}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut format = Format::Text;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--workspace-root" => {
                root = PathBuf::from(argv.next().ok_or("--workspace-root needs a path")?);
            }
            "--config" => {
                config_path = Some(PathBuf::from(argv.next().ok_or("--config needs a path")?));
            }
            "--format" => match argv.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    return Err(format!(
                        "--format must be `text` or `json`, got `{}`",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--list-lints" => {
                print!("{}", lint_table());
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!(
                    "usage: pbc-analyze --workspace-root <dir> [--config <file>] \
                     [--format text|json] [--list-lints]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let config_path = config_path.unwrap_or_else(|| root.join("analyze.toml"));
    let config = config::load(&config_path)?;
    let report = run(&root, &config)?;

    match format {
        Format::Text => {
            for d in &report.diagnostics {
                println!("{}", d.render_text());
            }
            if report.diagnostics.is_empty() {
                eprintln!(
                    "pbc-analyze: clean ({} files scanned)",
                    report.files_scanned
                );
            } else {
                eprintln!(
                    "pbc-analyze: {} finding(s) across {} files",
                    report.diagnostics.len(),
                    report.files_scanned
                );
            }
        }
        Format::Json => {
            print!(
                "{}",
                diag::render_json(&report.diagnostics, report.files_scanned)
            );
        }
    }

    Ok(if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

#[derive(Clone, Copy)]
enum Format {
    Text,
    Json,
}
