//! Fixture-driven integration tests.
//!
//! Each known-bad snippet under `tests/fixtures/` is mounted as the
//! sole crate of a throwaway workspace in a temp directory, the
//! analyzer runs over it, and the findings must match exactly — right
//! lint id, right line. The last test runs the analyzer over the real
//! workspace with the checked-in `analyze.toml` and requires a clean
//! report, so a regression anywhere in the tree fails `cargo test`
//! before CI even reaches the dedicated analyze job.
//!
//! The fixtures themselves are excluded from real-workspace scans via
//! `analyze.toml [workspace] exclude_paths`, and cargo never compiles
//! them (test subdirectories are not build targets), so they are free
//! to contain `unsafe`, panics, and non-compiling lock shapes.

use std::fs;
use std::path::{Path, PathBuf};

use pbc_analyze::config;
use pbc_analyze::diag::{Diagnostic, Lint};

/// The scope handed to every fixture workspace: the one crate is under
/// every pass — its root must forbid unsafe, its `lib.rs` is a
/// deterministic module, its locks feed the order graph, and its
/// metrics must match the workspace README.
const FIXTURE_CONFIG: &str = r#"
[workspace]
exclude_paths = []

[unsafe]
allowed_files = []
deny_roots = []

[determinism]
modules = ["crates/fix/src/lib.rs"]

[lock-order]
crates = ["fix"]

[panic]
exempt_crates = []

[obs-names]
readme = "README.md"
exempt_crates = []
"#;

const DEFAULT_README: &str = "# fixture workspace\n";

/// README documenting a metric no fixture registers — the obs-names
/// "stale row" direction.
const OBS_README: &str =
    "# fixture workspace\n\n| `pbc_fix_ghost_total` | counter | documented but never registered |\n";

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Assemble a one-crate workspace with the fixture as
/// `crates/fix/src/lib.rs`, run the analyzer, and return its findings.
fn run_fixture(name: &str, readme: &str) -> Vec<Diagnostic> {
    let root = std::env::temp_dir().join(format!(
        "pbc-analyze-fixture-{}-{}",
        name.trim_end_matches(".rs"),
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/fix/src")).expect("create fixture workspace");
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/fix\"]\n",
    )
    .expect("write fixture manifest");
    fs::write(root.join("README.md"), readme).expect("write fixture README");
    let snippet = fs::read_to_string(fixture_path(name)).expect("read fixture snippet");
    fs::write(root.join("crates/fix/src/lib.rs"), snippet).expect("write fixture source");

    let cfg = config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    let report = pbc_analyze::run(&root, &cfg).expect("analyzer runs");
    let _ = fs::remove_dir_all(&root);
    report.diagnostics
}

/// The lines (sorted, as reported) on which `lint` fired.
fn lines_of(diags: &[Diagnostic], lint: Lint) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.lint == lint)
        .map(|d| d.line)
        .collect()
}

#[test]
fn unsafe_fixture_flags_keyword_and_missing_forbid() {
    let diags = run_fixture("unsafe_confinement.rs", DEFAULT_README);
    // Line 1: crate root missing #![forbid(unsafe_code)]; line 5: the
    // unsafe block itself.
    assert_eq!(lines_of(&diags, Lint::Unsafe), vec![1, 5], "{diags:?}");
    assert_eq!(diags.len(), 2, "{diags:?}");
}

#[test]
fn determinism_fixture_flags_hash_maps_clocks_and_address_casts() {
    let diags = run_fixture("determinism.rs", DEFAULT_README);
    // Line 8: HashMap (both uses collapse into one identical finding);
    // line 12: Instant::now; line 17: as_ptr() as usize. The `use`
    // lines are deliberately free.
    assert_eq!(
        lines_of(&diags, Lint::Determinism),
        vec![8, 12, 17],
        "{diags:?}"
    );
    assert_eq!(diags.len(), 3, "{diags:?}");
}

#[test]
fn panic_fixture_flags_each_panic_site_and_the_dropped_result() {
    let diags = run_fixture("panic_paths.rs", DEFAULT_README);
    // Line 9: panic!; line 11: unwrap(); line 15: expect().
    assert_eq!(lines_of(&diags, Lint::Panic), vec![9, 11, 15], "{diags:?}");
    // Line 7: `let _ = file.sync_all()` — the fsyncgate class.
    assert_eq!(lines_of(&diags, Lint::DropResult), vec![7], "{diags:?}");
    assert!(diags
        .iter()
        .any(|d| d.lint == Lint::DropResult && d.message.contains("sync_all")));
    assert_eq!(diags.len(), 4, "{diags:?}");
}

#[test]
fn lock_cycle_fixture_reports_both_nestings_and_the_cycle() {
    let diags = run_fixture("lock_cycle.rs", DEFAULT_README);
    // Line 16: a→b undeclared + the cycle report anchors there (first
    // observed edge on the cycle); line 22: b→a undeclared.
    assert_eq!(
        lines_of(&diags, Lint::LockOrder),
        vec![16, 16, 22],
        "{diags:?}"
    );
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("undeclared lock nesting"))
            .count(),
        2,
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("lock-order cycle (potential deadlock)")),
        "{diags:?}"
    );
    assert_eq!(diags.len(), 3, "{diags:?}");
}

#[test]
fn declared_lock_order_fixture_is_clean() {
    let diags = run_fixture("lock_declared.rs", DEFAULT_README);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn bad_suppressions_fail_loudly_and_do_not_suppress() {
    let diags = run_fixture("bad_suppression.rs", DEFAULT_README);
    // Line 6: unknown lint id `panics`; line 11: missing justification.
    assert_eq!(
        lines_of(&diags, Lint::Suppression),
        vec![6, 11],
        "{diags:?}"
    );
    assert!(diags
        .iter()
        .any(|d| d.lint == Lint::Suppression && d.message.contains("unknown lint `panics`")));
    assert!(diags
        .iter()
        .any(|d| d.lint == Lint::Suppression && d.message.contains("requires a justification")));
    // Both unwraps still fire — a malformed annotation must never act
    // as a suppression.
    assert_eq!(lines_of(&diags, Lint::Panic), vec![7, 12], "{diags:?}");
    assert_eq!(diags.len(), 4, "{diags:?}");
}

#[test]
fn obs_fixture_diffs_registration_against_the_readme_both_ways() {
    let diags = run_fixture("obs_metrics.rs", OBS_README);
    assert_eq!(diags.len(), 2, "{diags:?}");
    // Registered but undocumented: anchored at the registration site.
    assert!(
        diags.iter().any(|d| d.lint == Lint::ObsNames
            && d.file == "crates/fix/src/lib.rs"
            && d.line == 14
            && d.message.contains("pbc_fix_undocumented_total")),
        "{diags:?}"
    );
    // Documented but never registered: anchored at the README row.
    assert!(
        diags.iter().any(|d| d.lint == Lint::ObsNames
            && d.file == "README.md"
            && d.line == 3
            && d.message.contains("pbc_fix_ghost_total")),
        "{diags:?}"
    );
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = config::load(&root.join("analyze.toml")).expect("analyze.toml loads");
    let report = pbc_analyze::run(&root, &cfg).expect("analyzer runs");
    let rendered: Vec<String> = report
        .diagnostics
        .iter()
        .map(Diagnostic::render_text)
        .collect();
    assert!(
        report.diagnostics.is_empty(),
        "the workspace must be analyze-clean:\n{}",
        rendered.join("\n")
    );
    // Sanity: the scan actually covered the tree, not an empty dir.
    assert!(report.files_scanned > 100, "{}", report.files_scanned);
}
