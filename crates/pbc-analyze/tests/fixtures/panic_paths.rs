#![forbid(unsafe_code)]
// Fixture: panics on recoverable paths and a dropped io::Result.

use std::fs::File;

pub fn commit(file: &File, value: Option<u32>) -> u32 {
    let _ = file.sync_all();
    if value.is_none() {
        panic!("value must be present");
    }
    value.unwrap()
}

pub fn read_header(bytes: &[u8]) -> u32 {
    let array: [u8; 4] = bytes[..4].try_into().expect("short header");
    u32::from_le_bytes(array)
}
