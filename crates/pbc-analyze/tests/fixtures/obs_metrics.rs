#![forbid(unsafe_code)]
// Fixture: registers a metric missing from the README tables; the
// harness README documents a ghost metric that is never registered.

pub struct Registry;

impl Registry {
    pub fn counter(&self, _name: &str) -> u64 {
        0
    }
}

pub fn register(registry: &Registry) -> u64 {
    registry.counter("pbc_fix_undocumented_total")
}
