#![forbid(unsafe_code)]
// Fixture: nondeterminism in a module declared deterministic.

use std::collections::HashMap;
use std::time::Instant;

pub fn train(samples: &[Vec<u8>]) -> usize {
    let mut counts: HashMap<Vec<u8>, u64> = HashMap::new();
    for sample in samples {
        *counts.entry(sample.clone()).or_insert(0) += 1;
    }
    let started = Instant::now();
    counts.len() + started.elapsed().subsec_nanos() as usize
}

pub fn order_key(buf: &[u8]) -> usize {
    buf.as_ptr() as usize
}
