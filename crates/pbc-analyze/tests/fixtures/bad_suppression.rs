#![forbid(unsafe_code)]
// Fixture: a typo'd lint id and a missing justification must fail
// loudly, and must NOT suppress the underlying panic findings.

pub fn first(x: Option<u32>) -> u32 {
    // pbc-allow(panics): wrong lint id
    x.unwrap()
}

pub fn second(x: Option<u32>) -> u32 {
    // pbc-allow(panic):
    x.unwrap()
}
