// Fixture: `unsafe` outside the allowlist, in a crate root that is
// also missing its `#![forbid(unsafe_code)]` attribute.

pub fn peek(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
