#![forbid(unsafe_code)]
// Fixture: two functions acquire the same pair of locks in opposite
// orders with no declaration — an undeclared nesting each way, plus a
// two-party cycle across the union graph.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn backward(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga + *gb
    }
}
