#![forbid(unsafe_code)]
// Fixture: the same nesting as lock_cycle's `forward`, but declared —
// the analyzer must accept it without diagnostics. The harness mounts
// this file as crates/fix/src/lib.rs, so the lock ids are `lib.*`.

use std::sync::Mutex;

// lock-order: lib.a < lib.b
pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }
}
