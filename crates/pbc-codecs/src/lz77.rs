//! Hash-chain LZ77 match finder shared by the LZ-family codecs.
//!
//! All four baseline codecs ([`crate::lz4like`], [`crate::snappylike`],
//! [`crate::zstdlike`], [`crate::lzmalike`]) parse the input into a sequence
//! of literal runs and back-references using this finder; they differ only in
//! the window size / search effort they request and in how the token stream
//! is serialized afterwards.

/// Minimum match length considered worth emitting as a back-reference.
pub const MIN_MATCH: usize = 4;

/// A single back-reference discovered by the match finder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Distance back from the current position (1 ≤ offset ≤ window).
    pub offset: usize,
    /// Length of the match in bytes (≥ [`MIN_MATCH`]).
    pub len: usize,
}

/// One element of the LZ77 parse: a run of literals followed by an optional
/// match. The final token of a stream has `match_: None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Byte range of the literal run in the original input.
    pub literal_start: usize,
    /// Length of the literal run (may be 0).
    pub literal_len: usize,
    /// The back-reference following the literals, if any.
    pub match_: Option<Match>,
}

/// Tunable parameters for the greedy hash-chain parse.
#[derive(Debug, Clone, Copy)]
pub struct MatchFinderConfig {
    /// Maximum back-reference distance.
    pub window: usize,
    /// Maximum hash-chain entries examined per position (search effort).
    pub max_chain: usize,
    /// Hash table size as a power of two.
    pub hash_bits: u32,
    /// Maximum match length to report.
    pub max_match: usize,
    /// Use one-step-lazy matching (try position+1 before committing).
    pub lazy: bool,
}

impl MatchFinderConfig {
    /// Fast profile: small effort, suitable for LZ4/Snappy-class codecs.
    pub fn fast() -> Self {
        MatchFinderConfig {
            window: 64 * 1024,
            max_chain: 16,
            hash_bits: 15,
            max_match: 1 << 16,
            lazy: false,
        }
    }

    /// Balanced profile used by the Zstd-like codec's default level.
    pub fn balanced() -> Self {
        MatchFinderConfig {
            window: 1 << 20,
            max_chain: 64,
            hash_bits: 17,
            max_match: 1 << 20,
            lazy: true,
        }
    }

    /// High-effort profile used by the LZMA-like codec and high Zstd levels.
    pub fn thorough() -> Self {
        MatchFinderConfig {
            window: 1 << 22,
            max_chain: 256,
            hash_bits: 18,
            max_match: 1 << 22,
            lazy: true,
        }
    }
}

/// Hash-chain LZ77 match finder over a (dictionary + input) buffer.
pub struct MatchFinder<'a> {
    data: &'a [u8],
    /// Offset where the actual input starts (everything before it is the
    /// shared dictionary and is never emitted as literals).
    input_start: usize,
    config: MatchFinderConfig,
    head: Vec<u32>,
    prev: Vec<u32>,
}

const NIL: u32 = u32::MAX;

impl<'a> MatchFinder<'a> {
    /// Create a finder over `data`; positions before `input_start` form the
    /// preset dictionary window.
    pub fn new(data: &'a [u8], input_start: usize, config: MatchFinderConfig) -> Self {
        let hash_size = 1usize << config.hash_bits;
        MatchFinder {
            data,
            input_start,
            config,
            head: vec![NIL; hash_size],
            prev: vec![NIL; data.len()],
        }
    }

    #[inline]
    fn hash(&self, pos: usize) -> usize {
        // 4-byte multiplicative hash (Fibonacci hashing).
        let b = &self.data[pos..pos + MIN_MATCH];
        let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        ((v.wrapping_mul(2654435761)) >> (32 - self.config.hash_bits)) as usize
    }

    #[inline]
    fn insert(&mut self, pos: usize) {
        if pos + MIN_MATCH > self.data.len() {
            return;
        }
        let h = self.hash(pos);
        self.prev[pos] = self.head[h];
        self.head[h] = pos as u32;
    }

    /// Find the longest match for `pos`, if any, respecting the window and
    /// chain limits.
    fn find_match(&self, pos: usize) -> Option<Match> {
        if pos + MIN_MATCH > self.data.len() {
            return None;
        }
        let h = self.hash(pos);
        let mut candidate = self.head[h];
        let mut best: Option<Match> = None;
        let max_len = self.config.max_match.min(self.data.len() - pos);
        let min_pos = pos.saturating_sub(self.config.window);
        let mut chain = 0;
        while candidate != NIL && chain < self.config.max_chain {
            let cand = candidate as usize;
            if cand < min_pos {
                break;
            }
            debug_assert!(cand < pos);
            // Quick reject: compare the byte just past the current best.
            let best_len = best.map_or(MIN_MATCH - 1, |m| m.len);
            if best_len < max_len && self.data[cand + best_len] == self.data[pos + best_len] {
                let len = common_prefix(&self.data[cand..], &self.data[pos..], max_len);
                if len >= MIN_MATCH && len > best_len {
                    best = Some(Match {
                        offset: pos - cand,
                        len,
                    });
                    if len >= max_len {
                        break;
                    }
                }
            }
            candidate = self.prev[cand];
            chain += 1;
        }
        best
    }

    /// Run the greedy (optionally lazy) parse over the input region and
    /// return the token sequence.
    pub fn parse(&mut self) -> Vec<Token> {
        let n = self.data.len();
        // Index the dictionary region so matches can point into it.
        let mut p = 0;
        while p < self.input_start {
            self.insert(p);
            p += 1;
        }

        let mut tokens = Vec::new();
        let mut pos = self.input_start;
        let mut literal_start = self.input_start;
        while pos < n {
            let found = self.find_match(pos);
            let found = match (found, self.config.lazy) {
                (Some(m), true) if pos + 1 < n => {
                    // One-step lazy matching: if the next position has a
                    // strictly longer match, emit this byte as a literal.
                    let next = self.find_match(pos + 1);
                    match next {
                        Some(nm) if nm.len > m.len + 1 => {
                            self.insert(pos);
                            pos += 1;
                            // Skip straight to evaluating pos+1 in the next
                            // loop iteration; the current byte stays literal.
                            continue;
                        }
                        _ => Some(m),
                    }
                }
                (m, _) => m,
            };
            match found {
                Some(m) => {
                    tokens.push(Token {
                        literal_start,
                        literal_len: pos - literal_start,
                        match_: Some(m),
                    });
                    // Index the positions covered by the match (bounded so
                    // pathological inputs stay fast).
                    let end = pos + m.len;
                    let index_end = end.min(pos + 64);
                    while pos < index_end {
                        self.insert(pos);
                        pos += 1;
                    }
                    pos = end;
                    literal_start = pos;
                }
                None => {
                    self.insert(pos);
                    pos += 1;
                }
            }
        }
        tokens.push(Token {
            literal_start,
            literal_len: n - literal_start,
            match_: None,
        });
        tokens
    }
}

/// Length of the common prefix of `a` and `b`, capped at `max`.
#[inline]
pub fn common_prefix(a: &[u8], b: &[u8], max: usize) -> usize {
    let limit = max.min(a.len()).min(b.len());
    let mut i = 0;
    // Compare 8 bytes at a time.
    while i + 8 <= limit {
        // pbc-allow(panic): the loop bound guarantees an exact 8-byte subslice
        let wa = u64::from_le_bytes(a[i..i + 8].try_into().expect("8 bytes"));
        // pbc-allow(panic): the loop bound guarantees an exact 8-byte subslice
        let wb = u64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
        let x = wa ^ wb;
        if x != 0 {
            return i + (x.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < limit && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Reconstruct the original bytes from a token stream (used by tests and by
/// codecs that keep the tokens in memory).
pub fn reconstruct(tokens: &[Token], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        out.extend_from_slice(&data[t.literal_start..t.literal_start + t.literal_len]);
        if let Some(m) = t.match_ {
            let start = out.len() - m.offset;
            for i in 0..m.len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_with(config: MatchFinderConfig, data: &[u8]) {
        let mut finder = MatchFinder::new(data, 0, config);
        let tokens = finder.parse();
        // Validate token invariants.
        for t in &tokens {
            if let Some(m) = t.match_ {
                assert!(m.len >= MIN_MATCH);
                assert!(m.offset >= 1);
            }
        }
        assert_eq!(reconstruct(&tokens, data), data);
    }

    #[test]
    fn parse_reconstructs_repetitive_input() {
        let data = b"abcabcabcabcabcabcabcabcabcabc".to_vec();
        roundtrip_with(MatchFinderConfig::fast(), &data);
        roundtrip_with(MatchFinderConfig::balanced(), &data);
    }

    #[test]
    fn parse_reconstructs_text_with_shared_templates() {
        let mut data = Vec::new();
        for i in 0..200 {
            data.extend_from_slice(
                format!("{{\"symbol\": \"IBM\", \"side\": \"B\", \"quantity\": {i}, \"price\": 50.25}}\n")
                    .as_bytes(),
            );
        }
        roundtrip_with(MatchFinderConfig::fast(), &data);
        roundtrip_with(MatchFinderConfig::balanced(), &data);
        roundtrip_with(MatchFinderConfig::thorough(), &data);
    }

    #[test]
    fn parse_handles_incompressible_input() {
        // Pseudo-random bytes: almost everything should stay literal.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..2000)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        roundtrip_with(MatchFinderConfig::balanced(), &data);
    }

    #[test]
    fn parse_handles_tiny_inputs() {
        roundtrip_with(MatchFinderConfig::fast(), b"");
        roundtrip_with(MatchFinderConfig::fast(), b"a");
        roundtrip_with(MatchFinderConfig::fast(), b"abc");
        roundtrip_with(MatchFinderConfig::fast(), b"abcd");
    }

    #[test]
    fn matches_find_repeats_beyond_literal_run() {
        let data = b"0123456789_0123456789_0123456789_".to_vec();
        let mut finder = MatchFinder::new(&data, 0, MatchFinderConfig::fast());
        let tokens = finder.parse();
        let has_match = tokens.iter().any(|t| t.match_.is_some());
        assert!(
            has_match,
            "repeated decimal runs must produce back-references"
        );
    }

    #[test]
    fn dictionary_region_is_searchable_but_not_emitted() {
        let dict = b"shared-dictionary-content ";
        let record = b"shared-dictionary-content plus new tail";
        let mut data = dict.to_vec();
        let input_start = data.len();
        data.extend_from_slice(record);
        let mut finder = MatchFinder::new(&data, input_start, MatchFinderConfig::fast());
        let tokens = finder.parse();
        // The first token should reference into the dictionary region.
        let first_match = tokens.iter().find_map(|t| t.match_);
        assert!(
            first_match.is_some(),
            "record prefix matches the dictionary"
        );
        // Reconstruction of the input region only.
        let mut out = dict.to_vec();
        for t in &tokens {
            out.extend_from_slice(&data[t.literal_start..t.literal_start + t.literal_len]);
            if let Some(m) = t.match_ {
                let start = out.len() - m.offset;
                for i in 0..m.len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
        assert_eq!(&out[input_start..], record);
    }

    #[test]
    fn common_prefix_counts_exactly() {
        assert_eq!(common_prefix(b"abcdef", b"abcxef", 100), 3);
        assert_eq!(common_prefix(b"abcdef", b"abcdef", 100), 6);
        assert_eq!(common_prefix(b"abcdef", b"abcdef", 4), 4);
        assert_eq!(common_prefix(b"", b"abc", 10), 0);
        assert_eq!(
            common_prefix(b"aaaaaaaaaaaaaaaaaaaab", b"aaaaaaaaaaaaaaaaaaaac", 100),
            20
        );
    }

    #[test]
    fn long_runs_produce_long_matches() {
        let data = vec![b'z'; 10_000];
        let mut finder = MatchFinder::new(&data, 0, MatchFinderConfig::balanced());
        let tokens = finder.parse();
        assert!(
            tokens.len() < 50,
            "a constant run should parse into few tokens"
        );
        assert_eq!(reconstruct(&tokens, &data), data);
    }
}
