//! Zstandard-like codec: LZ77 parse with a large window followed by a
//! canonical-Huffman entropy stage over separated literal and sequence
//! streams, with compression levels and offline dictionary training.
//!
//! This stands in for Zstd in the paper's evaluation: RocksDB's and
//! TierBase's block compressor, "the best trade-off between compression
//! ratio and efficiency for database systems", and the paper's strongest
//! general-purpose dictionary-mode baseline for short records
//! (`Zstd(dict)` in Table 3).
//!
//! ## Format
//!
//! ```text
//! varint  raw_len
//! varint  token_count
//! block   literals   (entropy-coded or raw, see `write_block`)
//! block   sequences  (varint triples lit_len/offset/match_len, entropy-coded or raw)
//! ```
//!
//! Each block starts with a flag byte (0 = raw, 1 = Huffman) and a varint
//! payload length, mirroring Zstd's per-block entropy mode selection.

use crate::error::{CodecError, Result};
use crate::huffman;
use crate::lz77::{MatchFinder, MatchFinderConfig, MIN_MATCH};
use crate::traits::{Codec, DictCodec};
use crate::varint;

/// Zstd-like compressor with a level knob (1 = fastest, 19 = strongest).
#[derive(Debug, Clone)]
pub struct ZstdLike {
    level: i32,
    config: MatchFinderConfig,
}

impl Default for ZstdLike {
    fn default() -> Self {
        Self::new(3)
    }
}

impl ZstdLike {
    /// Create a codec at the given compression level (clamped to 1..=19).
    /// Level 3 mirrors Zstd's default.
    pub fn new(level: i32) -> Self {
        let level = level.clamp(1, 19);
        let config = match level {
            1..=2 => MatchFinderConfig::fast(),
            3..=9 => {
                let mut c = MatchFinderConfig::balanced();
                c.max_chain = 32 * level as usize;
                c
            }
            _ => {
                let mut c = MatchFinderConfig::thorough();
                c.max_chain = 64 * level as usize;
                c
            }
        };
        ZstdLike { level, config }
    }

    /// The configured compression level.
    pub fn level(&self) -> i32 {
        self.level
    }

    fn compress_internal(&self, input: &[u8], dict: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 3 + 32);
        varint::write_usize(&mut out, input.len());
        if input.is_empty() {
            return out;
        }
        let mut data = Vec::with_capacity(dict.len() + input.len());
        data.extend_from_slice(dict);
        data.extend_from_slice(input);
        let mut finder = MatchFinder::new(&data, dict.len(), self.config);
        let tokens = finder.parse();
        varint::write_usize(&mut out, tokens.len());

        // Stream separation: literals in one buffer, sequence triples in another.
        let mut literals = Vec::new();
        let mut sequences = Vec::new();
        for t in &tokens {
            literals.extend_from_slice(&data[t.literal_start..t.literal_start + t.literal_len]);
            varint::write_usize(&mut sequences, t.literal_len);
            match t.match_ {
                Some(m) => {
                    varint::write_usize(&mut sequences, m.offset);
                    varint::write_usize(&mut sequences, m.len - MIN_MATCH);
                }
                None => {
                    // Terminal token: offset 0 marks "no match".
                    varint::write_usize(&mut sequences, 0);
                }
            }
        }
        write_block(&mut out, &literals);
        write_block(&mut out, &sequences);
        out
    }

    fn decompress_internal(&self, input: &[u8], dict: &[u8]) -> Result<Vec<u8>> {
        let (raw_len, pos) = varint::read_usize(input, 0)?;
        if raw_len == 0 {
            return Ok(Vec::new());
        }
        let (token_count, pos) = varint::read_usize(input, pos)?;
        let (literals, pos) = read_block(input, pos)?;
        let (sequences, _pos) = read_block(input, pos)?;

        let mut out = Vec::with_capacity(dict.len() + raw_len);
        out.extend_from_slice(dict);
        let target = dict.len() + raw_len;
        let mut lit_pos = 0usize;
        let mut seq_pos = 0usize;
        for i in 0..token_count {
            let (lit_len, p) = varint::read_usize(&sequences, seq_pos)?;
            seq_pos = p;
            if lit_pos + lit_len > literals.len() {
                return Err(CodecError::UnexpectedEof {
                    context: "zstd literal stream",
                });
            }
            out.extend_from_slice(&literals[lit_pos..lit_pos + lit_len]);
            lit_pos += lit_len;
            let (offset, p) = varint::read_usize(&sequences, seq_pos)?;
            seq_pos = p;
            if offset == 0 {
                // Terminal token; must be the last one.
                if i + 1 != token_count {
                    return Err(CodecError::corrupt("zstd terminal token before end"));
                }
                break;
            }
            let (len_code, p) = varint::read_usize(&sequences, seq_pos)?;
            seq_pos = p;
            let match_len = len_code + MIN_MATCH;
            if offset > out.len() {
                return Err(CodecError::InvalidOffset {
                    offset,
                    position: out.len(),
                });
            }
            let start = out.len() - offset;
            for k in 0..match_len {
                let b = out[start + k];
                out.push(b);
            }
        }
        if out.len() != target {
            return Err(CodecError::corrupt(format!(
                "zstd stream produced {} bytes, expected {}",
                out.len() - dict.len(),
                raw_len
            )));
        }
        out.drain(..dict.len());
        Ok(out)
    }
}

/// Write an entropy-coded block: pick raw or Huffman, whichever is smaller.
fn write_block(out: &mut Vec<u8>, payload: &[u8]) {
    let encoded = huffman::compress(payload);
    if encoded.len() < payload.len() {
        out.push(1);
        varint::write_usize(out, encoded.len());
        out.extend_from_slice(&encoded);
    } else {
        out.push(0);
        varint::write_usize(out, payload.len());
        out.extend_from_slice(payload);
    }
}

/// Read a block written by [`write_block`].
fn read_block(input: &[u8], pos: usize) -> Result<(Vec<u8>, usize)> {
    let flag = *input.get(pos).ok_or(CodecError::UnexpectedEof {
        context: "zstd block flag",
    })?;
    let (len, pos) = varint::read_usize(input, pos + 1)?;
    if pos + len > input.len() {
        return Err(CodecError::UnexpectedEof {
            context: "zstd block payload",
        });
    }
    let payload = &input[pos..pos + len];
    let data = match flag {
        0 => payload.to_vec(),
        1 => huffman::decompress(payload)?,
        _ => return Err(CodecError::corrupt("unknown zstd block flag")),
    };
    Ok((data, pos + len))
}

impl Codec for ZstdLike {
    fn name(&self) -> &str {
        "Zstd-like"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        self.compress_internal(input, &[])
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        self.decompress_internal(input, &[])
    }
}

impl DictCodec for ZstdLike {
    fn compress_with_dict(&self, input: &[u8], dict: &[u8]) -> Vec<u8> {
        self.compress_internal(input, dict)
    }

    fn decompress_with_dict(&self, input: &[u8], dict: &[u8]) -> Result<Vec<u8>> {
        self.decompress_internal(input, dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &ZstdLike, data: &[u8]) {
        let compressed = codec.compress(data);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn roundtrip_across_levels() {
        let data = b"INFO 2023-05-01 connection from 10.0.0.1 established; session=42\n".repeat(64);
        for level in [1, 3, 9, 19] {
            roundtrip(&ZstdLike::new(level), &data);
        }
    }

    #[test]
    fn level_is_clamped() {
        assert_eq!(ZstdLike::new(0).level(), 1);
        assert_eq!(ZstdLike::new(100).level(), 19);
        assert_eq!(ZstdLike::new(5).level(), 5);
    }

    #[test]
    fn higher_levels_do_not_compress_worse_on_redundant_data() {
        let mut data = Vec::new();
        for i in 0..400 {
            data.extend_from_slice(
                format!(
                    "user_id={} action=click page=/home/section/{} ts=16395{:05}\n",
                    10_000 + i,
                    i % 7,
                    i * 13
                )
                .as_bytes(),
            );
        }
        let fast = ZstdLike::new(1).compress(&data).len();
        let strong = ZstdLike::new(19).compress(&data).len();
        assert!(
            strong <= fast,
            "level 19 ({strong}) should be <= level 1 ({fast})"
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let codec = ZstdLike::default();
        roundtrip(&codec, b"");
        roundtrip(&codec, b"a");
        roundtrip(&codec, b"ab");
        roundtrip(&codec, b"zstd");
    }

    #[test]
    fn entropy_stage_beats_plain_lz_on_text() {
        // Text with skewed byte distribution but few long repeats: the
        // Huffman stage should push the ratio below plain LZ4-like.
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(format!("{:08}", i * 7919 % 10_000_000).as_bytes());
        }
        let zstd = ZstdLike::new(3).compress(&data).len();
        let lz4 = crate::lz4like::Lz4Like::new().compress(&data).len();
        assert!(
            zstd < lz4,
            "zstd-like ({zstd}) should beat lz4-like ({lz4}) on digit soup"
        );
    }

    #[test]
    fn dictionary_mode_roundtrips_and_helps_short_records() {
        let codec = ZstdLike::new(3);
        let dict =
            b"{\"event\":\"page_view\",\"user\":\"\",\"url\":\"https://example.com/\",\"ms\":}"
                .to_vec();
        let record =
            b"{\"event\":\"page_view\",\"user\":\"u_8842\",\"url\":\"https://example.com/checkout\",\"ms\":132}";
        let plain = codec.compress(record);
        let with_dict = codec.compress_with_dict(record, &dict);
        assert!(with_dict.len() < plain.len());
        assert_eq!(
            codec.decompress_with_dict(&with_dict, &dict).unwrap(),
            record
        );
    }

    #[test]
    fn corrupt_input_is_rejected() {
        let codec = ZstdLike::default();
        let data = b"hello hello hello hello hello hello".repeat(8);
        let mut compressed = codec.compress(&data);
        compressed.truncate(compressed.len() / 2);
        assert!(codec.decompress(&compressed).is_err());
        assert!(codec.decompress(&[7, 9, 200, 200, 200]).is_err());
    }

    #[test]
    fn block_mode_selection_handles_incompressible_blocks() {
        // Random bytes: Huffman should be skipped (raw flag), total expansion small.
        let mut state = 1u64;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                (state >> 56) as u8
            })
            .collect();
        let codec = ZstdLike::new(3);
        let compressed = codec.compress(&data);
        assert!(compressed.len() < data.len() + data.len() / 16 + 64);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }
}
