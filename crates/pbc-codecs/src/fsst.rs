//! FSST-style string compression: a trained static symbol table of up to 255
//! multi-byte symbols, applied greedily per string.
//!
//! Stands in for FSST (Boncz, Neumann, Leis, VLDB 2020) in the paper's
//! evaluation: "a state-of-the-art general-purpose lightweight compression
//! method which supports line-by-line compression" — i.e. random access to
//! individual records without block decompression. It is also the residual
//! encoder of the paper's `PBC_F` variant.
//!
//! ## Encoding
//!
//! Each output byte is either a symbol code (0..=254) that expands to a
//! 1–8 byte symbol, or the escape code 255 followed by one literal byte.
//! The symbol table is trained offline on sample strings with the iterative
//! "generate candidates from adjacent symbol pairs, keep the highest-gain
//! 255" procedure of the FSST paper.

use std::collections::HashMap;

use crate::error::{CodecError, Result};
use crate::traits::{Codec, TrainableCodec};

/// Escape code marking a literal byte.
pub const ESCAPE: u8 = 255;
/// Maximum number of non-escape symbols.
pub const MAX_SYMBOLS: usize = 255;
/// Maximum symbol length in bytes.
pub const MAX_SYMBOL_LEN: usize = 8;
/// Number of training iterations (the FSST paper uses 5).
const TRAIN_ITERATIONS: usize = 5;

/// A trained FSST symbol table plus the greedy encoder/decoder.
#[derive(Debug, Clone)]
pub struct FsstCodec {
    /// Symbol byte strings indexed by code.
    symbols: Vec<Vec<u8>>,
    /// Lookup from first byte to candidate codes, longest symbol first.
    index: Vec<Vec<u16>>,
}

impl Default for FsstCodec {
    fn default() -> Self {
        FsstCodec::from_symbols(Vec::new())
    }
}

impl FsstCodec {
    /// Build a codec from an explicit symbol list (used by deserialization
    /// and tests). Symbols beyond [`MAX_SYMBOLS`] or longer than
    /// [`MAX_SYMBOL_LEN`] bytes are ignored.
    pub fn from_symbols(symbols: Vec<Vec<u8>>) -> Self {
        let symbols: Vec<Vec<u8>> = symbols
            .into_iter()
            .filter(|s| !s.is_empty() && s.len() <= MAX_SYMBOL_LEN)
            .take(MAX_SYMBOLS)
            .collect();
        let mut index = vec![Vec::new(); 256];
        for (code, sym) in symbols.iter().enumerate() {
            index[sym[0] as usize].push(code as u16);
        }
        // Longest-first so the greedy encoder prefers maximal symbols.
        for bucket in &mut index {
            bucket.sort_by(|&a, &b| symbols[b as usize].len().cmp(&symbols[a as usize].len()));
        }
        FsstCodec { symbols, index }
    }

    /// The trained symbols (exposed for inspection / persistence).
    pub fn symbols(&self) -> &[Vec<u8>] {
        &self.symbols
    }

    /// Encode one string with the trained table (no header, random access).
    pub fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len());
        let mut pos = 0;
        while pos < input.len() {
            match self.longest_symbol_at(input, pos) {
                Some((code, len)) => {
                    out.push(code);
                    pos += len;
                }
                None => {
                    out.push(ESCAPE);
                    out.push(input[pos]);
                    pos += 1;
                }
            }
        }
        out
    }

    /// Decode a string produced by [`FsstCodec::encode`] with the same table.
    pub fn decode(&self, input: &[u8]) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(input.len() * 2);
        let mut pos = 0;
        while pos < input.len() {
            let code = input[pos];
            pos += 1;
            if code == ESCAPE {
                let b = *input.get(pos).ok_or(CodecError::UnexpectedEof {
                    context: "fsst escape byte",
                })?;
                out.push(b);
                pos += 1;
            } else {
                let sym = self
                    .symbols
                    .get(code as usize)
                    .ok_or_else(|| CodecError::corrupt("fsst code not in symbol table"))?;
                out.extend_from_slice(sym);
            }
        }
        Ok(out)
    }

    /// Find the longest symbol matching `input[pos..]`, returning its code
    /// and length.
    #[inline]
    fn longest_symbol_at(&self, input: &[u8], pos: usize) -> Option<(u8, usize)> {
        let rest = &input[pos..];
        for &code in &self.index[rest[0] as usize] {
            let sym = &self.symbols[code as usize];
            if rest.len() >= sym.len() && &rest[..sym.len()] == sym.as_slice() {
                return Some((code as u8, sym.len()));
            }
        }
        None
    }

    /// Serialize the symbol table (count, then length-prefixed symbols).
    pub fn serialize_table(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.symbols.len() as u8);
        for sym in &self.symbols {
            out.push(sym.len() as u8);
            out.extend_from_slice(sym);
        }
        out
    }

    /// Reconstruct a codec from [`FsstCodec::serialize_table`] output.
    /// Returns the codec and the number of bytes consumed.
    pub fn deserialize_table(input: &[u8]) -> Result<(Self, usize)> {
        let count = *input.first().ok_or(CodecError::UnexpectedEof {
            context: "fsst table count",
        })? as usize;
        let mut pos = 1;
        let mut symbols = Vec::with_capacity(count);
        for _ in 0..count {
            let len = *input.get(pos).ok_or(CodecError::UnexpectedEof {
                context: "fsst symbol length",
            })? as usize;
            pos += 1;
            if len == 0 || len > MAX_SYMBOL_LEN || pos + len > input.len() {
                return Err(CodecError::corrupt("invalid fsst symbol length"));
            }
            symbols.push(input[pos..pos + len].to_vec());
            pos += len;
        }
        Ok((FsstCodec::from_symbols(symbols), pos))
    }
}

impl TrainableCodec for FsstCodec {
    /// Train a symbol table with the iterative FSST construction: encode the
    /// sample with the current table, count single symbols and adjacent
    /// symbol pairs, then keep the 255 candidates with the highest gain
    /// (`frequency × encoded-length-saved`).
    fn train(samples: &[&[u8]]) -> Self {
        let mut codec = FsstCodec::from_symbols(Vec::new());
        if samples.is_empty() {
            return codec;
        }
        // Bound training cost on huge samples.
        let budget: usize = 1 << 20;
        let mut used = 0usize;
        let sample_slice: Vec<&[u8]> = samples
            .iter()
            .take_while(|s| {
                let keep = used < budget;
                used += s.len();
                keep
            })
            .copied()
            .collect();

        for _ in 0..TRAIN_ITERATIONS {
            // pbc-allow(determinism): gains drain into a fully tie-broken sort (gain, then symbol bytes); iteration order never reaches the output
            let mut gains: HashMap<Vec<u8>, u64> = HashMap::new();
            for &sample in &sample_slice {
                // Walk the sample as the current table would encode it and
                // collect counts for symbols and concatenations of adjacent
                // symbols (the candidate set of the next iteration).
                let mut pos = 0;
                let mut prev: Option<(usize, usize)> = None; // (start, len)
                while pos < sample.len() {
                    let len = match codec.longest_symbol_at(sample, pos) {
                        Some((_, l)) => l,
                        None => 1,
                    };
                    let cur = (pos, len);
                    *gains.entry(sample[pos..pos + len].to_vec()).or_insert(0) += len as u64;
                    if let Some((ps, pl)) = prev {
                        let combined_len = pl + len;
                        if combined_len <= MAX_SYMBOL_LEN {
                            *gains
                                .entry(sample[ps..ps + combined_len].to_vec())
                                .or_insert(0) += combined_len as u64;
                        }
                    }
                    prev = Some(cur);
                    pos += len;
                }
            }
            // Gain of a 1-byte symbol is marginal (it saves the escape byte),
            // so halve it to prefer longer symbols, like the reference
            // implementation's gain = freq * len heuristic does implicitly.
            let mut candidates: Vec<(Vec<u8>, u64)> = gains
                .into_iter()
                .map(|(sym, g)| {
                    let adjusted = if sym.len() == 1 { g / 2 } else { g };
                    (sym, adjusted)
                })
                .filter(|&(_, g)| g > 0)
                .collect();
            candidates.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            candidates.truncate(MAX_SYMBOLS);
            codec = FsstCodec::from_symbols(candidates.into_iter().map(|(s, _)| s).collect());
        }
        codec
    }
}

impl Codec for FsstCodec {
    fn name(&self) -> &str {
        "FSST-like"
    }

    /// Compress without embedding the symbol table (the table is part of the
    /// trained codec, as in the paper's line-by-line setting).
    fn compress(&self, input: &[u8]) -> Vec<u8> {
        self.encode(input)
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        self.decode(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url_samples() -> Vec<Vec<u8>> {
        (0..500)
            .map(|i| {
                format!(
                    "https://www.example.com/products/category-{}/item_{:05}?session=abcdef{:04}&ref=homepage",
                    i % 12,
                    i,
                    i * 3 % 10000
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn untrained_codec_escapes_everything_and_roundtrips() {
        let codec = FsstCodec::default();
        let data = b"plain text";
        let enc = codec.encode(data);
        assert_eq!(enc.len(), data.len() * 2);
        assert_eq!(codec.decode(&enc).unwrap(), data);
    }

    #[test]
    fn trained_codec_compresses_structured_strings() {
        let samples = url_samples();
        let refs: Vec<&[u8]> = samples.iter().map(|s| s.as_slice()).collect();
        let codec = FsstCodec::train(&refs);
        assert!(!codec.symbols().is_empty());
        let record = &samples[123];
        let enc = codec.encode(record);
        assert!(
            enc.len() * 2 < record.len(),
            "urls should compress at least 2x: {} of {}",
            enc.len(),
            record.len()
        );
        assert_eq!(codec.decode(&enc).unwrap(), *record);
    }

    #[test]
    fn unseen_bytes_still_roundtrip_via_escape() {
        let samples = url_samples();
        let refs: Vec<&[u8]> = samples.iter().map(|s| s.as_slice()).collect();
        let codec = FsstCodec::train(&refs);
        let data = "完全に異なる内容 \u{1F600} byte soup \x00\x01\x02".as_bytes();
        let enc = codec.encode(data);
        assert_eq!(codec.decode(&enc).unwrap(), data);
    }

    #[test]
    fn symbols_respect_length_and_count_limits() {
        let samples = url_samples();
        let refs: Vec<&[u8]> = samples.iter().map(|s| s.as_slice()).collect();
        let codec = FsstCodec::train(&refs);
        assert!(codec.symbols().len() <= MAX_SYMBOLS);
        assert!(codec
            .symbols()
            .iter()
            .all(|s| s.len() <= MAX_SYMBOL_LEN && !s.is_empty()));
    }

    #[test]
    fn table_serialization_roundtrips() {
        let samples = url_samples();
        let refs: Vec<&[u8]> = samples.iter().map(|s| s.as_slice()).collect();
        let codec = FsstCodec::train(&refs);
        let table = codec.serialize_table();
        let (restored, consumed) = FsstCodec::deserialize_table(&table).unwrap();
        assert_eq!(consumed, table.len());
        assert_eq!(restored.symbols(), codec.symbols());
        let record = b"https://www.example.com/products/category-3/item_00042";
        assert_eq!(restored.decode(&codec.encode(record)).unwrap(), record);
    }

    #[test]
    fn corrupt_code_stream_is_rejected() {
        // A code pointing past the symbol table must error, not panic.
        let codec = FsstCodec::from_symbols(vec![b"ab".to_vec()]);
        assert!(codec.decode(&[200]).is_err());
        // Escape with no following byte.
        assert!(codec.decode(&[ESCAPE]).is_err());
    }

    #[test]
    fn empty_input_encodes_to_empty() {
        let codec = FsstCodec::default();
        assert!(codec.encode(b"").is_empty());
        assert_eq!(codec.decode(b"").unwrap(), b"");
    }

    #[test]
    fn training_on_empty_sample_is_safe() {
        let codec = FsstCodec::train(&[]);
        assert!(codec.symbols().is_empty());
        let codec = FsstCodec::train(&[b"".as_slice()]);
        let enc = codec.encode(b"abc");
        assert_eq!(codec.decode(&enc).unwrap(), b"abc");
    }
}
