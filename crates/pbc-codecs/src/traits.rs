//! Codec traits shared by the baseline compressors and PBC variants.

use crate::error::Result;

/// A stateless (or pre-trained) compressor/decompressor over byte buffers.
///
/// `compress` is infallible: every codec in this crate can represent
/// arbitrary byte input (in the worst case as a literal run). `decompress`
/// validates the stream and may fail on corrupt input.
pub trait Codec {
    /// Human-readable name used in benchmark tables ("Zstd-like", "PBC", ...).
    fn name(&self) -> &str;

    /// Compress `input` into a fresh buffer.
    fn compress(&self, input: &[u8]) -> Vec<u8>;

    /// Decompress a buffer previously produced by [`Codec::compress`].
    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>>;

    /// Compression ratio (compressed size / raw size) for a given input.
    ///
    /// Matches the paper's definition: *smaller is better*, 1.0 means no
    /// compression. Returns 1.0 for empty input.
    fn ratio(&self, input: &[u8]) -> f64 {
        if input.is_empty() {
            return 1.0;
        }
        self.compress(input).len() as f64 / input.len() as f64
    }
}

/// A codec whose effectiveness on short records can be improved by an
/// offline training phase over sample data (Zstd dictionary training, FSST
/// symbol table construction, PBC pattern extraction).
pub trait TrainableCodec: Sized {
    /// Train the codec on a sample of records.
    fn train(samples: &[&[u8]]) -> Self;
}

/// A codec that can optionally use a shared dictionary for compression of
/// short, individually-compressed records.
pub trait DictCodec: Codec {
    /// Compress with a shared dictionary (prepended to the match window).
    fn compress_with_dict(&self, input: &[u8], dict: &[u8]) -> Vec<u8>;

    /// Decompress a record compressed with [`DictCodec::compress_with_dict`].
    fn decompress_with_dict(&self, input: &[u8], dict: &[u8]) -> Result<Vec<u8>>;
}

/// Convenience helpers for measuring corpora made of many records.
pub trait RecordCorpusExt: Codec {
    /// Compress every record individually and return
    /// `(total_compressed_bytes, total_raw_bytes)`.
    fn compress_records(&self, records: &[Vec<u8>]) -> (usize, usize) {
        let mut compressed = 0usize;
        let mut raw = 0usize;
        for rec in records {
            compressed += self.compress(rec).len();
            raw += rec.len();
        }
        (compressed, raw)
    }

    /// Per-record compression ratio over a corpus (compressed / raw).
    fn corpus_ratio(&self, records: &[Vec<u8>]) -> f64 {
        let (c, r) = self.compress_records(records);
        if r == 0 {
            1.0
        } else {
            c as f64 / r as f64
        }
    }
}

impl<T: Codec + ?Sized> RecordCorpusExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial codec used to exercise the default trait methods.
    struct Identity;

    impl Codec for Identity {
        fn name(&self) -> &str {
            "identity"
        }
        fn compress(&self, input: &[u8]) -> Vec<u8> {
            input.to_vec()
        }
        fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
            Ok(input.to_vec())
        }
    }

    #[test]
    fn ratio_of_identity_is_one() {
        let c = Identity;
        assert_eq!(c.ratio(b"hello world"), 1.0);
        assert_eq!(c.ratio(b""), 1.0);
    }

    #[test]
    fn corpus_helpers_accumulate() {
        let c = Identity;
        let records = vec![b"aaaa".to_vec(), b"bb".to_vec()];
        let (comp, raw) = c.compress_records(&records);
        assert_eq!(comp, 6);
        assert_eq!(raw, 6);
        assert_eq!(c.corpus_ratio(&records), 1.0);
        assert_eq!(c.corpus_ratio(&[]), 1.0);
    }
}
