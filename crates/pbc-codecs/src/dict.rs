//! Offline dictionary training for short-record compression.
//!
//! Stands in for `zstd --train`: the paper's `LZ4(dict)` and `Zstd(dict)`
//! baselines compress each short record with a dictionary trained offline on
//! sampled raw data (Section 7.2.1), which is the only way the LZ family
//! becomes competitive on records of ~50–300 bytes.
//!
//! The trainer here uses a frequency-based fragment cover: it counts
//! fixed-length fragments over the sample, scores them by
//! `frequency × length` gain, and concatenates the top fragments (most
//! frequent last, so they sit closest to the window end where short offsets
//! reach them) until the dictionary budget is filled.

use std::collections::HashMap;

/// Default dictionary size in bytes, matching Zstd's common default (110 KiB
/// is Zstd's, but short-record workloads saturate much earlier; 16 KiB keeps
/// training fast while capturing the template content).
pub const DEFAULT_DICT_SIZE: usize = 16 * 1024;

/// Fragment lengths examined during training.
const FRAGMENT_LENGTHS: [usize; 3] = [8, 16, 32];

/// A trained compression dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dictionary {
    bytes: Vec<u8>,
}

impl Dictionary {
    /// Train a dictionary of at most `max_size` bytes from sample records.
    pub fn train(samples: &[&[u8]], max_size: usize) -> Self {
        if samples.is_empty() || max_size == 0 {
            return Dictionary { bytes: Vec::new() };
        }
        // Count fragments of several lengths across the samples.
        // pbc-allow(determinism): counts drain into a fully tie-broken sort (score, then fragment bytes); iteration order never reaches the output
        let mut counts: HashMap<&[u8], u64> = HashMap::new();
        for &sample in samples {
            for &len in &FRAGMENT_LENGTHS {
                if sample.len() < len {
                    continue;
                }
                // Step by len/2 so overlapping structure is still seen while
                // keeping training linear in the sample size.
                let step = (len / 2).max(1);
                let mut pos = 0;
                while pos + len <= sample.len() {
                    *counts.entry(&sample[pos..pos + len]).or_insert(0) += 1;
                    pos += step;
                }
            }
        }
        // Keep fragments that appear more than once, scored by saved bytes.
        let mut scored: Vec<(&[u8], u64)> = counts
            .into_iter()
            .filter(|&(_, c)| c > 1)
            .map(|(frag, c)| (frag, c * frag.len() as u64))
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

        // Greedily append fragments, skipping ones already contained in the
        // dictionary, least valuable first so the most valuable content ends
        // up nearest the end of the dictionary (shortest offsets).
        let mut selected: Vec<&[u8]> = Vec::new();
        let mut total = 0usize;
        for (frag, _) in scored {
            if total + frag.len() > max_size {
                continue;
            }
            if selected.iter().any(|s| contains(s, frag)) {
                continue;
            }
            total += frag.len();
            selected.push(frag);
            if total >= max_size {
                break;
            }
        }
        let mut bytes = Vec::with_capacity(total);
        for frag in selected.iter().rev() {
            bytes.extend_from_slice(frag);
        }
        Dictionary { bytes }
    }

    /// Train with the default dictionary budget.
    pub fn train_default(samples: &[&[u8]]) -> Self {
        Self::train(samples, DEFAULT_DICT_SIZE)
    }

    /// The raw dictionary content, to be passed to
    /// [`crate::traits::DictCodec`] methods.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Size of the dictionary in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the dictionary is empty (training found no repeated content).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Whether `haystack` contains `needle` as a contiguous subslice.
fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.len() > haystack.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Codec, DictCodec};
    use crate::zstdlike::ZstdLike;

    fn sample_records() -> Vec<Vec<u8>> {
        (0..200)
            .map(|i| {
                format!(
                    "{{\"symbol\": \"IBM\", \"side\": \"B\", \"quantity\": {}, \"price\": {}.25, \"timestamp\": 16395740{:02}}}",
                    100 + i,
                    50 + (i % 10),
                    i % 100
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn training_finds_shared_template_content() {
        let records = sample_records();
        let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
        let dict = Dictionary::train(&refs, 4096);
        assert!(!dict.is_empty());
        assert!(dict.len() <= 4096);
        // The shared JSON keys must appear in the dictionary.
        assert!(contains(dict.as_bytes(), b"\"symbol\""));
    }

    #[test]
    fn dictionary_improves_per_record_ratio() {
        let records = sample_records();
        let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
        let dict = Dictionary::train_default(&refs);
        let codec = ZstdLike::new(3);
        let rec = &records[7];
        let plain = codec.compress(rec).len();
        let with_dict = codec.compress_with_dict(rec, dict.as_bytes()).len();
        assert!(
            with_dict < plain,
            "dictionary-compressed {} should beat plain {}",
            with_dict,
            plain
        );
        assert_eq!(
            codec
                .decompress_with_dict(
                    &codec.compress_with_dict(rec, dict.as_bytes()),
                    dict.as_bytes()
                )
                .unwrap(),
            *rec
        );
    }

    #[test]
    fn empty_and_degenerate_samples() {
        assert!(Dictionary::train(&[], 1024).is_empty());
        let unique: Vec<Vec<u8>> = (0..50u64)
            .map(|i| i.to_be_bytes().to_vec().to_vec())
            .collect();
        let refs: Vec<&[u8]> = unique.iter().map(|r| r.as_slice()).collect();
        // Records shorter than the smallest fragment length produce an empty dict.
        let dict = Dictionary::train(&refs, 1024);
        assert!(dict.len() <= 1024);
        assert!(Dictionary::train(&refs, 0).is_empty());
    }

    #[test]
    fn budget_is_respected() {
        let records = sample_records();
        let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
        for budget in [64, 256, 1024] {
            let dict = Dictionary::train(&refs, budget);
            assert!(dict.len() <= budget, "budget {budget}, got {}", dict.len());
        }
    }
}
