//! # pbc-codecs
//!
//! From-scratch implementations of the baseline compressors the PBC paper
//! (SIGMOD 2023, "High-Ratio Compression for Machine-Generated Data")
//! evaluates against, plus the coding primitives shared by the PBC core
//! crate.
//!
//! The crate intentionally contains no third-party compression dependencies:
//! every codec is implemented here so the reproduction is self-contained and
//! so the benchmark harness compares *algorithm classes* rather than binary
//! artifacts.
//!
//! ## Codec inventory
//!
//! | Module | Stands in for | Algorithm class |
//! |---|---|---|
//! | [`lz4like`] | LZ4 | LZ77 hash-chain matching, byte-oriented token format, no entropy stage |
//! | [`snappylike`] | Snappy | LZ77 with Snappy-style tag bytes |
//! | [`zstdlike`] | Zstandard | LZ77 (large window) + canonical Huffman entropy stage, compression levels, offline dictionary training |
//! | [`lzmalike`] | LZMA | LZ77 + adaptive binary range coder with context modelling |
//! | [`fsst`] | FSST | Trained static symbol table (≤255 symbols of 1–8 bytes), per-string random access |
//! | [`huffman`] | — | Canonical Huffman coder used by `zstdlike` and available as a residual encoder |
//! | [`range_coder`] | — | Adaptive binary range coder used by `lzmalike` |
//! | [`dict`] | `zstd --train` | Sample-based dictionary training for short-record compression |
//!
//! ## Primitives
//!
//! [`varint`] (LEB128), [`bitstream`] (MSB-first bit IO), [`lz77`]
//! (hash-chain match finder) are shared by the codecs and re-used by
//! `pbc-core` field encoders.
//!
//! ## Quick example
//!
//! ```
//! use pbc_codecs::{Codec, zstdlike::ZstdLike};
//!
//! let codec = ZstdLike::new(3);
//! let data = b"machine-generated machine-generated machine-generated data".to_vec();
//! let compressed = codec.compress(&data);
//! assert!(compressed.len() < data.len());
//! assert_eq!(codec.decompress(&compressed).unwrap(), data);
//! ```

#![forbid(unsafe_code)]

pub mod bitstream;
pub mod dict;
pub mod error;
pub mod fsst;
pub mod huffman;
pub mod lz4like;
pub mod lz77;
pub mod lzmalike;
pub mod range_coder;
pub mod snappylike;
pub mod traits;
pub mod varint;
pub mod zstdlike;

pub use dict::Dictionary;
pub use error::{CodecError, Result};
pub use fsst::FsstCodec;
pub use lz4like::Lz4Like;
pub use lzmalike::LzmaLike;
pub use snappylike::SnappyLike;
pub use traits::{Codec, DictCodec, RecordCorpusExt, TrainableCodec};
pub use zstdlike::ZstdLike;
