//! Error types shared by all codecs in this crate.

use std::fmt;

/// Result alias used throughout `pbc-codecs`.
pub type Result<T> = std::result::Result<T, CodecError>;

/// Errors produced while decoding compressed payloads.
///
/// Compression itself is infallible for every codec in this crate (the
/// output format can always represent arbitrary input), so only the decode
/// path returns `Result`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The compressed stream ended before the declared payload was complete.
    UnexpectedEof {
        /// What the decoder was reading when it ran out of bytes.
        context: &'static str,
    },
    /// A structural invariant of the compressed format was violated.
    Corrupt {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// A back-reference pointed before the start of the output buffer.
    InvalidOffset {
        /// The offending offset.
        offset: usize,
        /// Number of bytes decoded so far.
        position: usize,
    },
    /// The payload references a dictionary that was not supplied.
    MissingDictionary,
    /// The declared uncompressed size exceeds the configured safety limit.
    SizeLimitExceeded {
        /// Declared size in bytes.
        declared: usize,
        /// Maximum allowed size in bytes.
        limit: usize,
    },
}

impl CodecError {
    /// Convenience constructor for [`CodecError::Corrupt`].
    pub fn corrupt(reason: impl Into<String>) -> Self {
        CodecError::Corrupt {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { context } => {
                write!(
                    f,
                    "unexpected end of compressed stream while reading {context}"
                )
            }
            CodecError::Corrupt { reason } => write!(f, "corrupt compressed stream: {reason}"),
            CodecError::InvalidOffset { offset, position } => write!(
                f,
                "invalid back-reference offset {offset} at output position {position}"
            ),
            CodecError::MissingDictionary => {
                write!(
                    f,
                    "payload was compressed with a dictionary that was not supplied"
                )
            }
            CodecError::SizeLimitExceeded { declared, limit } => write!(
                f,
                "declared uncompressed size {declared} exceeds limit {limit}"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let eof = CodecError::UnexpectedEof {
            context: "literal run",
        };
        assert!(eof.to_string().contains("literal run"));

        let corrupt = CodecError::corrupt("bad magic");
        assert!(corrupt.to_string().contains("bad magic"));

        let off = CodecError::InvalidOffset {
            offset: 10,
            position: 4,
        };
        assert!(off.to_string().contains("10"));
        assert!(off.to_string().contains('4'));

        let limit = CodecError::SizeLimitExceeded {
            declared: 100,
            limit: 10,
        };
        assert!(limit.to_string().contains("100"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CodecError::MissingDictionary, CodecError::MissingDictionary);
        assert_ne!(CodecError::corrupt("a"), CodecError::corrupt("b"),);
    }
}
