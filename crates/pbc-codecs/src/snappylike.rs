//! Snappy-style codec: LZ77 parse with Snappy's tag-byte serialization.
//!
//! Stands in for Google Snappy in the paper's evaluation (used by LevelDB):
//! tuned for speed over ratio. The format mirrors Snappy's element types —
//! literal tags with 2-bit length-size, copy tags with 1-, 2- and 4-byte
//! offsets — behind a varint-encoded uncompressed length header.

use crate::error::{CodecError, Result};
use crate::lz77::{MatchFinder, MatchFinderConfig, MIN_MATCH};
use crate::traits::Codec;
use crate::varint;

/// Snappy-like compressor (see module docs).
#[derive(Debug, Clone)]
pub struct SnappyLike {
    config: MatchFinderConfig,
}

impl Default for SnappyLike {
    fn default() -> Self {
        Self::new()
    }
}

/// Element tags (low two bits of each tag byte), mirroring Snappy.
const TAG_LITERAL: u8 = 0b00;
const TAG_COPY1: u8 = 0b01;
const TAG_COPY2: u8 = 0b10;
const TAG_COPY4: u8 = 0b11;

impl SnappyLike {
    /// Create the codec with a fast match-finder profile restricted to
    /// Snappy's 64 KiB window.
    pub fn new() -> Self {
        let mut config = MatchFinderConfig::fast();
        config.window = 64 * 1024 - 1;
        config.max_chain = 8;
        SnappyLike { config }
    }

    fn emit_literal(out: &mut Vec<u8>, lit: &[u8]) {
        let mut rest = lit;
        while !rest.is_empty() {
            // Snappy literals can describe at most 2^32 bytes; we chunk at
            // 2^16 to keep the tag small, which costs nothing measurable.
            let chunk_len = rest.len().min(65536);
            let n = chunk_len - 1;
            if n < 60 {
                out.push(((n as u8) << 2) | TAG_LITERAL);
            } else if n < 256 {
                out.push((60 << 2) | TAG_LITERAL);
                out.push(n as u8);
            } else {
                out.push((61 << 2) | TAG_LITERAL);
                out.extend_from_slice(&(n as u16).to_le_bytes());
            }
            out.extend_from_slice(&rest[..chunk_len]);
            rest = &rest[chunk_len..];
        }
    }

    fn emit_copy(out: &mut Vec<u8>, offset: usize, mut len: usize) {
        // Long matches are split into chunks of at most 64 bytes, like Snappy.
        while len > 0 {
            let chunk = if len > 64 && len < 68 {
                // Avoid leaving a tail shorter than MIN_MATCH.
                60
            } else {
                len.min(64)
            };
            if (4..=11).contains(&chunk) && offset < 2048 {
                // COPY1: 3-bit length (chunk-4), 11-bit offset.
                let tag = TAG_COPY1 | (((chunk - 4) as u8) << 2) | (((offset >> 8) as u8) << 5);
                out.push(tag);
                out.push((offset & 0xff) as u8);
            } else if offset < 65536 {
                // COPY2: 6-bit length (chunk-1), 16-bit offset.
                out.push(TAG_COPY2 | (((chunk - 1) as u8) << 2));
                out.extend_from_slice(&(offset as u16).to_le_bytes());
            } else {
                // COPY4: 6-bit length, 32-bit offset.
                out.push(TAG_COPY4 | (((chunk - 1) as u8) << 2));
                out.extend_from_slice(&(offset as u32).to_le_bytes());
            }
            len -= chunk;
        }
    }
}

impl Codec for SnappyLike {
    fn name(&self) -> &str {
        "Snappy-like"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        varint::write_usize(&mut out, input.len());
        if input.is_empty() {
            return out;
        }
        let mut finder = MatchFinder::new(input, 0, self.config);
        let tokens = finder.parse();
        for t in &tokens {
            let lit = &input[t.literal_start..t.literal_start + t.literal_len];
            if !lit.is_empty() {
                Self::emit_literal(&mut out, lit);
            }
            if let Some(m) = t.match_ {
                debug_assert!(m.len >= MIN_MATCH);
                Self::emit_copy(&mut out, m.offset, m.len);
            }
        }
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let (raw_len, mut pos) = varint::read_usize(input, 0)?;
        let mut out = Vec::with_capacity(raw_len);
        while out.len() < raw_len {
            let tag = *input.get(pos).ok_or(CodecError::UnexpectedEof {
                context: "snappy tag",
            })?;
            pos += 1;
            match tag & 0b11 {
                TAG_LITERAL => {
                    let n = (tag >> 2) as usize;
                    let len = if n < 60 {
                        n + 1
                    } else {
                        let extra = n - 59;
                        if pos + extra > input.len() {
                            return Err(CodecError::UnexpectedEof {
                                context: "snappy literal length",
                            });
                        }
                        let mut v = 0usize;
                        for i in 0..extra {
                            v |= (input[pos + i] as usize) << (8 * i);
                        }
                        pos += extra;
                        v + 1
                    };
                    if pos + len > input.len() {
                        return Err(CodecError::UnexpectedEof {
                            context: "snappy literal bytes",
                        });
                    }
                    out.extend_from_slice(&input[pos..pos + len]);
                    pos += len;
                }
                kind @ (TAG_COPY1 | TAG_COPY2 | TAG_COPY4) => {
                    let (len, offset) = match kind {
                        TAG_COPY1 => {
                            let len = ((tag >> 2) & 0b111) as usize + 4;
                            let hi = (tag >> 5) as usize;
                            let lo = *input.get(pos).ok_or(CodecError::UnexpectedEof {
                                context: "snappy copy1 offset",
                            })? as usize;
                            pos += 1;
                            (len, (hi << 8) | lo)
                        }
                        TAG_COPY2 => {
                            let len = (tag >> 2) as usize + 1;
                            if pos + 2 > input.len() {
                                return Err(CodecError::UnexpectedEof {
                                    context: "snappy copy2 offset",
                                });
                            }
                            let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
                            pos += 2;
                            (len, offset)
                        }
                        _ => {
                            let len = (tag >> 2) as usize + 1;
                            if pos + 4 > input.len() {
                                return Err(CodecError::UnexpectedEof {
                                    context: "snappy copy4 offset",
                                });
                            }
                            let offset = u32::from_le_bytes([
                                input[pos],
                                input[pos + 1],
                                input[pos + 2],
                                input[pos + 3],
                            ]) as usize;
                            pos += 4;
                            (len, offset)
                        }
                    };
                    if offset == 0 || offset > out.len() {
                        return Err(CodecError::InvalidOffset {
                            offset,
                            position: out.len(),
                        });
                    }
                    let start = out.len() - offset;
                    for i in 0..len {
                        let b = out[start + i];
                        out.push(b);
                    }
                }
                _ => unreachable!("two-bit tag"),
            }
        }
        if out.len() != raw_len {
            return Err(CodecError::corrupt("snappy stream produced wrong length"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let codec = SnappyLike::new();
        let compressed = codec.compress(data);
        assert_eq!(
            codec.decompress(&compressed).unwrap(),
            data,
            "len {}",
            data.len()
        );
    }

    #[test]
    fn roundtrip_basic_inputs() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"snappy");
        roundtrip(&b"0123456789".repeat(100));
        roundtrip(&vec![0u8; 70_000]);
    }

    #[test]
    fn roundtrip_log_like_text() {
        let mut data = Vec::new();
        for i in 0..500 {
            data.extend_from_slice(
                format!(
                    "2023-05-0{} 12:00:{:02} INFO dfs.DataNode: Received block blk_{} of size {}\n",
                    (i % 9) + 1,
                    i % 60,
                    1000000 + i * 37,
                    67108864 - i
                )
                .as_bytes(),
            );
        }
        let codec = SnappyLike::new();
        let compressed = codec.compress(&data);
        assert!(compressed.len() < data.len() / 2);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn all_copy_tag_variants_roundtrip() {
        // Short offsets (COPY1 territory): small repeated chunk.
        let mut data = b"abcdefgh".repeat(4);
        // Medium offsets (COPY2): repeat after ~5 KiB.
        data.extend(vec![b'-'; 5000]);
        data.extend_from_slice(b"abcdefghabcdefghabcdefgh");
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let codec = SnappyLike::new();
        let data = b"repetitive repetitive repetitive".repeat(10);
        let mut compressed = codec.compress(&data);
        compressed.truncate(compressed.len() - 3);
        assert!(codec.decompress(&compressed).is_err());
    }

    #[test]
    fn invalid_offset_is_an_error() {
        // Hand-crafted: declared length 8, then a copy referring back 100 bytes.
        let mut buf = Vec::new();
        varint::write_usize(&mut buf, 8);
        buf.push((3 << 2) | TAG_LITERAL); // 4 literal bytes
        buf.extend_from_slice(b"abcd");
        buf.push(TAG_COPY2 | (3 << 2)); // len 4
        buf.extend_from_slice(&100u16.to_le_bytes());
        let codec = SnappyLike::new();
        assert!(matches!(
            codec.decompress(&buf),
            Err(CodecError::InvalidOffset { .. })
        ));
    }

    #[test]
    fn ratio_reported_matches_sizes() {
        let codec = SnappyLike::new();
        let data = b"aaaaaaaaaabbbbbbbbbb".repeat(64);
        let ratio = codec.ratio(&data);
        let expected = codec.compress(&data).len() as f64 / data.len() as f64;
        assert!((ratio - expected).abs() < 1e-12);
        assert!(ratio < 0.3);
    }
}
