//! MSB-first bit-oriented readers and writers.
//!
//! Used by the canonical Huffman coder ([`crate::huffman`]) and available to
//! any encoder that needs sub-byte packing (e.g. PBC's optional entropy
//! encoding of residual subsequences, Section 5.2 of the paper).

use crate::error::{CodecError, Result};

/// Writes bits most-significant-bit first into a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the final byte of `buf` (0..8). 0 means the last
    /// byte is full (or the buffer is empty).
    bit_pos: u8,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with pre-allocated capacity (in bytes).
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bytes),
            bit_pos: 0,
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Append the `count` low bits of `value`, MSB first. `count` ≤ 57 keeps
    /// the shift arithmetic safely inside a `u64`.
    pub fn write_bits(&mut self, value: u64, count: u8) {
        debug_assert!(count <= 57, "write_bits supports at most 57 bits per call");
        if count == 0 {
            return;
        }
        let mut remaining = count;
        // Mask off anything above `count` bits so callers can pass raw words.
        let value = if count == 64 {
            value
        } else {
            value & ((1u64 << count) - 1)
        };
        while remaining > 0 {
            if self.bit_pos == 0 {
                // Previous byte is full (or buffer is empty): start a new byte.
                self.buf.push(0);
            }
            let free = 8 - self.bit_pos;
            let take = free.min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u64 << take) - 1)) as u8;
            // pbc-allow(panic): a byte is pushed before any partial-bit write; buf is never empty here
            let last = self.buf.last_mut().expect("buffer has a current byte");
            *last |= chunk << (free - take);
            self.bit_pos = (self.bit_pos + take) % 8;
            remaining -= take;
        }
    }

    /// Append a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(u64::from(bit), 1);
    }

    /// Pad the final byte with zero bits and return the underlying buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads bits most-significant-bit first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Number of bits remaining.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Read `count` bits (MSB first) as the low bits of the returned value.
    pub fn read_bits(&mut self, count: u8) -> Result<u64> {
        if count == 0 {
            return Ok(0);
        }
        if self.remaining_bits() < count as usize {
            return Err(CodecError::UnexpectedEof {
                context: "bitstream",
            });
        }
        let mut value = 0u64;
        let mut remaining = count;
        while remaining > 0 {
            let byte_idx = self.pos / 8;
            let bit_off = (self.pos % 8) as u8;
            let available = 8 - bit_off;
            let take = available.min(remaining);
            let byte = self.buf[byte_idx];
            let chunk = (byte >> (available - take)) & ((1u16 << take) - 1) as u8;
            value = (value << take) | u64::from(chunk);
            self.pos += take as usize;
            remaining -= take;
        }
        Ok(value)
    }

    /// Read a single bit.
    pub fn read_bit(&mut self) -> Result<bool> {
        Ok(self.read_bits(1)? == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len());
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let values: Vec<(u64, u8)> = vec![
            (0b101, 3),
            (0xff, 8),
            (0, 1),
            (0b1100110011, 10),
            (12345, 17),
            (1, 1),
            ((1 << 33) - 7, 34),
        ];
        let mut w = BitWriter::new();
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n).unwrap(), v, "value with {n} bits");
        }
    }

    #[test]
    fn writer_masks_extra_high_bits() {
        let mut w = BitWriter::new();
        // Only the low 4 bits of 0xfff should be written.
        w.write_bits(0xfff, 4);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0xf);
    }

    #[test]
    fn reading_past_end_fails() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        // The final byte is zero-padded so 8 bits are readable, but not 9.
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0x7f, 7);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(3, 2);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn byte_aligned_writes_match_plain_bytes() {
        let mut w = BitWriter::new();
        for b in [0xde, 0xad, 0xbe, 0xef] {
            w.write_bits(b as u64, 8);
        }
        assert_eq!(w.finish(), vec![0xde, 0xad, 0xbe, 0xef]);
    }
}
