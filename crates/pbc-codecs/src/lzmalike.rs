//! LZMA-like codec: high-effort LZ77 parse entropy-coded with an adaptive
//! binary range coder and context modelling.
//!
//! This stands in for LZMA in the paper's evaluation ("the compression
//! method with the highest compression ratio in the LZ family"), used both
//! as a file-compression baseline (Table 4) and as the heavy backend of
//! `PBC_L` and of the LogReducer-like log compressor (Table 5).
//!
//! ## Model
//!
//! * one `is_match` bit per element, conditioned on the previous element kind;
//! * literal bytes coded through a bit-tree with a context selected by the
//!   high bits of the previous byte (LZMA's literal context bits, `lc = 3`);
//! * match lengths coded as an 8-bit bit-tree plus a rare direct-bit escape;
//! * offsets coded as a 6-bit "slot" bit-tree (log2 bucket) followed by the
//!   remaining bits coded directly, mirroring LZMA's distance slots.

use crate::error::{CodecError, Result};
use crate::lz77::{MatchFinder, MatchFinderConfig, MIN_MATCH};
use crate::range_coder::{BitModel, RangeDecoder, RangeEncoder};
use crate::traits::Codec;
use crate::varint;

/// Literal context bits (how many high bits of the previous byte select the
/// literal coder context).
const LC: u32 = 3;
/// Length values below this are coded with the bit-tree; larger lengths use
/// the escape path.
const LEN_TREE_LIMIT: usize = 254;
/// Escape value in the length tree signalling a direct 32-bit length.
const LEN_ESCAPE: u32 = 255;

/// LZMA-like compressor (see module docs).
#[derive(Debug, Clone)]
pub struct LzmaLike {
    config: MatchFinderConfig,
    /// Preset level (1..=9); kept for reporting, affects match effort.
    level: i32,
}

impl Default for LzmaLike {
    fn default() -> Self {
        Self::new(6)
    }
}

/// The full probability model, reset per compressed buffer.
struct Model {
    is_match: [BitModel; 2],
    literal: Vec<[BitModel; 256]>,
    len_tree: Vec<BitModel>,
    slot_tree: Vec<BitModel>,
}

impl Model {
    fn new() -> Self {
        Model {
            is_match: [BitModel::new(); 2],
            literal: vec![[BitModel::new(); 256]; 1 << LC],
            len_tree: vec![BitModel::new(); 512],
            slot_tree: vec![BitModel::new(); 128],
        }
    }

    #[inline]
    fn literal_ctx(prev_byte: u8) -> usize {
        (prev_byte >> (8 - LC)) as usize
    }
}

impl LzmaLike {
    /// Create the codec at a given preset level (1..=9, default 6).
    pub fn new(level: i32) -> Self {
        let level = level.clamp(1, 9);
        let mut config = MatchFinderConfig::thorough();
        config.max_chain = 64 * level as usize;
        LzmaLike { config, level }
    }

    /// The configured preset level.
    pub fn level(&self) -> i32 {
        self.level
    }

    fn encode_length(enc: &mut RangeEncoder, model: &mut Model, len: usize) {
        let code = len - MIN_MATCH;
        if code < LEN_TREE_LIMIT {
            enc.encode_bittree(&mut model.len_tree, 8, code as u32);
        } else {
            enc.encode_bittree(&mut model.len_tree, 8, LEN_ESCAPE);
            enc.encode_direct(code as u32, 32);
        }
    }

    fn decode_length(dec: &mut RangeDecoder<'_>, model: &mut Model) -> usize {
        let code = dec.decode_bittree(&mut model.len_tree, 8);
        let code = if code == LEN_ESCAPE {
            dec.decode_direct(32) as usize
        } else {
            code as usize
        };
        code + MIN_MATCH
    }

    fn encode_offset(enc: &mut RangeEncoder, model: &mut Model, offset: usize) {
        debug_assert!(offset >= 1);
        let value = (offset - 1) as u32;
        // Distance slot: number of significant bits.
        let slot = 32 - value.leading_zeros(); // 0 for value 0
        enc.encode_bittree(&mut model.slot_tree, 6, slot);
        if slot > 1 {
            // The top bit is implied by the slot; code the remaining bits directly.
            let extra_bits = slot - 1;
            enc.encode_direct(value & ((1 << extra_bits) - 1), extra_bits);
        }
    }

    fn decode_offset(dec: &mut RangeDecoder<'_>, model: &mut Model) -> usize {
        let slot = dec.decode_bittree(&mut model.slot_tree, 6);
        let value = match slot {
            0 => 0u32,
            1 => 1u32,
            _ => {
                let extra_bits = slot - 1;
                (1 << extra_bits) | dec.decode_direct(extra_bits)
            }
        };
        value as usize + 1
    }
}

impl Codec for LzmaLike {
    fn name(&self) -> &str {
        "LZMA-like"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 3 + 16);
        varint::write_usize(&mut out, input.len());
        if input.is_empty() {
            return out;
        }
        let mut finder = MatchFinder::new(input, 0, self.config);
        let tokens = finder.parse();

        let mut enc = RangeEncoder::new();
        let mut model = Model::new();
        let mut prev_byte = 0u8;
        for t in &tokens {
            for &b in &input[t.literal_start..t.literal_start + t.literal_len] {
                enc.encode_bit(&mut model.is_match[0], 0);
                let ctx = Model::literal_ctx(prev_byte);
                enc.encode_bittree(&mut model.literal[ctx], 8, u32::from(b));
                prev_byte = b;
            }
            if let Some(m) = t.match_ {
                enc.encode_bit(&mut model.is_match[0], 1);
                Self::encode_length(&mut enc, &mut model, m.len);
                Self::encode_offset(&mut enc, &mut model, m.offset);
                // Keep the context byte in sync with the decoder, which knows
                // the last byte the match copied.
                let end = t.literal_start + t.literal_len + m.len;
                prev_byte = input[end - 1];
            }
        }
        out.extend_from_slice(&enc.finish());
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let (raw_len, pos) = varint::read_usize(input, 0)?;
        if raw_len == 0 {
            return Ok(Vec::new());
        }
        let payload = &input[pos..];
        let mut dec = RangeDecoder::new(payload)?;
        let mut model = Model::new();
        let mut out: Vec<u8> = Vec::with_capacity(raw_len);
        let mut prev_byte = 0u8;
        while out.len() < raw_len {
            if dec.decode_bit(&mut model.is_match[0]) == 0 {
                let ctx = Model::literal_ctx(prev_byte);
                let b = dec.decode_bittree(&mut model.literal[ctx], 8) as u8;
                out.push(b);
                prev_byte = b;
            } else {
                let len = Self::decode_length(&mut dec, &mut model);
                let offset = Self::decode_offset(&mut dec, &mut model);
                if offset > out.len() {
                    return Err(CodecError::InvalidOffset {
                        offset,
                        position: out.len(),
                    });
                }
                if out.len() + len > raw_len + 64 {
                    return Err(CodecError::corrupt("lzma match overruns declared size"));
                }
                let start = out.len() - offset;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
                // pbc-allow(panic): the match copy above pushed at least one byte
                prev_byte = *out.last().expect("match produced bytes");
            }
            dec.check_consumed()?;
        }
        if out.len() != raw_len {
            return Err(CodecError::corrupt("lzma stream produced wrong length"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &LzmaLike, data: &[u8]) {
        let compressed = codec.compress(data);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn roundtrip_basic_inputs() {
        let codec = LzmaLike::default();
        roundtrip(&codec, b"");
        roundtrip(&codec, b"a");
        roundtrip(&codec, b"lzma");
        roundtrip(&codec, &b"abcdabcdabcd".repeat(40));
    }

    #[test]
    fn roundtrip_machine_generated_records() {
        let mut data = Vec::new();
        for i in 0..300 {
            data.extend_from_slice(
                format!(
                    "V5company_charging-100-{:02}accenter{:02}ac_accounting_log_202{:06}\n",
                    i % 100,
                    (i * 7) % 100,
                    123000 + i
                )
                .as_bytes(),
            );
        }
        let codec = LzmaLike::new(9);
        let compressed = codec.compress(&data);
        assert!(
            compressed.len() < data.len() / 6,
            "highly templated data should compress strongly: {} of {}",
            compressed.len(),
            data.len()
        );
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn beats_zstd_like_on_ratio_for_text() {
        let mut data = Vec::new();
        for i in 0..800 {
            data.extend_from_slice(
                format!("2023-11-07T10:{:02}:{:02}Z apache worker-{} served /static/img_{}.png in {}ms\n",
                    i / 60 % 60, i % 60, i % 8, i % 50, (i * 13) % 900).as_bytes(),
            );
        }
        let lzma = LzmaLike::new(9).compress(&data).len();
        let zstd = crate::zstdlike::ZstdLike::new(3).compress(&data).len();
        assert!(
            lzma < zstd,
            "lzma-like ({lzma}) should compress tighter than zstd-like default ({zstd})"
        );
    }

    #[test]
    fn incompressible_data_roundtrips_with_bounded_expansion() {
        let mut state = 7u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(0x5851F42D4C957F2D)
                    .wrapping_add(0x14057B7EF767814F);
                (state >> 33) as u8
            })
            .collect();
        let codec = LzmaLike::default();
        let compressed = codec.compress(&data);
        assert!(compressed.len() < data.len() + data.len() / 8 + 64);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn corrupt_stream_is_rejected_or_differs() {
        let codec = LzmaLike::default();
        let data = b"the quick brown fox jumps over the lazy dog".repeat(20);
        let compressed = codec.compress(&data);
        let mut corrupted = compressed.clone();
        // Flip a byte in the middle of the range-coded payload.
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xff;
        if let Ok(out) = codec.decompress(&corrupted) {
            assert_ne!(out, data)
        }
        // Truncation must not panic.
        let mut truncated = compressed;
        truncated.truncate(truncated.len() / 3);
        let _ = codec.decompress(&truncated);
    }

    #[test]
    fn long_match_lengths_use_escape_path() {
        let data = vec![b'q'; 100_000];
        let codec = LzmaLike::default();
        let compressed = codec.compress(&data);
        assert!(
            compressed.len() < 2048,
            "constant run must collapse, got {}",
            compressed.len()
        );
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }
}
