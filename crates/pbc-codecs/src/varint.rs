//! LEB128 variable-length integer encoding.
//!
//! Used by the codecs for lengths and offsets, and by `pbc-core` for the
//! `VARINT` field encoder of Table 1 ("variable length unsigned integer
//! encoder to encode numbers for space saving").

use crate::error::{CodecError, Result};

/// Append `value` to `out` as an unsigned LEB128 varint.
///
/// Returns the number of bytes written (1–10 for a `u64`).
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut written = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        written += 1;
        if value == 0 {
            out.push(byte);
            return written;
        }
        out.push(byte | 0x80);
    }
}

/// Append `value` to `out` as an unsigned LEB128 varint (32-bit helper).
pub fn write_u32(out: &mut Vec<u8>, value: u32) -> usize {
    write_u64(out, u64::from(value))
}

/// Append `value` as a LEB128 varint for a `usize`.
pub fn write_usize(out: &mut Vec<u8>, value: usize) -> usize {
    write_u64(out, value as u64)
}

/// Number of bytes [`write_u64`] would produce for `value`.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    // ceil(bits / 7)
    let bits = 64 - value.leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Read an unsigned LEB128 varint from `input` starting at `pos`.
///
/// Returns `(value, new_pos)`. The one-byte case (values < 128 — block
/// entry framing, literal/match lengths in the LZ-family decoders) is a
/// branch-free-ish fast path; longer encodings take the cold loop.
#[inline]
pub fn read_u64(input: &[u8], pos: usize) -> Result<(u64, usize)> {
    match input.get(pos) {
        Some(&byte) if byte < 0x80 => Ok((u64::from(byte), pos + 1)),
        Some(_) => read_u64_multibyte(input, pos),
        None => Err(CodecError::UnexpectedEof { context: "varint" }),
    }
}

/// Continuation-byte decode loop behind [`read_u64`]'s fast path.
fn read_u64_multibyte(input: &[u8], mut pos: usize) -> Result<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input
            .get(pos)
            .ok_or(CodecError::UnexpectedEof { context: "varint" })?;
        pos += 1;
        if shift >= 64 {
            return Err(CodecError::corrupt("varint longer than 10 bytes"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, pos));
        }
        shift += 7;
    }
}

/// Read a varint and narrow it to `usize`.
#[inline]
pub fn read_usize(input: &[u8], pos: usize) -> Result<(usize, usize)> {
    let (v, p) = read_u64(input, pos)?;
    Ok((v as usize, p))
}

/// Read a varint and narrow it to `u32`, rejecting overflow.
pub fn read_u32(input: &[u8], pos: usize) -> Result<(u32, usize)> {
    let (v, p) = read_u64(input, pos)?;
    u32::try_from(v)
        .map(|v| (v, p))
        .map_err(|_| CodecError::corrupt("varint exceeds u32 range"))
}

/// Zig-zag encode a signed integer so small magnitudes stay small when
/// varint-encoded. Used for timestamp deltas in the log substrate.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Append a zig-zag + LEB128 encoded signed integer.
pub fn write_i64(out: &mut Vec<u8>, value: i64) -> usize {
    write_u64(out, zigzag_encode(value))
}

/// Read a zig-zag + LEB128 encoded signed integer.
pub fn read_i64(input: &[u8], pos: usize) -> Result<(i64, usize)> {
    let (v, p) = read_u64(input, pos)?;
    Ok((zigzag_decode(v), p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_values() {
        for v in 0u64..1000 {
            let mut buf = Vec::new();
            let n = write_u64(&mut buf, v);
            assert_eq!(n, buf.len());
            assert_eq!(n, encoded_len(v));
            let (decoded, pos) = read_u64(&buf, 0).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn roundtrip_boundary_values() {
        for v in [
            0,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(encoded_len(v), buf.len());
            let (decoded, _) = read_u64(&buf, 0).unwrap();
            assert_eq!(decoded, v);
        }
    }

    #[test]
    fn one_byte_for_values_below_128() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 128);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        assert!(matches!(
            read_u64(&buf, 0),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // 11 continuation bytes cannot encode a u64.
        let buf = vec![0x80u8; 11];
        assert!(read_u64(&buf, 0).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1_000_000i64, -1, 0, 1, 1_000_000, i64::MIN, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }

    #[test]
    fn signed_roundtrip_through_buffer() {
        let values = [-5_000_000_000i64, -42, 0, 42, 5_000_000_000];
        let mut buf = Vec::new();
        for &v in &values {
            write_i64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            let (decoded, new_pos) = read_i64(&buf, pos).unwrap();
            assert_eq!(decoded, v);
            pos = new_pos;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn u32_narrowing_rejects_overflow() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1);
        assert!(read_u32(&buf, 0).is_err());
        buf.clear();
        write_u64(&mut buf, u64::from(u32::MAX));
        assert_eq!(read_u32(&buf, 0).unwrap().0, u32::MAX);
    }
}
