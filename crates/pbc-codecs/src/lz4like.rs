//! LZ4-style codec: LZ77 parse serialized with a byte-oriented token format
//! and no entropy stage.
//!
//! This stands in for LZ4 in the paper's evaluation ("the best lightweight
//! compression method"): very fast, moderate ratio. The format follows the
//! spirit of the LZ4 block format — a token byte holding 4-bit literal and
//! match length nibbles with 255-extension bytes, little-endian 16-bit
//! offsets — extended with varint offsets so the large-window profile also
//! works.

use crate::error::{CodecError, Result};
use crate::lz77::{MatchFinder, MatchFinderConfig, MIN_MATCH};
use crate::traits::{Codec, DictCodec};
use crate::varint;

/// LZ4-like compressor (see module docs).
#[derive(Debug, Clone)]
pub struct Lz4Like {
    config: MatchFinderConfig,
}

impl Default for Lz4Like {
    fn default() -> Self {
        Self::new()
    }
}

impl Lz4Like {
    /// Create the codec with the fast match-finder profile (the LZ4 spirit).
    pub fn new() -> Self {
        Lz4Like {
            config: MatchFinderConfig::fast(),
        }
    }

    /// Create with a custom match-finder configuration.
    pub fn with_config(config: MatchFinderConfig) -> Self {
        Lz4Like { config }
    }

    fn compress_internal(&self, input: &[u8], dict: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        varint::write_usize(&mut out, input.len());
        if input.is_empty() {
            return out;
        }
        let mut data = Vec::with_capacity(dict.len() + input.len());
        data.extend_from_slice(dict);
        data.extend_from_slice(input);
        let mut finder = MatchFinder::new(&data, dict.len(), self.config);
        let tokens = finder.parse();
        for t in &tokens {
            let lit = &data[t.literal_start..t.literal_start + t.literal_len];
            let match_len = t.match_.map_or(0, |m| m.len);
            // Token byte: high nibble = literal length (15 = extended),
            // low nibble = match length - MIN_MATCH (15 = extended).
            let lit_nibble = lit.len().min(15) as u8;
            let match_code = match_len.saturating_sub(MIN_MATCH);
            let match_nibble = match_code.min(15) as u8;
            out.push((lit_nibble << 4) | match_nibble);
            if lit.len() >= 15 {
                write_extended(&mut out, lit.len() - 15);
            }
            out.extend_from_slice(lit);
            if let Some(m) = t.match_ {
                varint::write_usize(&mut out, m.offset);
                if match_code >= 15 {
                    write_extended(&mut out, match_code - 15);
                }
            }
        }
        out
    }

    fn decompress_internal(&self, input: &[u8], dict: &[u8]) -> Result<Vec<u8>> {
        let (raw_len, mut pos) = varint::read_usize(input, 0)?;
        let mut out = Vec::with_capacity(dict.len() + raw_len);
        out.extend_from_slice(dict);
        let target = dict.len() + raw_len;
        while out.len() < target {
            let token = *input.get(pos).ok_or(CodecError::UnexpectedEof {
                context: "lz4 token",
            })?;
            pos += 1;
            let mut lit_len = (token >> 4) as usize;
            if lit_len == 15 {
                let (ext, p) = read_extended(input, pos)?;
                lit_len += ext;
                pos = p;
            }
            if pos + lit_len > input.len() {
                return Err(CodecError::UnexpectedEof {
                    context: "lz4 literals",
                });
            }
            out.extend_from_slice(&input[pos..pos + lit_len]);
            pos += lit_len;
            if out.len() >= target {
                break;
            }
            let mut match_len = (token & 0x0f) as usize;
            let (offset, p) = varint::read_usize(input, pos)?;
            pos = p;
            if match_len == 15 {
                let (ext, p) = read_extended(input, pos)?;
                match_len += ext;
                pos = p;
            }
            let match_len = match_len + MIN_MATCH;
            if offset == 0 || offset > out.len() {
                return Err(CodecError::InvalidOffset {
                    offset,
                    position: out.len(),
                });
            }
            let start = out.len() - offset;
            for i in 0..match_len {
                let b = out[start + i];
                out.push(b);
            }
        }
        if out.len() != target {
            return Err(CodecError::corrupt("lz4 stream produced wrong length"));
        }
        out.drain(..dict.len());
        Ok(out)
    }
}

/// LZ4-style length extension: a run of 255 bytes followed by a final byte.
fn write_extended(out: &mut Vec<u8>, mut value: usize) {
    while value >= 255 {
        out.push(255);
        value -= 255;
    }
    out.push(value as u8);
}

fn read_extended(input: &[u8], mut pos: usize) -> Result<(usize, usize)> {
    let mut value = 0usize;
    loop {
        let b = *input.get(pos).ok_or(CodecError::UnexpectedEof {
            context: "lz4 length extension",
        })?;
        pos += 1;
        value += b as usize;
        if b != 255 {
            return Ok((value, pos));
        }
    }
}

impl Codec for Lz4Like {
    fn name(&self) -> &str {
        "LZ4-like"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        self.compress_internal(input, &[])
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        self.decompress_internal(input, &[])
    }
}

impl DictCodec for Lz4Like {
    fn compress_with_dict(&self, input: &[u8], dict: &[u8]) -> Vec<u8> {
        self.compress_internal(input, dict)
    }

    fn decompress_with_dict(&self, input: &[u8], dict: &[u8]) -> Result<Vec<u8>> {
        self.decompress_internal(input, dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let codec = Lz4Like::new();
        let compressed = codec.compress(data);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn roundtrip_common_cases() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello");
        roundtrip(&b"abcabcabc".repeat(50));
        roundtrip("日本語のテキストもバイト列として扱える".as_bytes());
    }

    #[test]
    fn repetitive_input_compresses() {
        let data = b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n".repeat(100);
        let codec = Lz4Like::new();
        let compressed = codec.compress(&data);
        assert!(compressed.len() < data.len() / 5);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn incompressible_input_has_bounded_expansion() {
        let mut state = 99u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        let codec = Lz4Like::new();
        let compressed = codec.compress(&data);
        // At most a few % expansion for random data.
        assert!(compressed.len() < data.len() + data.len() / 8 + 64);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn long_literal_runs_and_long_matches() {
        // Forces both 255-extension paths.
        let mut data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        data.extend(vec![b'x'; 5000]);
        roundtrip(&data);
    }

    #[test]
    fn dictionary_improves_short_record_compression() {
        let dict =
            b"{\"symbol\": \"IBM\", \"side\": \"B\", \"quantity\": , \"price\": , \"timestamp\": }";
        let record = b"{\"symbol\": \"IBM\", \"side\": \"B\", \"quantity\": 100, \"price\": 50.25, \"timestamp\": 1639574096}";
        let codec = Lz4Like::new();
        let plain = codec.compress(record);
        let with_dict = codec.compress_with_dict(record, dict);
        assert!(
            with_dict.len() < plain.len(),
            "dictionary must help: {} vs {}",
            with_dict.len(),
            plain.len()
        );
        assert_eq!(
            codec.decompress_with_dict(&with_dict, dict).unwrap(),
            record
        );
    }

    #[test]
    fn corrupt_streams_are_rejected_not_panicking() {
        let codec = Lz4Like::new();
        let data = b"some repetitive data some repetitive data".to_vec();
        let mut compressed = codec.compress(&data);
        // Truncate.
        compressed.truncate(compressed.len() / 2);
        assert!(codec.decompress(&compressed).is_err());
        // Garbage.
        assert!(codec.decompress(&[0xff, 0xff, 0xff, 0x01, 0x02]).is_err());
    }

    #[test]
    fn decompressing_with_wrong_dict_fails_or_differs() {
        let codec = Lz4Like::new();
        let dict = b"the right dictionary with useful content";
        let record = b"the right dictionary with useful content and more";
        let compressed = codec.compress_with_dict(record, dict);
        let wrong = vec![0u8; dict.len()];
        if let Ok(out) = codec.decompress_with_dict(&compressed, &wrong) {
            assert_ne!(out, record)
        }
    }
}
