//! Adaptive binary range coder.
//!
//! This is the entropy back-end of the [`crate::lzmalike`] codec, mirroring
//! the coder used by LZMA: probabilities are 11-bit adaptive counters, the
//! encoder keeps a 32-bit `range` and a 64-bit `low` with carry propagation,
//! and the decoder mirrors the renormalisation exactly.

use crate::error::{CodecError, Result};

/// Number of probability bits (LZMA uses 11).
pub const PROB_BITS: u32 = 11;
/// Initial probability = 0.5.
pub const PROB_INIT: u16 = (1 << PROB_BITS) as u16 / 2;
/// Adaptation shift: larger adapts slower.
const MOVE_BITS: u32 = 5;
const TOP: u32 = 1 << 24;

/// An adaptive probability of the next bit being 0, stored as an 11-bit
/// fixed-point value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitModel(pub u16);

impl Default for BitModel {
    fn default() -> Self {
        BitModel(PROB_INIT)
    }
}

impl BitModel {
    /// Fresh model with probability 0.5.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn update(&mut self, bit: u8) {
        if bit == 0 {
            self.0 += ((1 << PROB_BITS) - u32::from(self.0)) as u16 >> MOVE_BITS;
        } else {
            self.0 -= self.0 >> MOVE_BITS;
        }
    }
}

/// Range encoder producing a byte stream.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
    first_byte: bool,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Create an encoder with an empty output buffer.
    pub fn new() -> Self {
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
            first_byte: true,
        }
    }

    /// Encode one bit under the given adaptive model.
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: u8) {
        let bound = (self.range >> PROB_BITS) * u32::from(model.0);
        if bit == 0 {
            self.range = bound;
        } else {
            self.low += u64::from(bound);
            self.range -= bound;
        }
        model.update(bit);
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Encode `bits` bits of `value` (MSB first) with fixed probability 0.5.
    pub fn encode_direct(&mut self, value: u32, bits: u32) {
        for i in (0..bits).rev() {
            self.range >>= 1;
            let bit = (value >> i) & 1;
            if bit == 1 {
                self.low += u64::from(self.range);
            }
            while self.range < TOP {
                self.shift_low();
                self.range <<= 8;
            }
        }
    }

    /// Encode an unsigned value with a fixed number of bits under a tree of
    /// adaptive models (one model per tree node), as LZMA does for lengths.
    pub fn encode_bittree(&mut self, models: &mut [BitModel], bits: u32, value: u32) {
        debug_assert!(models.len() >= (1 << bits));
        let mut node = 1usize;
        for i in (0..bits).rev() {
            let bit = ((value >> i) & 1) as u8;
            self.encode_bit(&mut models[node], bit);
            node = (node << 1) | bit as usize;
        }
    }

    fn shift_low(&mut self) {
        let carry = (self.low >> 32) as u8;
        if self.low < 0xFF00_0000u64 || carry == 1 {
            if !self.first_byte {
                self.out.push(self.cache.wrapping_add(carry));
            }
            for _ in 1..self.cache_size {
                self.out.push(0xFFu8.wrapping_add(carry));
            }
            self.cache = ((self.low >> 24) & 0xFF) as u8;
            self.cache_size = 0;
            self.first_byte = false;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Flush the encoder and return the compressed bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder mirroring [`RangeEncoder`].
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Create a decoder over an encoder-produced byte stream.
    pub fn new(input: &'a [u8]) -> Result<Self> {
        let mut dec = RangeDecoder {
            code: 0,
            range: u32::MAX,
            input,
            pos: 0,
        };
        for _ in 0..4 {
            dec.code = (dec.code << 8) | u32::from(dec.next_byte());
        }
        Ok(dec)
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decode one bit under the given adaptive model.
    ///
    /// Unlike the huffman path, this loop cannot be table-driven: the
    /// probability (and with it the `bound` split point) mutates after
    /// every single bit, so there is no static code→symbol mapping to
    /// precompute. The fast-path work here is keeping the per-bit state
    /// machine inlined into the `lzmalike` decode loops.
    #[inline]
    pub fn decode_bit(&mut self, model: &mut BitModel) -> u8 {
        let bound = (self.range >> PROB_BITS) * u32::from(model.0);
        let bit = if self.code < bound {
            self.range = bound;
            0
        } else {
            self.code -= bound;
            self.range -= bound;
            1
        };
        model.update(bit);
        while self.range < TOP {
            self.code = (self.code << 8) | u32::from(self.next_byte());
            self.range <<= 8;
        }
        bit
    }

    /// Decode `bits` direct bits (fixed probability 0.5), MSB first.
    #[inline]
    pub fn decode_direct(&mut self, bits: u32) -> u32 {
        let mut value = 0u32;
        for _ in 0..bits {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            value = (value << 1) | bit;
            while self.range < TOP {
                self.code = (self.code << 8) | u32::from(self.next_byte());
                self.range <<= 8;
            }
        }
        value
    }

    /// Decode a bit-tree coded value of `bits` bits.
    #[inline]
    pub fn decode_bittree(&mut self, models: &mut [BitModel], bits: u32) -> u32 {
        debug_assert!(models.len() >= (1 << bits));
        let mut node = 1usize;
        for _ in 0..bits {
            let bit = self.decode_bit(&mut models[node]);
            node = (node << 1) | bit as usize;
        }
        (node as u32) - (1 << bits)
    }

    /// Whether the decoder has consumed more bytes than were provided
    /// (indicates a corrupt or truncated stream when data was still expected).
    pub fn overran(&self) -> bool {
        self.pos > self.input.len().saturating_add(5)
    }

    /// Ensure the declared number of items was plausible for the input.
    pub fn check_consumed(&self) -> Result<()> {
        if self.overran() {
            Err(CodecError::UnexpectedEof {
                context: "range-coded payload",
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_model_roundtrip_biased_bits() {
        // A heavily biased bit sequence should compress well and round-trip.
        let bits: Vec<u8> = (0..4000).map(|i| u8::from(i % 17 == 0)).collect();
        let mut enc = RangeEncoder::new();
        let mut model = BitModel::new();
        for &b in &bits {
            enc.encode_bit(&mut model, b);
        }
        let data = enc.finish();
        assert!(data.len() < bits.len() / 4, "biased bits should compress");

        let mut dec = RangeDecoder::new(&data).unwrap();
        let mut model = BitModel::new();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut model), b);
        }
    }

    #[test]
    fn direct_bits_roundtrip() {
        let values: Vec<u32> = (0..500u32)
            .map(|i| i.wrapping_mul(2654435761) >> 12)
            .collect();
        let mut enc = RangeEncoder::new();
        for &v in &values {
            enc.encode_direct(v, 20);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data).unwrap();
        for &v in &values {
            assert_eq!(dec.decode_direct(20), v & ((1 << 20) - 1));
        }
    }

    #[test]
    fn bittree_roundtrip() {
        const BITS: u32 = 6;
        let values: Vec<u32> = (0..1000).map(|i| (i * 37) % (1 << BITS)).collect();
        let mut enc = RangeEncoder::new();
        let mut models = vec![BitModel::new(); 1 << BITS];
        for &v in &values {
            enc.encode_bittree(&mut models, BITS, v);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data).unwrap();
        let mut models = vec![BitModel::new(); 1 << BITS];
        for &v in &values {
            assert_eq!(dec.decode_bittree(&mut models, BITS), v);
        }
    }

    #[test]
    fn mixed_model_and_direct_roundtrip() {
        let mut enc = RangeEncoder::new();
        let mut m0 = BitModel::new();
        let mut m1 = BitModel::new();
        let spec: Vec<(u8, u8, u32)> = (0..2000)
            .map(|i| {
                (
                    (i % 3 == 0) as u8,
                    (i % 5 == 0) as u8,
                    (i * 7919) as u32 % 4096,
                )
            })
            .collect();
        for &(a, b, v) in &spec {
            enc.encode_bit(&mut m0, a);
            enc.encode_bit(&mut m1, b);
            enc.encode_direct(v, 12);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data).unwrap();
        let mut m0 = BitModel::new();
        let mut m1 = BitModel::new();
        for &(a, b, v) in &spec {
            assert_eq!(dec.decode_bit(&mut m0), a);
            assert_eq!(dec.decode_bit(&mut m1), b);
            assert_eq!(dec.decode_direct(12), v);
        }
        dec.check_consumed().unwrap();
    }

    #[test]
    fn model_adaptation_moves_towards_observed_bit() {
        let mut model = BitModel::new();
        let initial = model.0;
        for _ in 0..50 {
            model.update(0);
        }
        assert!(model.0 > initial, "seeing zeros raises P(bit=0)");
        let mut model = BitModel::new();
        for _ in 0..50 {
            model.update(1);
        }
        assert!(model.0 < initial, "seeing ones lowers P(bit=0)");
    }

    #[test]
    fn empty_stream_decodes_nothing_gracefully() {
        // Decoding from an empty buffer should not panic; bits are arbitrary
        // but the decoder must stay in bounds.
        let mut dec = RangeDecoder::new(&[]).unwrap();
        let mut model = BitModel::new();
        let _ = dec.decode_bit(&mut model);
    }
}
