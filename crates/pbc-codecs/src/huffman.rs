//! Canonical Huffman coding over byte alphabets.
//!
//! This is the entropy stage of the [`crate::zstdlike`] codec (standing in
//! for Zstd's FSE/Huffman stage) and is also exposed directly so that PBC's
//! optional residual-subsequence entropy encoding (Section 5.2, option 1 of
//! the paper) can reuse it.
//!
//! The encoder limits code lengths to [`MAX_CODE_LEN`] bits so the decoder
//! can use a single flat lookup table.

use crate::bitstream::{BitReader, BitWriter};
use crate::error::{CodecError, Result};
use crate::varint;

/// Maximum code length in bits. 15 keeps the decode table at 32K entries.
pub const MAX_CODE_LEN: u8 = 15;

/// Number of symbols in the byte alphabet.
const ALPHABET: usize = 256;

/// A canonical Huffman code book: one code length and code value per symbol.
#[derive(Debug, Clone)]
pub struct HuffmanTable {
    /// Code length in bits per symbol; 0 means the symbol does not occur.
    lengths: [u8; ALPHABET],
    /// Canonical code value per symbol (valid when length > 0).
    codes: [u16; ALPHABET],
}

impl HuffmanTable {
    /// Build a length-limited canonical Huffman table from symbol
    /// frequencies.
    ///
    /// Frequencies of zero produce no code. If only one distinct symbol
    /// occurs it is assigned a 1-bit code so the format stays decodable.
    pub fn from_frequencies(freqs: &[u64; ALPHABET]) -> Self {
        let lengths = build_code_lengths(freqs);
        let codes = canonical_codes(&lengths);
        HuffmanTable { lengths, codes }
    }

    /// Reconstruct a table from the per-symbol code lengths alone
    /// (canonical codes are fully determined by the lengths).
    pub fn from_lengths(lengths: [u8; ALPHABET]) -> Result<Self> {
        validate_lengths(&lengths)?;
        let codes = canonical_codes(&lengths);
        Ok(HuffmanTable { lengths, codes })
    }

    /// Code length of `symbol` in bits (0 if the symbol has no code).
    pub fn length(&self, symbol: u8) -> u8 {
        self.lengths[symbol as usize]
    }

    /// Total encoded size in bits for the given frequencies under this table.
    pub fn encoded_bits(&self, freqs: &[u64; ALPHABET]) -> u64 {
        freqs
            .iter()
            .zip(self.lengths.iter())
            .map(|(&f, &l)| f * u64::from(l))
            .sum()
    }

    /// Serialize the code lengths (4 bits per symbol, 128 bytes).
    fn write_lengths(&self, out: &mut Vec<u8>) {
        let mut w = BitWriter::with_capacity(ALPHABET / 2);
        for &l in &self.lengths {
            w.write_bits(u64::from(l), 4);
        }
        out.extend_from_slice(&w.finish());
    }

    /// Deserialize code lengths written by [`Self::write_lengths`].
    fn read_lengths(input: &[u8], pos: usize) -> Result<(Self, usize)> {
        let needed = ALPHABET / 2;
        if input.len() < pos + needed {
            return Err(CodecError::UnexpectedEof {
                context: "huffman code lengths",
            });
        }
        let mut lengths = [0u8; ALPHABET];
        let mut r = BitReader::new(&input[pos..pos + needed]);
        for l in lengths.iter_mut() {
            *l = r.read_bits(4)? as u8;
        }
        Ok((Self::from_lengths(lengths)?, pos + needed))
    }
}

/// Validate that non-zero code lengths satisfy the Kraft inequality (i.e.
/// they describe a prefix-free code) and never exceed [`MAX_CODE_LEN`].
fn validate_lengths(lengths: &[u8; ALPHABET]) -> Result<()> {
    let mut kraft: u64 = 0;
    let unit = 1u64 << MAX_CODE_LEN;
    for &l in lengths {
        if l > MAX_CODE_LEN {
            return Err(CodecError::corrupt("huffman code length exceeds maximum"));
        }
        if l > 0 {
            kraft += unit >> l;
        }
    }
    if kraft > unit {
        return Err(CodecError::corrupt(
            "huffman code lengths violate Kraft inequality",
        ));
    }
    Ok(())
}

/// Heap-based Huffman construction followed by a length-limiting pass.
fn build_code_lengths(freqs: &[u64; ALPHABET]) -> [u8; ALPHABET] {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut lengths = [0u8; ALPHABET];
    let present: Vec<usize> = (0..ALPHABET).filter(|&s| freqs[s] > 0).collect();
    match present.len() {
        0 => return lengths,
        1 => {
            lengths[present[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Node arena: leaves first, then internal nodes.
    #[derive(Clone, Copy)]
    struct Node {
        left: usize,
        right: usize,
        symbol: usize,
    }
    let mut nodes: Vec<Node> = Vec::with_capacity(present.len() * 2);
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for &s in &present {
        nodes.push(Node {
            left: usize::MAX,
            right: usize::MAX,
            symbol: s,
        });
        heap.push(Reverse((freqs[s], nodes.len() - 1)));
    }
    while heap.len() > 1 {
        // pbc-allow(panic): loop guard: heap.len() > 1
        let Reverse((fa, a)) = heap.pop().expect("heap has two items");
        // pbc-allow(panic): loop guard: heap.len() > 1
        let Reverse((fb, b)) = heap.pop().expect("heap has two items");
        nodes.push(Node {
            left: a,
            right: b,
            symbol: usize::MAX,
        });
        heap.push(Reverse((fa + fb, nodes.len() - 1)));
    }
    // pbc-allow(panic): the merge loop leaves exactly the root in the heap
    let root = heap.pop().expect("root").0 .1;

    // Iterative depth-first traversal to assign depths.
    let mut stack = vec![(root, 0u8)];
    while let Some((idx, depth)) = stack.pop() {
        let node = nodes[idx];
        if node.symbol != usize::MAX {
            lengths[node.symbol] = depth.max(1);
        } else {
            stack.push((node.left, depth + 1));
            stack.push((node.right, depth + 1));
        }
    }

    limit_lengths(&mut lengths);
    lengths
}

/// Clamp code lengths to [`MAX_CODE_LEN`] while keeping the code prefix-free,
/// using the classic "overflow repair" on the Kraft sum.
fn limit_lengths(lengths: &mut [u8; ALPHABET]) {
    let unit = 1u64 << MAX_CODE_LEN;
    let mut overflow = false;
    for l in lengths.iter_mut() {
        if *l > MAX_CODE_LEN {
            *l = MAX_CODE_LEN;
            overflow = true;
        }
    }
    if !overflow {
        return;
    }
    // Compute Kraft sum in units of 2^-MAX_CODE_LEN.
    let kraft: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| unit >> l).sum();
    let mut excess = kraft.saturating_sub(unit);
    // Lengthen the shortest over-short codes until the Kraft inequality holds.
    while excess > 0 {
        // Find a symbol whose code can be lengthened (length < MAX) with the
        // largest Kraft contribution reduction.
        let candidate = (0..ALPHABET)
            .filter(|&s| lengths[s] > 0 && lengths[s] < MAX_CODE_LEN)
            .min_by_key(|&s| lengths[s]);
        match candidate {
            Some(s) => {
                let before = unit >> lengths[s];
                lengths[s] += 1;
                let after = unit >> lengths[s];
                excess = excess.saturating_sub(before - after);
            }
            None => break,
        }
    }
}

/// Assign canonical code values: shorter codes first, ties broken by symbol.
fn canonical_codes(lengths: &[u8; ALPHABET]) -> [u16; ALPHABET] {
    let mut codes = [0u16; ALPHABET];
    let mut symbols: Vec<usize> = (0..ALPHABET).filter(|&s| lengths[s] > 0).collect();
    symbols.sort_by_key(|&s| (lengths[s], s));
    let mut code: u32 = 0;
    let mut prev_len = 0u8;
    for &s in &symbols {
        let len = lengths[s];
        code <<= len - prev_len;
        codes[s] = code as u16;
        code += 1;
        prev_len = len;
    }
    codes
}

/// Flat decode table mapping [`MAX_CODE_LEN`]-bit prefixes to (symbol, length).
struct DecodeTable {
    entries: Vec<(u8, u8)>,
}

impl DecodeTable {
    fn build(table: &HuffmanTable) -> Self {
        let size = 1usize << MAX_CODE_LEN;
        let mut entries = vec![(0u8, 0u8); size];
        for symbol in 0..ALPHABET {
            let len = table.lengths[symbol];
            if len == 0 {
                continue;
            }
            let code = table.codes[symbol] as usize;
            let shift = MAX_CODE_LEN - len;
            let start = code << shift;
            let end = (code + 1) << shift;
            for entry in entries.iter_mut().take(end).skip(start) {
                *entry = (symbol as u8, len);
            }
        }
        DecodeTable { entries }
    }
}

/// First-level table bits for the table-driven decoder — chosen by the
/// `readpath` repro sweep (`repro --experiment readpath` prints ns/byte for
/// table sizes around this value): 11 bits covers every code the encoder
/// emits on realistic skew while keeping the table at 2K entries (4 KiB,
/// comfortably L1-resident); larger tables measured no faster and evict
/// more of the caller's working set.
pub const DEFAULT_DECODE_BITS: u8 = 11;

/// Two-level decode structure for the table-driven fast path: a
/// `2^bits`-entry first-level table resolves every code of ≤ `bits` bits in
/// one lookup; rarer longer codes escape to a canonical per-length search.
struct FastDecodeTable {
    /// First-level table size in bits (1..=[`MAX_CODE_LEN`]).
    bits: u8,
    /// `entries[prefix] = (symbol, len)`; `len == 0` marks an escape —
    /// either a code longer than `bits` or an invalid prefix.
    entries: Vec<(u8, u8)>,
    /// `first_code[len]` = canonical code value of the first code of each
    /// length (the canonical construction assigns codes in (length, symbol)
    /// order, so codes of one length form one contiguous value range).
    first_code: [u32; MAX_CODE_LEN as usize + 1],
    /// Number of codes of each length.
    count: [u32; MAX_CODE_LEN as usize + 1],
    /// `offset[len]` = index into `symbols` of the first symbol of `len`.
    offset: [u32; MAX_CODE_LEN as usize + 1],
    /// All coded symbols in canonical (length, symbol) order.
    symbols: Vec<u8>,
}

impl FastDecodeTable {
    fn build(table: &HuffmanTable, bits: u8) -> Self {
        let bits = bits.clamp(1, MAX_CODE_LEN);
        let mut entries = vec![(0u8, 0u8); 1usize << bits];
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        for symbol in 0..ALPHABET {
            let len = table.lengths[symbol];
            if len == 0 {
                continue;
            }
            count[len as usize] += 1;
            if len <= bits {
                let code = table.codes[symbol] as usize;
                let shift = bits - len;
                let start = code << shift;
                let end = (code + 1) << shift;
                for entry in entries.iter_mut().take(end).skip(start) {
                    *entry = (symbol as u8, len);
                }
            }
        }
        let mut first_code = [0u32; MAX_CODE_LEN as usize + 1];
        let mut offset = [0u32; MAX_CODE_LEN as usize + 1];
        let mut code = 0u32;
        let mut total = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            first_code[len] = code;
            offset[len] = total;
            code = (code + count[len]) << 1;
            total += count[len];
        }
        let mut symbols: Vec<u8> = (0..ALPHABET as u16)
            .filter(|&s| table.lengths[s as usize] > 0)
            .map(|s| s as u8)
            .collect();
        symbols.sort_by_key(|&s| (table.lengths[s as usize], s));
        FastDecodeTable {
            bits,
            entries,
            first_code,
            count,
            offset,
            symbols,
        }
    }

    /// Resolve a code longer than `self.bits` from a [`MAX_CODE_LEN`]-bit
    /// peek via the canonical per-length ranges.
    #[inline]
    fn decode_long(&self, peek: u32) -> Result<(u8, u8)> {
        for len in (self.bits + 1)..=MAX_CODE_LEN {
            let code = peek >> (MAX_CODE_LEN - len);
            let first = self.first_code[len as usize];
            if code >= first && code - first < self.count[len as usize] {
                let idx = self.offset[len as usize] + (code - first);
                return Ok((self.symbols[idx as usize], len));
            }
        }
        Err(CodecError::corrupt("invalid huffman code in stream"))
    }
}

/// Word-buffered MSB-first bit cursor for the table-driven decoder. The
/// top `nbits` bits of `bitbuf` are the next bits of the stream; the bits
/// below them are always zero, so peeking past the end of the stream
/// naturally zero-pads — exactly the semantics the branchy decoder gets
/// from `read_bits(available) << (MAX_CODE_LEN - available)`.
struct FastBits<'a> {
    buf: &'a [u8],
    /// Next byte of `buf` to load into the buffer.
    next: usize,
    bitbuf: u64,
    nbits: u32,
}

impl<'a> FastBits<'a> {
    fn new(buf: &'a [u8]) -> Self {
        FastBits {
            buf,
            next: 0,
            bitbuf: 0,
            nbits: 0,
        }
    }

    /// Top up the bit buffer to ≥ 56 valid bits (or the end of the stream).
    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.next < self.buf.len() {
            self.bitbuf |= u64::from(self.buf[self.next]) << (56 - self.nbits);
            self.next += 1;
            self.nbits += 8;
        }
    }

    /// Bits of stream left (buffered + not yet loaded).
    #[inline]
    fn remaining(&self) -> usize {
        self.nbits as usize + (self.buf.len() - self.next) * 8
    }

    /// The next `k` bits, MSB-aligned to the low `k` bits of the result;
    /// zero-padded past the end of the stream. `k` in 1..=32.
    #[inline]
    fn peek(&self, k: u8) -> u64 {
        self.bitbuf >> (64 - k)
    }

    /// Drop `n` buffered bits. Callers guarantee `n <= self.nbits`.
    #[inline]
    fn consume(&mut self, n: u8) {
        self.bitbuf <<= n;
        self.nbits -= u32::from(n);
    }
}

/// Compress `input` with a canonical Huffman code trained on its own byte
/// frequencies. Output layout: varint raw length, 128-byte code-length table,
/// varint bit count, packed code bits.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 140);
    varint::write_usize(&mut out, input.len());
    if input.is_empty() {
        return out;
    }
    let mut freqs = [0u64; ALPHABET];
    for &b in input {
        freqs[b as usize] += 1;
    }
    let table = HuffmanTable::from_frequencies(&freqs);
    table.write_lengths(&mut out);
    let bits = table.encoded_bits(&freqs);
    varint::write_u64(&mut out, bits);
    let mut w = BitWriter::with_capacity((bits as usize).div_ceil(8));
    for &b in input {
        let s = b as usize;
        w.write_bits(u64::from(table.codes[s]), table.lengths[s]);
    }
    out.extend_from_slice(&w.finish());
    out
}

/// Parsed [`compress`] header: the declared raw length plus, for non-empty
/// streams, the code-length table and the bit-packed payload.
type ParsedStream<'a> = (usize, Option<(HuffmanTable, &'a [u8])>);

/// Parse the shared header of a [`compress`] buffer: raw length, code
/// lengths, bit count. Returns `(raw_len, table, payload)`; `raw_len == 0`
/// short-circuits with an empty table.
fn parse_stream(input: &[u8]) -> Result<ParsedStream<'_>> {
    let (raw_len, pos) = varint::read_usize(input, 0)?;
    if raw_len == 0 {
        return Ok((0, None));
    }
    let (table, pos) = HuffmanTable::read_lengths(input, pos)?;
    let (bits, pos) = varint::read_u64(input, pos)?;
    let payload = &input[pos..];
    if (payload.len() as u64) * 8 < bits {
        return Err(CodecError::UnexpectedEof {
            context: "huffman payload",
        });
    }
    Ok((raw_len, Some((table, payload))))
}

/// Decompress a buffer produced by [`compress`] — the table-driven fast
/// path at [`DEFAULT_DECODE_BITS`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>> {
    decompress_with_table_bits(input, DEFAULT_DECODE_BITS)
}

/// [`decompress`] with an explicit first-level table size (clamped to
/// `1..=`[`MAX_CODE_LEN`]). Exposed so the `readpath` repro experiment can
/// sweep table bits; every size decodes identically, only speed differs.
pub fn decompress_with_table_bits(input: &[u8], table_bits: u8) -> Result<Vec<u8>> {
    let (raw_len, parsed) = parse_stream(input)?;
    let Some((table, payload)) = parsed else {
        return Ok(Vec::new());
    };
    let decode = FastDecodeTable::build(&table, table_bits);
    let mut out = Vec::with_capacity(raw_len);
    let mut bits = FastBits::new(payload);
    while out.len() < raw_len {
        bits.refill();
        let remaining = bits.remaining();
        if remaining == 0 {
            return Err(CodecError::UnexpectedEof {
                context: "huffman codes",
            });
        }
        // Codes never exceed MAX_CODE_LEN; near the end of the stream fewer
        // real bits remain and the peek is zero-padded, so a decoded length
        // must fit in what is actually left.
        let available = remaining.min(MAX_CODE_LEN as usize) as u8;
        let (symbol, len) = decode.entries[bits.peek(decode.bits) as usize];
        let (symbol, len) = if len != 0 {
            (symbol, len)
        } else {
            decode.decode_long(bits.peek(MAX_CODE_LEN) as u32)?
        };
        if len > available {
            return Err(CodecError::corrupt("invalid huffman code in stream"));
        }
        bits.consume(len);
        out.push(symbol);
    }
    Ok(out)
}

/// The pre-table reference decoder: one flat [`MAX_CODE_LEN`]-bit lookup
/// per symbol, peeking through a cloned [`BitReader`]. Kept as the
/// differential-testing and benchmarking baseline for the table-driven
/// fast path ([`decompress`] must produce byte-identical output).
pub fn decompress_branchy(input: &[u8]) -> Result<Vec<u8>> {
    let (raw_len, parsed) = parse_stream(input)?;
    let Some((table, payload)) = parsed else {
        return Ok(Vec::new());
    };
    let decode = DecodeTable::build(&table);
    let mut out = Vec::with_capacity(raw_len);
    let mut reader = BitReader::new(payload);
    while out.len() < raw_len {
        // Peek up to MAX_CODE_LEN bits (shorter near the end of the stream).
        let available = reader.remaining_bits().min(MAX_CODE_LEN as usize) as u8;
        if available == 0 {
            return Err(CodecError::UnexpectedEof {
                context: "huffman codes",
            });
        }
        let peek = {
            let mut clone = reader.clone();
            clone.read_bits(available)? << (MAX_CODE_LEN - available)
        };
        let (symbol, len) = decode.entries[peek as usize];
        if len == 0 || len > available {
            return Err(CodecError::corrupt("invalid huffman code in stream"));
        }
        reader.read_bits(len)?;
        out.push(symbol);
    }
    Ok(out)
}

/// Estimate the zero-order empirical entropy of `input` in bits per byte.
///
/// Used by the PBC theoretical-analysis tests (Section 6) and by the
/// entropy-based clustering ablation.
pub fn empirical_entropy(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 0.0;
    }
    let mut freqs = [0u64; ALPHABET];
    for &b in input {
        freqs[b as usize] += 1;
    }
    let n = input.len() as f64;
    freqs
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_text() {
        let data = b"the quick brown fox jumps over the lazy dog, the quick brown fox";
        let compressed = compress(data);
        assert_eq!(decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty_and_single_symbol() {
        assert_eq!(decompress(&compress(b"")).unwrap(), b"");
        let ones = vec![b'x'; 1000];
        let compressed = compress(&ones);
        assert!(compressed.len() < ones.len());
        assert_eq!(decompress(&compressed).unwrap(), ones);
    }

    #[test]
    fn skewed_distribution_compresses_well() {
        let mut data = vec![b'a'; 10_000];
        data.extend_from_slice(&[b'b'; 100]);
        data.extend_from_slice(b"cdefg");
        let compressed = compress(&data);
        // ~1 bit per symbol plus the 130-byte header.
        assert!(compressed.len() < data.len() / 4);
        assert_eq!(decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn uniform_bytes_do_not_explode() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let compressed = compress(&data);
        // 8-bit codes + header: mild overhead only.
        assert!(compressed.len() <= data.len() + 200);
        assert_eq!(decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn truncated_payload_is_detected() {
        let data = b"hello hello hello hello hello";
        let mut compressed = compress(data);
        compressed.truncate(compressed.len() - 2);
        assert!(decompress(&compressed).is_err());
    }

    #[test]
    fn invalid_length_table_is_rejected() {
        // All symbols with 1-bit codes grossly violates the Kraft inequality.
        let lengths = [1u8; ALPHABET];
        assert!(HuffmanTable::from_lengths(lengths).is_err());
        let mut too_long = [0u8; ALPHABET];
        too_long[0] = MAX_CODE_LEN + 1;
        assert!(HuffmanTable::from_lengths(too_long).is_err());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut freqs = [0u64; ALPHABET];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = (i as u64 % 17) + 1;
        }
        let table = HuffmanTable::from_frequencies(&freqs);
        // Check prefix-freedom pairwise on a sample of symbols.
        for a in 0..ALPHABET {
            for b in (a + 1)..ALPHABET {
                let (la, lb) = (table.lengths[a], table.lengths[b]);
                if la == 0 || lb == 0 {
                    continue;
                }
                let (short, long, ls, ll) = if la <= lb {
                    (table.codes[a], table.codes[b], la, lb)
                } else {
                    (table.codes[b], table.codes[a], lb, la)
                };
                assert_ne!(
                    u32::from(short),
                    u32::from(long) >> (ll - ls),
                    "codes for {a} and {b} are not prefix-free"
                );
            }
        }
    }

    #[test]
    fn entropy_of_uniform_and_constant_inputs() {
        let constant = vec![7u8; 100];
        assert!(empirical_entropy(&constant).abs() < 1e-9);
        let uniform: Vec<u8> = (0..=255u8).collect();
        assert!((empirical_entropy(&uniform) - 8.0).abs() < 1e-9);
        assert_eq!(empirical_entropy(&[]), 0.0);
    }

    #[test]
    fn all_byte_values_roundtrip() {
        let mut data = Vec::new();
        for i in 0..=255u8 {
            data.extend(std::iter::repeat_n(i, (i as usize % 7) + 1));
        }
        let compressed = compress(&data);
        assert_eq!(decompress(&compressed).unwrap(), data);
    }

    /// A few corpora with very different code-length shapes: flat 8-bit
    /// codes, extreme skew (1-bit hot symbol + long tails), and mixed text.
    fn differential_corpora() -> Vec<Vec<u8>> {
        let mut skewed = vec![b'a'; 20_000];
        for i in 0..ALPHABET {
            skewed.extend(std::iter::repeat_n(i as u8, i % 5 + 1));
        }
        let mut lcg = 0x2545_f491_4f6c_dd1du64;
        let noisy: Vec<u8> = (0..8_192)
            .map(|_| {
                lcg = lcg.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (lcg >> 33) as u8
            })
            .collect();
        vec![
            b"the quick brown fox jumps over the lazy dog".repeat(50),
            skewed,
            noisy,
            (0..=255u8).cycle().take(4_096).collect(),
            b"x".repeat(3_000),
            b"ab".repeat(1_500),
        ]
    }

    #[test]
    fn table_driven_decoders_agree_with_branchy_at_every_table_size() {
        for data in differential_corpora() {
            let compressed = compress(&data);
            let branchy = decompress_branchy(&compressed).unwrap();
            assert_eq!(branchy, data);
            for bits in 1..=MAX_CODE_LEN {
                assert_eq!(
                    decompress_with_table_bits(&compressed, bits).unwrap(),
                    branchy,
                    "table bits {bits}"
                );
            }
        }
    }

    #[test]
    fn table_and_branchy_decoders_reject_the_same_corrupt_streams() {
        let data = b"hello hello hello hello hello hello hello".to_vec();
        let good = compress(&data);
        // Truncations at every point of the payload, plus single bit flips:
        // the two decoders must agree that each stream is bad (the exact
        // error message may differ, failing at all must not).
        for cut in (good.len() - 6)..good.len() {
            let mut bad = good.clone();
            bad.truncate(cut);
            assert_eq!(
                decompress_branchy(&bad).is_err(),
                decompress(&bad).is_err(),
                "truncation at {cut}"
            );
        }
        for byte in 0..good.len() {
            for bit in [0u8, 4] {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                let (a, b) = (decompress_branchy(&bad), decompress(&bad));
                match (a, b) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y, "flip {byte}/{bit}"),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("decoders disagree on flip {byte}/{bit}: {a:?} vs {b:?}"),
                }
            }
        }
    }
}
