//! Criterion bench for the archive subsystem: single- vs multi-threaded
//! segment ingest, and block-wise vs per-record random-access lookups
//! against a cold on-disk segment (the durable analogue of Figure 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbc_archive::{CodecSpec, SegmentConfig, SegmentReader, SegmentWriter};
use pbc_bench::data::{corpus, corpus_bytes};
use pbc_core::PbcConfig;
use pbc_datagen::Dataset;

fn temp_segment(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pbc-bench-crit-{}-{tag}.seg", std::process::id()))
}

fn write_segment(
    records: &[Vec<u8>],
    codec: CodecSpec,
    workers: usize,
    tag: &str,
) -> std::path::PathBuf {
    let path = temp_segment(tag);
    let mut writer = SegmentWriter::create(
        &path,
        SegmentConfig::with_codec(codec).with_workers(workers),
    )
    .expect("create segment");
    for record in records {
        writer.append_record(record).expect("append record");
    }
    writer.finish().expect("finish segment");
    path
}

fn bench_archive_ingest(c: &mut Criterion) {
    let records = corpus(Dataset::Kv2, 0.1);
    let raw_bytes = corpus_bytes(&records);
    // Train once; ingest timings then measure compression + I/O, not
    // repeated training.
    let sample: Vec<(Vec<u8>, Vec<u8>)> = records
        .iter()
        .take(512)
        .map(|r| (Vec::new(), r.clone()))
        .collect();
    let codec = CodecSpec::Pretrained(pbc_archive::build_codec(
        &CodecSpec::Pbc(PbcConfig::default()),
        &sample,
    ));

    let mut group = c.benchmark_group("archive_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw_bytes as u64));
    for workers in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("PBC_workers", workers), |b| {
            b.iter(|| {
                let path = write_segment(&records, codec.clone(), workers, "ingest");
                let _ = std::fs::remove_file(path);
            })
        });
    }
    group.finish();
}

fn bench_archive_lookup(c: &mut Criterion) {
    let records = corpus(Dataset::Kv2, 0.1);
    let lookups = 1_000u64;

    let mut group = c.benchmark_group("archive_lookup");
    group.sample_size(10);
    group.throughput(Throughput::Elements(lookups));
    for (name, spec) in [
        ("PBC_per_record", CodecSpec::Pbc(PbcConfig::default())),
        ("Zstd_whole_block", CodecSpec::Zstd { level: 3 }),
    ] {
        let path = write_segment(&records, spec, 1, name);
        let reader = SegmentReader::open(&path).expect("reopen segment");
        let count = reader.record_count();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut state = 0x2545_f491_4f6c_dd1du64;
                let mut total = 0usize;
                for _ in 0..lookups {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1);
                    total += reader.get_record(state % count).expect("lookup").len();
                }
                total
            })
        });
        drop(reader);
        let _ = std::fs::remove_file(path);
    }
    group.finish();
}

criterion_group!(benches, bench_archive_ingest, bench_archive_lookup);
criterion_main!(benches);
