//! Criterion bench for Table 4: whole-corpus (file) compression throughput
//! of the block codecs and the PBC block variants on the HDFS log dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbc_bench::data::{corpus, corpus_bytes, training_refs};
use pbc_codecs::traits::Codec;
use pbc_codecs::{Lz4Like, LzmaLike, SnappyLike, ZstdLike};
use pbc_core::{PbcBlockCompressor, PbcConfig};
use pbc_datagen::Dataset;

fn bench_file_compression(c: &mut Criterion) {
    let records = corpus(Dataset::Hdfs, 0.1);
    let file: Vec<u8> = records.join(&b'\n');
    let raw_bytes = corpus_bytes(&records) as u64;
    let sample = training_refs(&records, 256);

    let codecs: Vec<(&str, Box<dyn Codec>)> = vec![
        ("Snappy", Box::new(SnappyLike::new())),
        ("LZ4", Box::new(Lz4Like::new())),
        ("Zstd", Box::new(ZstdLike::new(3))),
        ("LZMA", Box::new(LzmaLike::new(4))),
    ];

    let mut group = c.benchmark_group("table4_hdfs_compress");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw_bytes));
    for (name, codec) in &codecs {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| codec.compress(&file).len())
        });
    }
    let pbc_z = PbcBlockCompressor::zstd(&sample, &PbcConfig::default(), 3);
    group.bench_function(BenchmarkId::from_parameter("PBC_Z"), |b| {
        b.iter(|| pbc_z.compress_block(&records).len())
    });
    group.finish();

    let mut group = c.benchmark_group("table4_hdfs_decompress");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw_bytes));
    for (name, codec) in &codecs {
        let compressed = codec.compress(&file);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| codec.decompress(&compressed).unwrap().len())
        });
    }
    let block = pbc_z.compress_block(&records);
    group.bench_function(BenchmarkId::from_parameter("PBC_Z"), |b| {
        b.iter(|| pbc_z.decompress_block(&block).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench_file_compression);
criterion_main!(benches);
