//! Criterion bench for Tables 5–6: the specialised baselines (LogReducer on
//! logs, Ion-like / BinPack-like on JSON) against the PBC variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbc_bench::data::{corpus, corpus_bytes, training_refs};
use pbc_core::{PbcBlockCompressor, PbcCompressor, PbcConfig};
use pbc_datagen::Dataset;
use pbc_json::{BinPackCodec, IonLikeCodec, JsonValue};
use pbc_logs::LogReducer;

fn bench_log_compression(c: &mut Criterion) {
    let records = corpus(Dataset::Hdfs, 0.05);
    let lines: Vec<String> = records
        .iter()
        .map(|r| String::from_utf8_lossy(r).into_owned())
        .collect();
    let raw = corpus_bytes(&records) as u64;
    let sample = training_refs(&records, 192);

    let mut group = c.benchmark_group("table5_hdfs");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw));
    let logreducer = LogReducer::new(4);
    group.bench_function(BenchmarkId::from_parameter("LogReducer"), |b| {
        b.iter(|| logreducer.compress_lines(&lines).len())
    });
    let pbc_l = PbcBlockCompressor::lzma(&sample, &PbcConfig::default(), 4);
    group.bench_function(BenchmarkId::from_parameter("PBC_L"), |b| {
        b.iter(|| pbc_l.compress_block(&records).len())
    });
    group.finish();
}

fn bench_json_compression(c: &mut Criterion) {
    let records = corpus(Dataset::Cities, 0.1);
    let docs: Vec<JsonValue> = records
        .iter()
        .map(|r| pbc_json::parse(std::str::from_utf8(r).unwrap()).unwrap())
        .collect();
    let raw = corpus_bytes(&records) as u64;
    let sample = training_refs(&records, 192);
    let sample_docs: Vec<&JsonValue> = docs.iter().take(128).collect();

    let ion = IonLikeCodec::new();
    let binpack = BinPackCodec::train(&sample_docs);
    let pbc = PbcCompressor::train(&sample, &PbcConfig::default());

    let mut group = c.benchmark_group("table6_cities_record");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw));
    group.bench_function(BenchmarkId::from_parameter("Ion-B"), |b| {
        b.iter(|| docs.iter().map(|d| ion.encode(d).len()).sum::<usize>())
    });
    group.bench_function(BenchmarkId::from_parameter("BP-D"), |b| {
        b.iter(|| docs.iter().map(|d| binpack.encode(d).len()).sum::<usize>())
    });
    group.bench_function(BenchmarkId::from_parameter("PBC"), |b| {
        b.iter(|| records.iter().map(|r| pbc.compress(r).len()).sum::<usize>())
    });
    group.finish();
}

criterion_group!(benches, bench_log_compression, bench_json_compression);
criterion_main!(benches);
