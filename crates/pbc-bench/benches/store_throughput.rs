//! Criterion bench for Table 8: SET/GET throughput of the TierBase-like
//! store under the three value codecs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbc_bench::data::{corpus, training_refs};
use pbc_core::PbcConfig;
use pbc_datagen::Dataset;
use pbc_store::{TierStore, ValueCodec};

fn bench_store_throughput(c: &mut Criterion) {
    let records = corpus(Dataset::Kv2, 0.1);
    let sample = training_refs(&records, 256);
    let keys: Vec<Vec<u8>> = (0..records.len())
        .map(|i| format!("bench:{i:010}").into_bytes())
        .collect();

    let codecs = [
        ("Uncompressed", ValueCodec::None),
        ("Zstd(dict)", ValueCodec::train_zstd_dict(&sample, 1)),
        (
            "PBC_F",
            ValueCodec::train_pbc_f(&sample, &PbcConfig::default()),
        ),
    ];

    let mut group = c.benchmark_group("table8_set");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    for (name, codec) in &codecs {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let store = TierStore::new(codec.clone());
                for (k, v) in keys.iter().zip(records.iter()) {
                    store.set(k, v);
                }
                store.len()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table8_get");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    for (name, codec) in &codecs {
        let store = TierStore::new(codec.clone());
        for (k, v) in keys.iter().zip(records.iter()) {
            store.set(k, v);
        }
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                keys.iter()
                    .map(|k| store.get(k).unwrap().map(|v| v.len()).unwrap_or(0))
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store_throughput);
criterion_main!(benches);
