//! Criterion bench for the tiered store: get latency on the hot path, the
//! cold path through a warm block cache, and the cold path forced to disk
//! (cache capacity zero).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbc_bench::data::corpus;
use pbc_datagen::Dataset;
use pbc_tier::{TierConfig, TieredStore};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pbc-bench-crit-tier-{}-{tag}", std::process::id()))
}

fn keys_of(n: usize, stride: usize) -> Vec<Vec<u8>> {
    (0..n)
        .step_by(stride)
        .map(|i| format!("tier:{i:08}").into_bytes())
        .collect()
}

fn populate(dir: &std::path::Path, records: &[Vec<u8>], cache_capacity: usize) -> TieredStore {
    let raw_bytes: usize = records.iter().map(|r| r.len() + 14).sum();
    let store = TieredStore::open(
        TierConfig::new(dir)
            .with_watermark((raw_bytes as u64 / 8).max(64 * 1024))
            .with_cache_capacity(cache_capacity),
    )
    .expect("open tier store");
    for (i, value) in records.iter().enumerate() {
        store
            .set(format!("tier:{i:08}").as_bytes(), value)
            .expect("bench set");
    }
    store
}

fn bench_tier_gets(c: &mut Criterion) {
    let records = corpus(Dataset::Kv2, 0.05);
    let n = records.len();
    let probe = keys_of(n, 7);

    let mut group = c.benchmark_group("tier_get");
    group.sample_size(10);

    // Hot: watermark high enough that nothing spills.
    {
        let dir = temp_dir("hot");
        let raw_bytes: usize = records.iter().map(|r| r.len() + 14).sum();
        let store = TieredStore::open(TierConfig::new(&dir).with_watermark(raw_bytes as u64 * 2))
            .expect("open hot store");
        for (i, value) in records.iter().enumerate() {
            store
                .set(format!("tier:{i:08}").as_bytes(), value)
                .expect("bench set");
        }
        group.bench_function(BenchmarkId::new("path", "hot"), |b| {
            b.iter(|| {
                let mut found = 0usize;
                for key in &probe {
                    found += usize::from(store.get(key).expect("get").is_some());
                }
                assert!(found > 0);
            })
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Cold with a warm cache: everything spilled, cache big enough to hold
    // the working set after the first pass.
    {
        let dir = temp_dir("cold-hit");
        let raw_bytes: usize = records.iter().map(|r| r.len() + 14).sum();
        let store = populate(&dir, &records, raw_bytes * 2);
        store.flush_all().expect("flush");
        store.compact().expect("compact");
        // Warm pass.
        for key in &probe {
            store.get(key).expect("warm get");
        }
        group.bench_function(BenchmarkId::new("path", "cold_cache_hit"), |b| {
            b.iter(|| {
                let mut found = 0usize;
                for key in &probe {
                    found += usize::from(store.get(key).expect("get").is_some());
                }
                assert!(found > 0);
            })
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Cold forced to disk: cache capacity zero, every get decodes a block.
    {
        let dir = temp_dir("cold-miss");
        let store = populate(&dir, &records, 0);
        store.flush_all().expect("flush");
        store.compact().expect("compact");
        group.bench_function(BenchmarkId::new("path", "cold_cache_miss"), |b| {
            b.iter(|| {
                let mut found = 0usize;
                for key in &probe {
                    found += usize::from(store.get(key).expect("get").is_some());
                }
                assert!(found > 0);
            })
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    group.finish();
}

criterion_group!(benches, bench_tier_gets);
criterion_main!(benches);
