//! Criterion bench for Figure 5: random-access lookup cost of block-wise
//! Zstd (several block sizes) vs per-record FSST / PBC_F on KV2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbc_bench::data::{corpus, training_refs};
use pbc_codecs::traits::TrainableCodec;
use pbc_codecs::{FsstCodec, ZstdLike};
use pbc_core::{PbcCompressor, PbcConfig};
use pbc_datagen::Dataset;
use pbc_store::{BlockStore, PerRecordStore};

fn bench_random_access(c: &mut Criterion) {
    let records = corpus(Dataset::Kv2, 0.1);
    let sample = training_refs(&records, 256);
    let lookups: Vec<usize> = (0..100).map(|i| (i * 977 + 13) % records.len()).collect();

    let mut group = c.benchmark_group("fig5_kv2_lookup");
    group.sample_size(10);

    for block_size in [1usize, 16, 256, 4096] {
        let store = BlockStore::build(&records, block_size, Box::new(ZstdLike::new(1)));
        group.bench_function(BenchmarkId::new("Zstd_block", block_size), |b| {
            b.iter(|| {
                lookups
                    .iter()
                    .map(|&i| store.lookup(i).unwrap().len())
                    .sum::<usize>()
            })
        });
    }

    let fsst_store = PerRecordStore::build(&records, Box::new(FsstCodec::train(&sample)));
    group.bench_function(BenchmarkId::from_parameter("FSST_per_record"), |b| {
        b.iter(|| {
            lookups
                .iter()
                .map(|&i| fsst_store.lookup(i).unwrap().len())
                .sum::<usize>()
        })
    });

    let pbc_store = PerRecordStore::build(
        &records,
        Box::new(PbcCompressor::train_fsst(&sample, &PbcConfig::default())),
    );
    group.bench_function(BenchmarkId::from_parameter("PBC_F_per_record"), |b| {
        b.iter(|| {
            lookups
                .iter()
                .map(|&i| pbc_store.lookup(i).unwrap().len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_random_access);
criterion_main!(benches);
