//! Criterion bench for Table 3: per-record compression and decompression
//! throughput of FSST, Zstd(dict), PBC and PBC_F on a representative
//! production-style dataset (KV2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbc_bench::data::{corpus, corpus_bytes, training_refs};
use pbc_codecs::dict::Dictionary;
use pbc_codecs::traits::{DictCodec, TrainableCodec};
use pbc_codecs::{FsstCodec, ZstdLike};
use pbc_core::{PbcCompressor, PbcConfig};
use pbc_datagen::Dataset;

fn bench_line_by_line(c: &mut Criterion) {
    let records = corpus(Dataset::Kv2, 0.1);
    let raw_bytes = corpus_bytes(&records) as u64;
    let sample = training_refs(&records, 256);

    let fsst = FsstCodec::train(&sample);
    let dict = Dictionary::train(&sample, 4096);
    let zstd = ZstdLike::new(1);
    let pbc = PbcCompressor::train(&sample, &PbcConfig::default());
    let pbc_f = PbcCompressor::train_fsst(&sample, &PbcConfig::default());

    let mut group = c.benchmark_group("table3_kv2_compress");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw_bytes));
    group.bench_function(BenchmarkId::from_parameter("FSST"), |b| {
        b.iter(|| records.iter().map(|r| fsst.encode(r).len()).sum::<usize>())
    });
    group.bench_function(BenchmarkId::from_parameter("Zstd(dict)"), |b| {
        b.iter(|| {
            records
                .iter()
                .map(|r| zstd.compress_with_dict(r, dict.as_bytes()).len())
                .sum::<usize>()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("PBC"), |b| {
        b.iter(|| records.iter().map(|r| pbc.compress(r).len()).sum::<usize>())
    });
    group.bench_function(BenchmarkId::from_parameter("PBC_F"), |b| {
        b.iter(|| {
            records
                .iter()
                .map(|r| pbc_f.compress(r).len())
                .sum::<usize>()
        })
    });
    group.finish();

    // Decompression throughput.
    let pbc_compressed: Vec<Vec<u8>> = records.iter().map(|r| pbc.compress(r)).collect();
    let fsst_compressed: Vec<Vec<u8>> = records.iter().map(|r| fsst.encode(r)).collect();
    let zstd_compressed: Vec<Vec<u8>> = records
        .iter()
        .map(|r| zstd.compress_with_dict(r, dict.as_bytes()))
        .collect();

    let mut group = c.benchmark_group("table3_kv2_decompress");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw_bytes));
    group.bench_function(BenchmarkId::from_parameter("FSST"), |b| {
        b.iter(|| {
            fsst_compressed
                .iter()
                .map(|c| fsst.decode(c).unwrap().len())
                .sum::<usize>()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("Zstd(dict)"), |b| {
        b.iter(|| {
            zstd_compressed
                .iter()
                .map(|c| zstd.decompress_with_dict(c, dict.as_bytes()).unwrap().len())
                .sum::<usize>()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("PBC"), |b| {
        b.iter(|| {
            pbc_compressed
                .iter()
                .map(|c| pbc.decompress(c).unwrap().len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_line_by_line);
criterion_main!(benches);
