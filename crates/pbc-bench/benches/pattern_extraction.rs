//! Criterion bench for Figures 7 and 8: clustering cost with and without
//! 1-gram pruning, and under the three clustering criteria.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbc_bench::data::{corpus, training_refs};
use pbc_core::clustering::{cluster_records, ClusteringConfig};
use pbc_core::Criterion as PbcCriterion;
use pbc_datagen::Dataset;

fn bench_pattern_extraction(c: &mut Criterion) {
    let records = corpus(Dataset::Kv1, 0.1);
    let samples: Vec<Vec<u8>> = training_refs(&records, 128)
        .into_iter()
        .map(|r| r.to_vec())
        .collect();

    let mut group = c.benchmark_group("fig8_kv1_extraction");
    group.sample_size(10);
    for (name, pruning) in [("naive", false), ("onegram_pruning", true)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let config = ClusteringConfig {
                    use_onegram_pruning: pruning,
                    ..ClusteringConfig::default()
                };
                cluster_records(&samples, &config).clusters.len()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig7_kv1_criteria");
    group.sample_size(10);
    for (name, criterion) in [
        ("edit_distance", PbcCriterion::EditDistance),
        ("entropy", PbcCriterion::Entropy),
        ("encoding_length", PbcCriterion::EncodingLength),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let config = ClusteringConfig {
                    criterion,
                    ..ClusteringConfig::default()
                };
                cluster_records(&samples, &config).clusters.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pattern_extraction);
criterion_main!(benches);
